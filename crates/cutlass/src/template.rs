//! The GEMM template parameter space and its legality rules.
//!
//! A [`GemmConfig`] is the reproduction of a CUTLASS device-level GEMM
//! template instantiation: threadblock/warp/instruction tile shapes,
//! pipeline stage count, threadblock swizzle, and operand alignments.
//! `validate` enforces the same rules the C++ templates enforce at compile
//! time (divisibility, warp count, shared-memory and register capacity);
//! the resource estimators feed the occupancy model.

use serde::{Deserialize, Serialize};
use std::fmt;

use bolt_gpu_sim::{BlockResources, GpuArch, Occupancy, Pipeline};
use bolt_tensor::DType;

use crate::error::KernelError;
use crate::tiles::TileShape;
use crate::Result;

/// A templated GEMM kernel configuration (the declarative parameters of
/// the paper's Section 2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmConfig {
    /// Threadblock tile (shared-memory level).
    pub threadblock: TileShape,
    /// Warp tile (register-file level).
    pub warp: TileShape,
    /// Instruction (MMA) tile consumed by a tensor core.
    pub instruction: TileShape,
    /// Software pipeline stages for global→shared staging (2 = double
    /// buffering).
    pub stages: usize,
    /// Threadblock swizzle width (1, 2, 4, 8): how many grid columns are
    /// interleaved to improve L2 locality.
    pub swizzle: u32,
    /// Vector width (elements) of operand-A global loads.
    pub alignment_a: usize,
    /// Vector width (elements) of operand-B global loads.
    pub alignment_b: usize,
    /// Vector width (elements) of C/D global accesses.
    pub alignment_c: usize,
    /// Compute pipeline (tensor cores for FP16; CUDA cores only as a
    /// fallback used by the Ansor baseline comparison).
    pub pipeline: Pipeline,
    /// Parallel split-K slices (1 = none). Each slice computes a partial
    /// sum into an f32 workspace; a reduction kernel combines them and
    /// applies the epilogue. Adds grid parallelism for small-`M*N`,
    /// large-`K` problems.
    pub split_k: usize,
}

impl GemmConfig {
    /// A solid default for large FP16 tensor-core GEMMs on Turing:
    /// 128×128×32 threadblocks of 64×64×32 warps, 2 stages.
    pub fn turing_default() -> Self {
        GemmConfig {
            threadblock: TileShape::new(128, 128, 32),
            warp: TileShape::new(64, 64, 32),
            instruction: TileShape::MMA_16X8X16,
            stages: 2,
            swizzle: 4,
            alignment_a: 8,
            alignment_b: 8,
            alignment_c: 8,
            pipeline: Pipeline::TensorCore,
            split_k: 1,
        }
    }

    /// Number of warps per threadblock.
    pub fn warp_count(&self) -> usize {
        (self.threadblock.m / self.warp.m.max(1)) * (self.threadblock.n / self.warp.n.max(1))
    }

    /// Threads per threadblock.
    pub fn threads(&self) -> u32 {
        (self.warp_count() * 32) as u32
    }

    /// Shared memory per threadblock in bytes: `stages` buffers of the A
    /// and B threadblock tile slices.
    pub fn smem_bytes(&self, dtype: DType) -> u32 {
        let elt = dtype.size_bytes();
        (self.stages * self.threadblock.k * (self.threadblock.m + self.threadblock.n) * elt) as u32
    }

    /// Estimated registers per thread: f32 accumulators for the warp tile,
    /// double-buffered operand fragments, plus fixed addressing overhead.
    pub fn regs_per_thread(&self, dtype: DType) -> u32 {
        let acc = self.warp.mn() / 32; // f32 accumulators
        let frag_elems = 2 * (self.warp.m + self.warp.n) * self.instruction.k / 32;
        let frag_regs = frag_elems * dtype.size_bytes().max(2) / 4;
        (acc + frag_regs + 30).min(512) as u32
    }

    /// Per-block resources for the occupancy calculator.
    pub fn block_resources(&self, dtype: DType) -> BlockResources {
        BlockResources::new(
            self.threads(),
            self.regs_per_thread(dtype),
            self.smem_bytes(dtype),
        )
    }

    /// The smallest operand alignment this config assumes.
    pub fn min_alignment(&self) -> usize {
        self.alignment_a.min(self.alignment_b).min(self.alignment_c)
    }

    /// Validates the configuration against CUTLASS's legality rules and
    /// `arch`'s capacities.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::IllegalConfig`] describing the first violated
    /// rule.
    pub fn validate(&self, arch: &GpuArch, dtype: DType) -> Result<()> {
        if !self.warp.divides(&self.threadblock) {
            return Err(KernelError::illegal(format!(
                "warp tile {} does not divide threadblock tile {}",
                self.warp, self.threadblock
            )));
        }
        if self.warp.k != self.threadblock.k {
            return Err(KernelError::illegal(format!(
                "warp K {} must equal threadblock K {} (no split-K within a block)",
                self.warp.k, self.threadblock.k
            )));
        }
        if self.pipeline == Pipeline::TensorCore && !self.instruction.divides(&self.warp) {
            return Err(KernelError::illegal(format!(
                "instruction tile {} does not divide warp tile {}",
                self.instruction, self.warp
            )));
        }
        let warps = self.warp_count();
        if ![1, 2, 4, 8, 16].contains(&warps) {
            return Err(KernelError::illegal(format!(
                "warp count {warps} not in {{1, 2, 4, 8, 16}}"
            )));
        }
        if self.threads() > arch.max_threads_per_block {
            return Err(KernelError::illegal(format!(
                "{} threads exceed the {}-thread block limit",
                self.threads(),
                arch.max_threads_per_block
            )));
        }
        if !(2..=8).contains(&self.stages) {
            return Err(KernelError::illegal(format!(
                "stages {} not in 2..=8",
                self.stages
            )));
        }
        if arch.compute_capability < (8, 0) && self.stages > 2 {
            return Err(KernelError::illegal(
                "multi-stage (cp.async) pipelines require compute capability >= 8.0",
            ));
        }
        if self.split_k == 0 || self.split_k > 16 || !self.split_k.is_power_of_two() {
            return Err(KernelError::illegal(format!(
                "split_k {} must be a power of two in 1..=16",
                self.split_k
            )));
        }
        if !self.swizzle.is_power_of_two() || self.swizzle > 8 {
            return Err(KernelError::illegal(format!(
                "swizzle {} must be a power of two <= 8",
                self.swizzle
            )));
        }
        for (name, a) in [
            ("A", self.alignment_a),
            ("B", self.alignment_b),
            ("C", self.alignment_c),
        ] {
            if !a.is_power_of_two() || a > dtype.max_vector_elems() {
                return Err(KernelError::illegal(format!(
                    "alignment {a} for operand {name} invalid for {dtype} (max {})",
                    dtype.max_vector_elems()
                )));
            }
        }
        let smem = self.smem_bytes(dtype);
        if smem > arch.max_smem_per_block {
            return Err(KernelError::illegal(format!(
                "{} B shared memory exceeds the {} B block limit",
                smem, arch.max_smem_per_block
            )));
        }
        let regs = self.regs_per_thread(dtype);
        if regs > arch.max_regs_per_thread {
            return Err(KernelError::illegal(format!(
                "{regs} registers/thread exceed the {} limit (warp tile too large)",
                arch.max_regs_per_thread
            )));
        }
        let occ = Occupancy::compute(arch, self.block_resources(dtype));
        if occ.blocks_per_sm == 0 {
            return Err(KernelError::illegal(format!(
                "config not launchable on {} (limited by {})",
                arch.name, occ.limited_by
            )));
        }
        Ok(())
    }

    /// Short identifier used in kernel names and CSV output, e.g.
    /// `tb128x128x32_w64x64x32_s2`.
    pub fn tag(&self) -> String {
        if self.split_k > 1 {
            format!(
                "tb{}_w{}_s{}_k{}",
                self.threadblock, self.warp, self.stages, self.split_k
            )
        } else {
            format!("tb{}_w{}_s{}", self.threadblock, self.warp, self.stages)
        }
    }
}

impl fmt::Display for GemmConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GemmConfig(tb={}, warp={}, mma={}, stages={}, swizzle={}, align={}/{}/{})",
            self.threadblock,
            self.warp,
            self.instruction,
            self.stages,
            self.swizzle,
            self.alignment_a,
            self.alignment_b,
            self.alignment_c
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t4() -> GpuArch {
        GpuArch::tesla_t4()
    }

    #[test]
    fn default_is_valid_on_t4() {
        GemmConfig::turing_default()
            .validate(&t4(), DType::F16)
            .unwrap();
    }

    #[test]
    fn resource_estimates() {
        let c = GemmConfig::turing_default();
        assert_eq!(c.warp_count(), 4);
        assert_eq!(c.threads(), 128);
        // 2 stages * 32 * (128+128) * 2B = 32 KiB.
        assert_eq!(c.smem_bytes(DType::F16), 32 * 1024);
        // 64*64/32 = 128 accumulators + fragments + overhead.
        assert!(c.regs_per_thread(DType::F16) >= 128);
    }

    #[test]
    fn rejects_non_dividing_warp() {
        let mut c = GemmConfig::turing_default();
        c.warp = TileShape::new(48, 64, 32);
        assert!(c.validate(&t4(), DType::F16).is_err());
    }

    #[test]
    fn rejects_bad_warp_count() {
        let mut c = GemmConfig::turing_default();
        // 128/32=4 by 128/16=8 -> 32 warps: > 16 and > 1024 threads.
        c.warp = TileShape::new(32, 16, 32);
        assert!(c.validate(&t4(), DType::F16).is_err());
    }

    #[test]
    fn rejects_excess_smem() {
        let mut c = GemmConfig::turing_default();
        c.threadblock = TileShape::new(256, 256, 64);
        c.warp = TileShape::new(128, 128, 64);
        let err = c.validate(&t4(), DType::F16).unwrap_err();
        assert!(err.to_string().contains("register") || err.to_string().contains("shared"));
    }

    #[test]
    fn rejects_multi_stage_on_turing() {
        let mut c = GemmConfig::turing_default();
        c.stages = 3;
        assert!(c.validate(&t4(), DType::F16).is_err());
        // ...but fine on Ampere.
        c.validate(&GpuArch::a100(), DType::F16).unwrap();
    }

    #[test]
    fn rejects_bad_alignment() {
        let mut c = GemmConfig::turing_default();
        c.alignment_a = 16; // 16 f16 elements = 256 bits > max
        assert!(c.validate(&t4(), DType::F16).is_err());
        c.alignment_a = 3;
        assert!(c.validate(&t4(), DType::F16).is_err());
    }

    #[test]
    fn rejects_warp_k_mismatch() {
        let mut c = GemmConfig::turing_default();
        c.warp = TileShape::new(64, 64, 16);
        assert!(c.validate(&t4(), DType::F16).is_err());
    }

    #[test]
    fn tag_is_stable() {
        assert_eq!(
            GemmConfig::turing_default().tag(),
            "tb128x128x32_w64x64x32_s2"
        );
    }
}
