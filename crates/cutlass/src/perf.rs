//! Maps template instantiations to [`KernelProfile`]s for the GPU
//! simulator.
//!
//! This is the performance-model half of the templated library: given a
//! problem and a [`GemmConfig`], derive launch geometry, per-block
//! resources, per-pipeline flops, and DRAM/shared-memory traffic. The
//! traffic model follows the standard tiled-GEMM analysis:
//!
//! * per-block operand traffic `MNK·elt·(1/tb_n + 1/tb_m)`, of which the
//!   L2 absorbs re-reads within a wave (modeled by a leak factor driven by
//!   the wave working set vs. L2 capacity and the swizzle width);
//! * shared-memory traffic `2·MNK·elt·(1/warp_m + 1/warp_n)` — which is
//!   exactly why the profiler heuristic prefers large warp tiles (higher
//!   compute-to-smem ratio);
//! * main-loop efficiency from pipeline fill/drain (`k_iters / (k_iters +
//!   stages)`) and tile quantization waste at ragged boundaries.

use bolt_gpu_sim::{GpuArch, KernelProfile, Pipeline, PipelineFlops};
use bolt_tensor::conv_ref::Conv2dProblem;
use bolt_tensor::DType;

use crate::epilogue::Epilogue;
use crate::gemm::GemmProblem;
use crate::template::GemmConfig;

/// Main-loop issue efficiency of a templated GEMM: how close to pipeline
/// peak the inner loop runs, before occupancy derating (which the
/// simulator applies separately).
pub fn mainloop_efficiency(m: usize, n: usize, k: usize, config: &GemmConfig) -> f64 {
    let tb = config.threadblock;
    // Software pipeline fill/drain: with k_iters main-loop iterations and
    // `stages` in flight, the pipeline is full for k_iters/(k_iters+stages).
    let k_iters = (k as f64 / tb.k as f64).max(1.0);
    let fill = k_iters / (k_iters + config.stages as f64);
    // Tile quantization: partial boundary tiles compute wasted MACs.
    let util_m = m as f64 / (m.div_ceil(tb.m) * tb.m) as f64;
    let util_n = n as f64 / (n.div_ceil(tb.n) * tb.n) as f64;
    // Instruction shape: the wide 16x8x16 HMMA has the best issue rate.
    let inst = if config.instruction.k >= 16 {
        1.0
    } else {
        0.96
    };
    let base = match config.pipeline {
        // cp.async multi-stage main loops (Ampere) issue MMAs nearly
        // back-to-back; Turing's 2-stage pipeline pays more bookkeeping.
        Pipeline::TensorCore => {
            if config.stages >= 3 {
                0.985
            } else {
                0.95
            }
        }
        Pipeline::CudaCore => 0.90,
        Pipeline::Sfu => 0.5,
    };
    base * fill * util_m * util_n * inst
}

/// Main-loop derate from operand alignment: tensor cores are fed by
/// 128-bit `ldmatrix`/`ldg` operations; narrower legal accesses multiply
/// the load instruction count and predicate overhead, throttling issue
/// bandwidth on top of the DRAM-efficiency loss (the kernel-padding
/// motivation in Section 3.2.3).
pub fn alignment_issue_factor(alignment_elems: usize) -> f64 {
    match alignment_elems {
        a if a >= 8 => 1.0,
        4 => 0.85,
        2 => 0.62,
        // Scalar (alignment-1) accesses cannot feed ldmatrix at all; the
        // iterator falls back to element-wise loads with full predication.
        _ => 0.30,
    }
}

/// L2 leak factor: the fraction of per-block operand re-reads that miss L2
/// and reach DRAM. Grows as the wave working set outgrows the L2; shrinks
/// with wider threadblock swizzle (better wave locality).
fn l2_leak(arch: &GpuArch, problem_k: usize, config: &GemmConfig, element: DType) -> f64 {
    let tb = config.threadblock;
    let elt = element.size_bytes() as f64;
    // Blocks resident per wave (rough: limited by smem).
    let blocks_per_sm = (arch.smem_per_sm as f64 / config.smem_bytes(element).max(1) as f64)
        .floor()
        .max(1.0);
    let wave_blocks = blocks_per_sm * arch.sm_count as f64;
    // A swizzled wave covers a roughly square region of the output grid,
    // so of the `2 * wave_blocks` operand panels its blocks touch, only
    // ~`2 * sqrt(wave_blocks)` are unique; a linear (unswizzled) wave is
    // far worse.
    let swizzle_quality: f64 = match config.swizzle {
        s if s >= 4 => 1.0,
        2 => 1.6,
        _ => 3.0,
    };
    let unique_frac = (swizzle_quality / wave_blocks.sqrt()).min(1.0);
    // Even unique panels get evicted mid-wave once the wave's working set
    // outgrows the L2.
    let wave_set = wave_blocks * (tb.m + tb.n) as f64 * problem_k as f64 * elt;
    let evict = (unique_frac * wave_set / arch.l2_bytes as f64)
        .sqrt()
        .clamp(1.0, 3.0);
    (unique_frac * evict).clamp(0.02, 1.0)
}

/// Builds the [`KernelProfile`] of a templated GEMM kernel.
///
/// `extra_dram_bytes` lets callers add traffic for inputs the plain model
/// does not know about (e.g. the fused second-GEMM weights of a persistent
/// kernel).
pub fn gemm_profile(
    arch: &GpuArch,
    problem: &GemmProblem,
    config: &GemmConfig,
    epilogue: &Epilogue,
    extra_dram_bytes: Option<f64>,
) -> KernelProfile {
    let tb = config.threadblock;
    let elt = problem.element.size_bytes() as f64;
    let batch = problem.batch as f64;
    let (m, n, k) = (problem.m as f64, problem.n as f64, problem.k as f64);

    let split_k = config.split_k.max(1) as u64;
    let grid_m = problem.m.div_ceil(tb.m) as u64;
    let grid_n = problem.n.div_ceil(tb.n) as u64;
    let grid = problem.batch as u64 * grid_m * grid_n * split_k;

    // ---- Arithmetic ------------------------------------------------------
    let mac_flops = problem.flops();
    let (ep_fma, ep_sfu) = epilogue.cost_per_elem();
    let out_elems = batch * m * n;
    let mut flops = PipelineFlops::none();
    match config.pipeline {
        Pipeline::TensorCore => flops.tensor_core = mac_flops,
        _ => flops.cuda_core = mac_flops,
    }
    flops.cuda_core += ep_fma * out_elems;
    flops.sfu += ep_sfu * out_elems;
    // Split-K reduction: combine `split_k` f32 partials per output element.
    if split_k > 1 {
        flops.cuda_core += out_elems * split_k as f64;
    }

    // ---- DRAM traffic ----------------------------------------------------
    let compulsory_in = batch * elt * (m * k + k * n);
    let block_in = batch * elt * (grid_n as f64 * m * k + grid_m as f64 * k * n);
    let leak = l2_leak(arch, problem.k, config, problem.element);
    // Split-K workspace traffic: each slice writes an f32 partial tile and
    // the reduction reads them all back.
    let workspace = if split_k > 1 {
        2.0 * out_elems * 4.0 * split_k as f64
    } else {
        0.0
    };
    let dram_read = compulsory_in
        + (block_in - compulsory_in).max(0.0) * leak
        + batch * epilogue.extra_bytes(problem.m, problem.n)
        + workspace / 2.0
        + extra_dram_bytes.unwrap_or(0.0);
    let out_bytes = out_elems * epilogue.out_dtype.size_bytes() as f64 + workspace / 2.0;

    // ---- Shared-memory traffic --------------------------------------------
    // Stage writes (global->smem) + per-warp reads of A/B fragments.
    let warp = config.warp;
    let smem_bytes = block_in.min(compulsory_in + (block_in - compulsory_in) * 0.5)
        + 2.0 * problem.macs() as f64 * elt * (1.0 / warp.m as f64 + 1.0 / warp.n as f64);

    KernelProfile {
        name: format!("gemm_{}_{}", problem, config.tag()),
        grid_blocks: grid,
        block: config.block_resources(problem.element),
        flops,
        dram_read_bytes: dram_read,
        dram_write_bytes: out_bytes,
        smem_bytes,
        dtype: problem.element,
        alignment_elems: config.min_alignment(),
        bank_conflict_ways: 1.0,
        mainloop_efficiency: mainloop_efficiency(
            problem.m,
            problem.n,
            problem.k / config.split_k.max(1), // per-slice reduction depth
            config,
        ) * alignment_issue_factor(config.min_alignment()),
        pipelined_overlap: pipelined_overlap(config),
    }
}

/// Memory-overlap quality of a main loop: `cp.async` multi-stage pipelines
/// (Ampere, stages >= 3) keep global loads fully asynchronous under the
/// MMA stream; Turing double buffering leaves some latency exposed.
pub fn pipelined_overlap(config: &GemmConfig) -> f64 {
    if config.stages >= 3 {
        0.85
    } else {
        0.25
    }
}

/// Builds the [`KernelProfile`] of an implicit-GEMM Conv2D kernel.
///
/// Differences from the plain GEMM model:
///
/// * the im2col matrix is never materialized — activations are re-read
///   across the `R*S` filter taps, with the L1/L2 absorbing most of the
///   overlap (factor `1 + (R*S - 1) * overlap_miss`);
/// * the contiguous dimension of both activations (NHWC) and filters
///   (KRSC) is `C`, so the *input channel count* dictates alignment — the
///   mechanism behind Table 3's padding results.
pub fn conv2d_profile(
    _arch: &GpuArch,
    problem: &Conv2dProblem,
    config: &GemmConfig,
    epilogue: &Epilogue,
    element: DType,
    extra_dram_bytes: Option<f64>,
) -> KernelProfile {
    let (gm, gn, gk) = problem.implicit_gemm_mnk();
    let tb = config.threadblock;
    let elt = element.size_bytes() as f64;

    let grid_m = gm.div_ceil(tb.m) as u64;
    let grid_n = gn.div_ceil(tb.n) as u64;
    let grid = grid_m * grid_n;

    // ---- Arithmetic ------------------------------------------------------
    let mac_flops = 2.0 * problem.macs() as f64;
    let (ep_fma, ep_sfu) = epilogue.cost_per_elem();
    let out_elems = gm as f64 * gn as f64;
    let mut flops = PipelineFlops::none();
    match config.pipeline {
        Pipeline::TensorCore => flops.tensor_core = mac_flops,
        _ => flops.cuda_core = mac_flops,
    }
    flops.cuda_core += ep_fma * out_elems;
    flops.sfu += ep_sfu * out_elems;

    // ---- DRAM traffic ----------------------------------------------------
    let act_bytes = (problem.n * problem.h * problem.w * problem.c) as f64 * elt;
    let taps = (problem.r * problem.s) as f64;
    let overlap_miss = 0.18; // L1/L2 serve most halo re-reads
    let input_read = act_bytes * (1.0 + (taps - 1.0) * overlap_miss);
    let filter_bytes = (problem.k * problem.r * problem.s * problem.c) as f64 * elt;
    // Filters are re-read by every M-tile; the L2 usually holds them.
    let filter_read = filter_bytes * (1.0 + (grid_m as f64 - 1.0) * 0.03).min(grid_m as f64);
    let dram_read =
        input_read + filter_read + epilogue.extra_bytes(gm, gn) + extra_dram_bytes.unwrap_or(0.0);
    let out_bytes = out_elems * epilogue.out_dtype.size_bytes() as f64;

    // ---- Shared-memory traffic --------------------------------------------
    let warp = config.warp;
    let smem_bytes = input_read.max(act_bytes) * 1.5
        + 2.0 * problem.macs() as f64 * elt * (1.0 / warp.m as f64 + 1.0 / warp.n as f64);

    // Alignment: C for input/filter (NHWC/KRSC contiguous dim), K for
    // output.
    use bolt_gpu_sim::memory::max_alignment;
    let align = max_alignment(element, problem.c)
        .min(max_alignment(element, problem.k))
        .min(config.min_alignment());

    KernelProfile {
        name: format!(
            "conv2d_{}x{}x{}x{}_k{}r{}s{}_{}",
            problem.n,
            problem.h,
            problem.w,
            problem.c,
            problem.k,
            problem.r,
            problem.s,
            config.tag()
        ),
        grid_blocks: grid,
        block: config.block_resources(element),
        flops,
        dram_read_bytes: dram_read,
        dram_write_bytes: out_bytes,
        smem_bytes,
        dtype: element,
        alignment_elems: align,
        bank_conflict_ways: 1.0,
        // Implicit-GEMM iterators (NHWC gather, boundary predicates, filter
        // tap bookkeeping) cost issue slots that a plain GEMM main loop
        // doesn't pay; on 2-stage Turing pipelines CUTLASS Conv2dFprop
        // lands around 55-60% of the equivalent GEMM's efficiency.
        mainloop_efficiency: mainloop_efficiency(gm, gn, gk, config)
            * alignment_issue_factor(align)
            * 0.58,
        pipelined_overlap: pipelined_overlap(config),
    }
}

/// Analytic lower bound (in µs) on the simulated time of a templated GEMM
/// candidate.
///
/// The bound is admissible: it never exceeds what [`simulate_kernel`]
/// (`bolt_gpu_sim`) would report for the same candidate, so the profiler
/// can safely skip candidates whose bound already exceeds the running
/// best without ever discarding the true winner. Evaluating the bound
/// costs one profile construction plus a handful of divisions — far
/// cheaper than a (simulated) measurement.
///
/// [`simulate_kernel`]: bolt_gpu_sim::simulate_kernel
pub fn gemm_lower_bound_us(
    arch: &GpuArch,
    problem: &GemmProblem,
    config: &GemmConfig,
    epilogue: &Epilogue,
) -> f64 {
    let profile = gemm_profile(arch, problem, config, epilogue, None);
    bolt_gpu_sim::roofline_lower_bound_us(arch, &profile)
}

/// Analytic lower bound (in µs) for an implicit-GEMM Conv2D candidate.
/// See [`gemm_lower_bound_us`] for the admissibility contract.
pub fn conv2d_lower_bound_us(
    arch: &GpuArch,
    problem: &Conv2dProblem,
    config: &GemmConfig,
    epilogue: &Epilogue,
    element: DType,
) -> f64 {
    let profile = conv2d_profile(arch, problem, config, epilogue, element, None);
    bolt_gpu_sim::roofline_lower_bound_us(arch, &profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_gpu_sim::simulate_kernel;

    fn t4() -> GpuArch {
        GpuArch::tesla_t4()
    }

    #[test]
    fn efficiency_prefers_deep_k() {
        let c = GemmConfig::turing_default();
        let deep = mainloop_efficiency(4096, 4096, 4096, &c);
        let shallow = mainloop_efficiency(4096, 4096, 64, &c);
        assert!(deep > shallow + 0.2, "{deep} vs {shallow}");
    }

    #[test]
    fn efficiency_penalizes_ragged_tiles() {
        let c = GemmConfig::turing_default();
        let exact = mainloop_efficiency(1280, 3072, 768, &c);
        let ragged = mainloop_efficiency(1290, 3080, 768, &c);
        assert!(exact > ragged);
    }

    #[test]
    fn big_gemm_lands_near_tensor_core_peak() {
        let p = GemmProblem::fp16(4096, 4096, 4096);
        let prof = gemm_profile(
            &t4(),
            &p,
            &GemmConfig::turing_default(),
            &Epilogue::linear(DType::F16),
            None,
        );
        let t = simulate_kernel(&t4(), &prof);
        let tflops = t.tflops(p.flops());
        assert!(tflops > 40.0 && tflops < 65.0, "{tflops:.1} TFLOPS; {t:?}");
    }

    #[test]
    fn batched_small_gemm_is_memory_or_launch_bound() {
        let p = GemmProblem::fp16_batched(384, 40, 40, 64);
        let mut c = GemmConfig::turing_default();
        c.threadblock = crate::tiles::TileShape::new(64, 64, 32);
        c.warp = crate::tiles::TileShape::new(32, 32, 32);
        let prof = gemm_profile(&t4(), &p, &c, &Epilogue::linear(DType::F16), None);
        let t = simulate_kernel(&t4(), &prof);
        assert_ne!(t.bound, bolt_gpu_sim::Boundedness::Compute, "{t:?}");
    }

    #[test]
    fn conv_alignment_follows_channels() {
        let aligned = Conv2dProblem::new(32, 56, 56, 64, 64, 3, 3, (1, 1), (1, 1));
        let unaligned = Conv2dProblem::new(32, 20, 26, 46, 32, 3, 3, (1, 1), (1, 1));
        let c = GemmConfig::turing_default();
        let ep = Epilogue::linear(DType::F16);
        let pa = conv2d_profile(&t4(), &aligned, &c, &ep, DType::F16, None);
        let pu = conv2d_profile(&t4(), &unaligned, &c, &ep, DType::F16, None);
        assert_eq!(pa.alignment_elems, 8);
        assert_eq!(pu.alignment_elems, 2);
    }

    #[test]
    fn padding_speeds_up_unaligned_conv() {
        // Table 3 workload: IC=46 -> pad to 48. Use a right-sized config
        // (tb N matches the 32 output channels) as the profiler would pick.
        let unpadded = Conv2dProblem::new(32, 20, 26, 46, 32, 3, 3, (1, 1), (1, 1));
        let padded = Conv2dProblem::new(32, 20, 26, 48, 32, 3, 3, (1, 1), (1, 1));
        let mut c = GemmConfig::turing_default();
        c.threadblock = crate::tiles::TileShape::new(64, 32, 32);
        c.warp = crate::tiles::TileShape::new(32, 32, 32);
        let ep = Epilogue::linear(DType::F16);
        let tu = simulate_kernel(
            &t4(),
            &conv2d_profile(&t4(), &unpadded, &c, &ep, DType::F16, None),
        );
        let tp = simulate_kernel(
            &t4(),
            &conv2d_profile(&t4(), &padded, &c, &ep, DType::F16, None),
        );
        let gain = tu.total_us / tp.total_us;
        assert!(gain > 1.3, "padding gain {gain:.2} too small");
    }

    #[test]
    fn epilogue_cost_shows_up_for_sfu_heavy_activations() {
        use bolt_tensor::Activation;
        let p = GemmProblem::fp16(1280, 3072, 768);
        let c = GemmConfig::turing_default();
        let relu = gemm_profile(
            &t4(),
            &p,
            &c,
            &Epilogue::bias_activation(Activation::ReLU, DType::F16),
            None,
        );
        let soft = gemm_profile(
            &t4(),
            &p,
            &c,
            &Epilogue::bias_activation(Activation::Softplus, DType::F16),
            None,
        );
        assert!(soft.flops.sfu > relu.flops.sfu);
        let tr = simulate_kernel(&t4(), &relu);
        let ts = simulate_kernel(&t4(), &soft);
        assert!(ts.total_us >= tr.total_us);
    }

    #[test]
    fn larger_warp_tiles_cut_smem_traffic() {
        let p = GemmProblem::fp16(4096, 4096, 4096);
        let big = GemmConfig::turing_default(); // warp 64x64
        let mut small = GemmConfig::turing_default();
        small.warp = crate::tiles::TileShape::new(32, 32, 32);
        let ep = Epilogue::linear(DType::F16);
        let pb = gemm_profile(&t4(), &p, &big, &ep, None);
        let ps = gemm_profile(&t4(), &p, &small, &ep, None);
        assert!(ps.smem_bytes > pb.smem_bytes);
    }
}
