//! Maps template instantiations to [`KernelProfile`]s for the GPU
//! simulator.
//!
//! This is the performance-model half of the templated library: given a
//! problem and a [`GemmConfig`], derive launch geometry, per-block
//! resources, per-pipeline flops, and DRAM/shared-memory traffic. The
//! traffic model follows the standard tiled-GEMM analysis:
//!
//! * per-block operand traffic `MNK·elt·(1/tb_n + 1/tb_m)`, of which the
//!   L2 absorbs re-reads within a wave (modeled by a leak factor driven by
//!   the wave working set vs. L2 capacity and the swizzle width);
//! * shared-memory traffic `2·MNK·elt·(1/warp_m + 1/warp_n)` — which is
//!   exactly why the profiler heuristic prefers large warp tiles (higher
//!   compute-to-smem ratio);
//! * main-loop efficiency from pipeline fill/drain (`k_iters / (k_iters +
//!   stages)`) and tile quantization waste at ragged boundaries.

use bolt_gpu_sim::{GpuArch, KernelProfile, Pipeline, PipelineFlops};
use bolt_tensor::conv_ref::Conv2dProblem;
use bolt_tensor::DType;

use crate::epilogue::Epilogue;
use crate::gemm::GemmProblem;
use crate::template::GemmConfig;

/// Main-loop issue efficiency of a templated GEMM: how close to pipeline
/// peak the inner loop runs, before occupancy derating (which the
/// simulator applies separately).
pub fn mainloop_efficiency(m: usize, n: usize, k: usize, config: &GemmConfig) -> f64 {
    let tb = config.threadblock;
    // Software pipeline fill/drain: with k_iters main-loop iterations and
    // `stages` in flight, the pipeline is full for k_iters/(k_iters+stages).
    let k_iters = (k as f64 / tb.k as f64).max(1.0);
    let fill = k_iters / (k_iters + config.stages as f64);
    // Tile quantization: partial boundary tiles compute wasted MACs.
    let util_m = m as f64 / (m.div_ceil(tb.m) * tb.m) as f64;
    let util_n = n as f64 / (n.div_ceil(tb.n) * tb.n) as f64;
    // Instruction shape: the wide 16x8x16 HMMA has the best issue rate.
    let inst = if config.instruction.k >= 16 {
        1.0
    } else {
        0.96
    };
    let base = match config.pipeline {
        // cp.async multi-stage main loops (Ampere) issue MMAs nearly
        // back-to-back; Turing's 2-stage pipeline pays more bookkeeping.
        Pipeline::TensorCore => {
            if config.stages >= 3 {
                0.985
            } else {
                0.95
            }
        }
        Pipeline::CudaCore => 0.90,
        Pipeline::Sfu => 0.5,
    };
    base * fill * util_m * util_n * inst
}

/// Main-loop derate from operand alignment: tensor cores are fed by
/// 128-bit `ldmatrix`/`ldg` operations; narrower legal accesses multiply
/// the load instruction count and predicate overhead, throttling issue
/// bandwidth on top of the DRAM-efficiency loss (the kernel-padding
/// motivation in Section 3.2.3).
pub fn alignment_issue_factor(alignment_elems: usize) -> f64 {
    match alignment_elems {
        a if a >= 8 => 1.0,
        4 => 0.85,
        2 => 0.62,
        // Scalar (alignment-1) accesses cannot feed ldmatrix at all; the
        // iterator falls back to element-wise loads with full predication.
        _ => 0.30,
    }
}

/// L2 leak factor: the fraction of per-block operand re-reads that miss L2
/// and reach DRAM. Grows as the wave working set outgrows the L2; shrinks
/// with wider threadblock swizzle (better wave locality).
fn l2_leak(arch: &GpuArch, problem_k: usize, config: &GemmConfig, element: DType) -> f64 {
    let tb = config.threadblock;
    let elt = element.size_bytes() as f64;
    // Blocks resident per wave (rough: limited by smem).
    let blocks_per_sm = (arch.smem_per_sm as f64 / config.smem_bytes(element).max(1) as f64)
        .floor()
        .max(1.0);
    let wave_blocks = blocks_per_sm * arch.sm_count as f64;
    // A swizzled wave covers a roughly square region of the output grid,
    // so of the `2 * wave_blocks` operand panels its blocks touch, only
    // ~`2 * sqrt(wave_blocks)` are unique; a linear (unswizzled) wave is
    // far worse.
    let swizzle_quality: f64 = match config.swizzle {
        s if s >= 4 => 1.0,
        2 => 1.6,
        _ => 3.0,
    };
    let unique_frac = (swizzle_quality / wave_blocks.sqrt()).min(1.0);
    // Even unique panels get evicted mid-wave once the wave's working set
    // outgrows the L2.
    let wave_set = wave_blocks * (tb.m + tb.n) as f64 * problem_k as f64 * elt;
    let evict = (unique_frac * wave_set / arch.l2_bytes as f64)
        .sqrt()
        .clamp(1.0, 3.0);
    (unique_frac * evict).clamp(0.02, 1.0)
}

/// Builds the [`KernelProfile`] of a templated GEMM kernel.
///
/// `extra_dram_bytes` lets callers add traffic for inputs the plain model
/// does not know about (e.g. the fused second-GEMM weights of a persistent
/// kernel).
pub fn gemm_profile(
    arch: &GpuArch,
    problem: &GemmProblem,
    config: &GemmConfig,
    epilogue: &Epilogue,
    extra_dram_bytes: Option<f64>,
) -> KernelProfile {
    let mut profile = gemm_search_profile(arch, problem, config, epilogue, extra_dram_bytes);
    profile.name = format!("gemm_{}_{}", problem, config.tag());
    profile
}

/// [`gemm_profile`] without the formatted kernel name.
///
/// The profiler's candidate loop builds one profile per enumerated
/// template and never reads the name; formatting it dominated the cost of
/// profile construction, so the search path uses this variant and the
/// name is only rendered for profiles that reach a timeline.
pub fn gemm_search_profile(
    arch: &GpuArch,
    problem: &GemmProblem,
    config: &GemmConfig,
    epilogue: &Epilogue,
    extra_dram_bytes: Option<f64>,
) -> KernelProfile {
    let tb = config.threadblock;
    let elt = problem.element.size_bytes() as f64;
    let batch = problem.batch as f64;
    let (m, n, k) = (problem.m as f64, problem.n as f64, problem.k as f64);

    let split_k = config.split_k.max(1) as u64;
    let grid_m = problem.m.div_ceil(tb.m) as u64;
    let grid_n = problem.n.div_ceil(tb.n) as u64;
    let grid = problem.batch as u64 * grid_m * grid_n * split_k;

    // ---- Arithmetic ------------------------------------------------------
    let mac_flops = problem.flops();
    let (ep_fma, ep_sfu) = epilogue.cost_per_elem();
    let out_elems = batch * m * n;
    let mut flops = PipelineFlops::none();
    match config.pipeline {
        Pipeline::TensorCore => flops.tensor_core = mac_flops,
        _ => flops.cuda_core = mac_flops,
    }
    flops.cuda_core += ep_fma * out_elems;
    flops.sfu += ep_sfu * out_elems;
    // Split-K reduction: combine `split_k` f32 partials per output element.
    if split_k > 1 {
        flops.cuda_core += out_elems * split_k as f64;
    }

    // ---- DRAM traffic ----------------------------------------------------
    let compulsory_in = batch * elt * (m * k + k * n);
    let block_in = batch * elt * (grid_n as f64 * m * k + grid_m as f64 * k * n);
    let leak = l2_leak(arch, problem.k, config, problem.element);
    // Split-K workspace traffic: each slice writes an f32 partial tile and
    // the reduction reads them all back.
    let workspace = if split_k > 1 {
        2.0 * out_elems * 4.0 * split_k as f64
    } else {
        0.0
    };
    let dram_read = compulsory_in
        + (block_in - compulsory_in).max(0.0) * leak
        + batch * epilogue.extra_bytes(problem.m, problem.n)
        + workspace / 2.0
        + extra_dram_bytes.unwrap_or(0.0);
    let out_bytes = out_elems * epilogue.out_dtype.size_bytes() as f64 + workspace / 2.0;

    // ---- Shared-memory traffic --------------------------------------------
    // Stage writes (global->smem) + per-warp reads of A/B fragments.
    let warp = config.warp;
    let smem_bytes = block_in.min(compulsory_in + (block_in - compulsory_in) * 0.5)
        + 2.0 * problem.macs() as f64 * elt * (1.0 / warp.m as f64 + 1.0 / warp.n as f64);

    KernelProfile {
        name: String::new(),
        grid_blocks: grid,
        block: config.block_resources(problem.element),
        flops,
        dram_read_bytes: dram_read,
        dram_write_bytes: out_bytes,
        smem_bytes,
        dtype: problem.element,
        alignment_elems: config.min_alignment(),
        bank_conflict_ways: 1.0,
        mainloop_efficiency: mainloop_efficiency(
            problem.m,
            problem.n,
            problem.k / config.split_k.max(1), // per-slice reduction depth
            config,
        ) * alignment_issue_factor(config.min_alignment()),
        pipelined_overlap: pipelined_overlap(config),
    }
}

/// Memory-overlap quality of a main loop: `cp.async` multi-stage pipelines
/// (Ampere, stages >= 3) keep global loads fully asynchronous under the
/// MMA stream; Turing double buffering leaves some latency exposed.
pub fn pipelined_overlap(config: &GemmConfig) -> f64 {
    if config.stages >= 3 {
        0.85
    } else {
        0.25
    }
}

/// Builds the [`KernelProfile`] of an implicit-GEMM Conv2D kernel.
///
/// Differences from the plain GEMM model:
///
/// * the im2col matrix is never materialized — activations are re-read
///   across the `R*S` filter taps, with the L1/L2 absorbing most of the
///   overlap (factor `1 + (R*S - 1) * overlap_miss`);
/// * the contiguous dimension of both activations (NHWC) and filters
///   (KRSC) is `C`, so the *input channel count* dictates alignment — the
///   mechanism behind Table 3's padding results.
pub fn conv2d_profile(
    arch: &GpuArch,
    problem: &Conv2dProblem,
    config: &GemmConfig,
    epilogue: &Epilogue,
    element: DType,
    extra_dram_bytes: Option<f64>,
) -> KernelProfile {
    let mut profile =
        conv2d_search_profile(arch, problem, config, epilogue, element, extra_dram_bytes);
    profile.name = format!(
        "conv2d_{}x{}x{}x{}_k{}r{}s{}_{}",
        problem.n,
        problem.h,
        problem.w,
        problem.c,
        problem.k,
        problem.r,
        problem.s,
        config.tag()
    );
    profile
}

/// [`conv2d_profile`] without the formatted kernel name — see
/// [`gemm_search_profile`] for why the search path skips it.
pub fn conv2d_search_profile(
    _arch: &GpuArch,
    problem: &Conv2dProblem,
    config: &GemmConfig,
    epilogue: &Epilogue,
    element: DType,
    extra_dram_bytes: Option<f64>,
) -> KernelProfile {
    let (gm, gn, gk) = problem.implicit_gemm_mnk();
    let tb = config.threadblock;
    let elt = element.size_bytes() as f64;

    let grid_m = gm.div_ceil(tb.m) as u64;
    let grid_n = gn.div_ceil(tb.n) as u64;
    let grid = grid_m * grid_n;

    // ---- Arithmetic ------------------------------------------------------
    let mac_flops = 2.0 * problem.macs() as f64;
    let (ep_fma, ep_sfu) = epilogue.cost_per_elem();
    let out_elems = gm as f64 * gn as f64;
    let mut flops = PipelineFlops::none();
    match config.pipeline {
        Pipeline::TensorCore => flops.tensor_core = mac_flops,
        _ => flops.cuda_core = mac_flops,
    }
    flops.cuda_core += ep_fma * out_elems;
    flops.sfu += ep_sfu * out_elems;

    // ---- DRAM traffic ----------------------------------------------------
    let act_bytes = (problem.n * problem.h * problem.w * problem.c) as f64 * elt;
    let taps = (problem.r * problem.s) as f64;
    let overlap_miss = 0.18; // L1/L2 serve most halo re-reads
    let input_read = act_bytes * (1.0 + (taps - 1.0) * overlap_miss);
    let filter_bytes = (problem.k * problem.r * problem.s * problem.c) as f64 * elt;
    // Filters are re-read by every M-tile; the L2 usually holds them.
    let filter_read = filter_bytes * (1.0 + (grid_m as f64 - 1.0) * 0.03).min(grid_m as f64);
    let dram_read =
        input_read + filter_read + epilogue.extra_bytes(gm, gn) + extra_dram_bytes.unwrap_or(0.0);
    let out_bytes = out_elems * epilogue.out_dtype.size_bytes() as f64;

    // ---- Shared-memory traffic --------------------------------------------
    let warp = config.warp;
    let smem_bytes = input_read.max(act_bytes) * 1.5
        + 2.0 * problem.macs() as f64 * elt * (1.0 / warp.m as f64 + 1.0 / warp.n as f64);

    // Alignment: C for input/filter (NHWC/KRSC contiguous dim), K for
    // output.
    use bolt_gpu_sim::memory::max_alignment;
    let align = max_alignment(element, problem.c)
        .min(max_alignment(element, problem.k))
        .min(config.min_alignment());

    KernelProfile {
        name: String::new(),
        grid_blocks: grid,
        block: config.block_resources(element),
        flops,
        dram_read_bytes: dram_read,
        dram_write_bytes: out_bytes,
        smem_bytes,
        dtype: element,
        alignment_elems: align,
        bank_conflict_ways: 1.0,
        // Implicit-GEMM iterators (NHWC gather, boundary predicates, filter
        // tap bookkeeping) cost issue slots that a plain GEMM main loop
        // doesn't pay; on 2-stage Turing pipelines CUTLASS Conv2dFprop
        // lands around 55-60% of the equivalent GEMM's efficiency.
        mainloop_efficiency: mainloop_efficiency(gm, gn, gk, config)
            * alignment_issue_factor(align)
            * 0.58,
        pipelined_overlap: pipelined_overlap(config),
    }
}

/// Precomputed workload-level constants for the per-candidate lower
/// bound, built once per profiled workload and evaluated per candidate.
///
/// Evaluating the bound costs a few dozen arithmetic ops and — crucially —
/// builds neither the candidate's [`KernelProfile`] nor its occupancy (the
/// caller supplies the [`Occupancy`] the generator caches alongside each
/// base combination). In the profiler's candidate loop the profile
/// construction itself is a large share of the per-candidate cost, so a
/// bound that required either could never pay for itself; this one lets a
/// pruned candidate skip both the profile build and the simulation.
///
/// Admissibility: every stream mirrors the float expressions that
/// [`gemm_search_profile`]/[`conv2d_search_profile`] +
/// [`bolt_gpu_sim::simulate_kernel`] evaluate — same main-loop efficiency,
/// same occupancy derates, same DRAM traffic including the L2-leak
/// re-reads and split-K workspace, same shared-memory staging, same
/// epilogue compute streams, same overlap leak and wave tail. Workload
/// constants (operand bytes, epilogue extras, per-stream `flops / peak`
/// bases) are folded at construction and combo constants (occupancy,
/// latency factor, leak coefficients) come prefolded in the
/// [`CandidateSeed`], so an evaluation is a handful of multiplies and
/// divides. The folding regroups a few products relative to the
/// simulator's literal expression order, which perturbs the result by at
/// most a few ULPs (relative error ~1e-15 on times that never exceed
/// ~1e6 µs); the 1e-9 µs absolute shave at the end dominates that drift
/// by orders of magnitude, making the value a *certified* lower bound.
/// Pruning on it is therefore winner-preserving: a skipped candidate
/// provably cannot beat (or tie) the incumbent best.
#[derive(Debug, Clone, Copy)]
pub struct CandidateBound {
    /// GEMM dimensions (the implicit-GEMM view for convolutions).
    m: usize,
    n: usize,
    k: usize,
    batch: usize,
    /// Conv candidates price the implicit-GEMM: no split-K grid/reduction
    /// scaling, an extra main-loop derate, and a channel alignment cap.
    implicit_gemm: bool,
    /// Extra main-loop efficiency factor (0.58 implicit-GEMM iterator
    /// overhead for conv, 1.0 for plain GEMM).
    eff_factor: f64,
    dtype: DType,
    /// Problem-side alignment cap (conv: C and K extents); `usize::MAX`
    /// for GEMM where the config's alignments are already clamped.
    alignment_cap: usize,
    /// Problem dims as f64, with `batch * elt` prefolded (the profile
    /// builders' own grouping) for the per-candidate `block_in` re-read
    /// traffic.
    m_f: f64,
    n_f: f64,
    k_f: f64,
    batch_elt: f64,
    /// GEMM: compulsory operand reads. Conv: activation reads including
    /// the halo re-read factor (`input_read`).
    base_read_bytes: f64,
    /// Conv only: raw activation and filter bytes feeding the per-tile
    /// filter re-read term; zero for GEMM.
    filter_bytes: f64,
    /// Epilogue extra DRAM reads (bias/residual operands), prefolded with
    /// the batch factor.
    ep_extra_bytes: f64,
    /// Output write bytes (before any split-K workspace).
    out_dram_bytes: f64,
    /// Conv only: the constant smem staging term
    /// (`input_read.max(act_bytes) * 1.5`); GEMM staging is derived from
    /// `block_in` per candidate.
    smem_staging_bytes: f64,
    /// Shared-memory fragment traffic numerator (`2 * macs * elt`); the
    /// per-candidate warp term multiplies by `1/warp_m + 1/warp_n`.
    smem_warp_traffic: f64,
    /// Output elements as the profile builders compute them (for the
    /// split-K workspace mirror).
    out_elems: f64,
    /// Prefolded compute-stream bases, each `stream_flops / stream_peak`
    /// so the per-candidate stream time is `base / eff` — one division for
    /// the whole compute term. `tc_base` is the MAC load on the
    /// tensor-core pipeline; `cc_base_tc`/`cc_base_other` are the
    /// CUDA-core load when MACs run on tensor cores vs elsewhere;
    /// `splitk_cc_coeff * split_k` adds the split-K reduction flops.
    tc_base: f64,
    cc_base_tc: f64,
    cc_base_other: f64,
    sfu_base: f64,
    splitk_cc_coeff: f64,
    /// Cached arch rates and model constants (bitwise identical to what
    /// `simulate_kernel` recomputes per call).
    dram_bytes_per_us: f64,
    smem_bytes_per_us: f64,
    launch_us: f64,
    overlap_leak: f64,
    wave_tail_us: f64,
    sm_count: u64,
}

impl CandidateBound {
    /// Bound context for a GEMM workload.
    pub fn gemm(arch: &GpuArch, problem: &GemmProblem, epilogue: &Epilogue) -> Self {
        let elt = problem.element.size_bytes() as f64;
        let batch = problem.batch as f64;
        let (m, n, k) = (problem.m as f64, problem.n as f64, problem.k as f64);
        // Mirrors `gemm_search_profile`'s float expressions exactly so the
        // bound's traffic never rounds above the profile's.
        let compulsory_in = batch * elt * (m * k + k * n);
        let out_elems = batch * m * n;
        Self::shared(
            arch,
            epilogue,
            problem.element,
            out_elems,
            problem.flops(),
            CandidateBound {
                m: problem.m,
                n: problem.n,
                k: problem.k,
                batch: problem.batch,
                implicit_gemm: false,
                eff_factor: 1.0,
                dtype: problem.element,
                alignment_cap: usize::MAX,
                m_f: m,
                n_f: n,
                k_f: k,
                batch_elt: batch * elt,
                base_read_bytes: compulsory_in,
                ep_extra_bytes: batch * epilogue.extra_bytes(problem.m, problem.n),
                out_dram_bytes: out_elems * epilogue.out_dtype.size_bytes() as f64,
                smem_warp_traffic: 2.0 * problem.macs() as f64 * elt,
                ..Self::zeroed()
            },
        )
    }

    /// Bound context for an implicit-GEMM Conv2D workload.
    pub fn conv2d(
        arch: &GpuArch,
        problem: &Conv2dProblem,
        epilogue: &Epilogue,
        element: DType,
    ) -> Self {
        use bolt_gpu_sim::memory::max_alignment;
        let (gm, gn, gk) = problem.implicit_gemm_mnk();
        let elt = element.size_bytes() as f64;
        // `conv2d_search_profile`'s own constants, bit for bit.
        let act_bytes = (problem.n * problem.h * problem.w * problem.c) as f64 * elt;
        let taps = (problem.r * problem.s) as f64;
        let overlap_miss = 0.18;
        let input_read = act_bytes * (1.0 + (taps - 1.0) * overlap_miss);
        let filter_bytes = (problem.k * problem.r * problem.s * problem.c) as f64 * elt;
        let out_elems = gm as f64 * gn as f64;
        Self::shared(
            arch,
            epilogue,
            element,
            out_elems,
            2.0 * problem.macs() as f64,
            CandidateBound {
                m: gm,
                n: gn,
                k: gk,
                batch: 1,
                implicit_gemm: true,
                eff_factor: 0.58,
                dtype: element,
                alignment_cap: max_alignment(element, problem.c)
                    .min(max_alignment(element, problem.k)),
                m_f: gm as f64,
                n_f: gn as f64,
                k_f: gk as f64,
                batch_elt: elt,
                base_read_bytes: input_read,
                filter_bytes,
                ep_extra_bytes: epilogue.extra_bytes(gm, gn),
                out_dram_bytes: out_elems * epilogue.out_dtype.size_bytes() as f64,
                smem_staging_bytes: input_read.max(act_bytes) * 1.5,
                smem_warp_traffic: 2.0 * problem.macs() as f64 * elt,
                ..Self::zeroed()
            },
        )
    }

    /// All-zero template so the constructors can use struct-update syntax
    /// for the shared arch-derived fields.
    fn zeroed() -> Self {
        CandidateBound {
            m: 0,
            n: 0,
            k: 0,
            batch: 0,
            implicit_gemm: false,
            eff_factor: 0.0,
            dtype: DType::F16,
            alignment_cap: 0,
            m_f: 0.0,
            n_f: 0.0,
            k_f: 0.0,
            batch_elt: 0.0,
            base_read_bytes: 0.0,
            filter_bytes: 0.0,
            ep_extra_bytes: 0.0,
            out_dram_bytes: 0.0,
            smem_staging_bytes: 0.0,
            smem_warp_traffic: 0.0,
            out_elems: 0.0,
            tc_base: 0.0,
            cc_base_tc: 0.0,
            cc_base_other: 0.0,
            sfu_base: 0.0,
            splitk_cc_coeff: 0.0,
            dram_bytes_per_us: 0.0,
            smem_bytes_per_us: 0.0,
            launch_us: 0.0,
            overlap_leak: 0.0,
            wave_tail_us: 0.0,
            sm_count: 0,
        }
    }

    /// Fills the fields every workload derives the same way: the prefolded
    /// compute-stream bases and the cached architecture rates.
    fn shared(
        arch: &GpuArch,
        epilogue: &Epilogue,
        element: DType,
        out_elems: f64,
        mac_flops: f64,
        mut ctx: CandidateBound,
    ) -> Self {
        let (ep_fma, ep_sfu) = epilogue.cost_per_elem();
        let ep_cc_flops = ep_fma * out_elems;
        let ep_sfu_flops = ep_sfu * out_elems;
        let tc_peak = arch.peak_tflops(Pipeline::TensorCore, element) * 1e6;
        let cc_peak = arch.peak_tflops(Pipeline::CudaCore, element) * 1e6;
        let sfu_peak = arch.peak_tflops(Pipeline::Sfu, element) * 1e6;
        ctx.out_elems = out_elems;
        // Mirror the simulator's `flops > 0` stream guards here so a
        // zero-flop stream stays exactly zero (not 0/0).
        ctx.tc_base = if mac_flops > 0.0 {
            mac_flops / tc_peak
        } else {
            0.0
        };
        ctx.cc_base_tc = if ep_cc_flops > 0.0 {
            ep_cc_flops / cc_peak
        } else {
            0.0
        };
        let other = mac_flops + ep_cc_flops;
        ctx.cc_base_other = if other > 0.0 { other / cc_peak } else { 0.0 };
        ctx.sfu_base = if ep_sfu_flops > 0.0 {
            ep_sfu_flops / sfu_peak
        } else {
            0.0
        };
        ctx.splitk_cc_coeff = out_elems / cc_peak;
        ctx.dram_bytes_per_us = arch.dram_bytes_per_us();
        ctx.smem_bytes_per_us = arch.smem_bytes_per_us();
        ctx.launch_us = arch.params.launch_overhead_us;
        ctx.overlap_leak = arch.params.overlap_leak;
        ctx.wave_tail_us = arch.params.wave_tail_us;
        ctx.sm_count = arch.sm_count as u64;
        ctx
    }

    /// The certified lower bound (µs) on the seed candidate's simulated
    /// time.
    ///
    /// `seed` must come from the same architecture and element type the
    /// context was built for — the generator hands out its prefolded
    /// occupancy, latency factor, and leak coefficients next to each
    /// candidate.
    pub fn lower_bound_us(&self, arch: &GpuArch, seed: &crate::generator::CandidateSeed) -> f64 {
        use bolt_gpu_sim::sm_utilization_factor;
        let occ = &seed.occupancy;
        if occ.blocks_per_sm == 0 {
            // The simulator prices an unlaunchable candidate at infinity.
            return f64::INFINITY;
        }
        let config = &seed.config;
        let tb = config.threadblock;
        let split_k = config.split_k.max(1);
        let grid_m = self.m.div_ceil(tb.m) as u64;
        let grid_n = self.n.div_ceil(tb.n) as u64;
        let mut grid = self.batch as u64 * grid_m * grid_n;
        let k_eff = if self.implicit_gemm {
            self.k
        } else {
            grid *= split_k as u64;
            self.k / split_k
        };
        let align = if self.implicit_gemm {
            self.alignment_cap.min(config.min_alignment())
        } else {
            config.min_alignment()
        };

        let sm_utilization = sm_utilization_factor(arch, occ.blocks_per_sm, grid);
        // Same grouping as the simulator: clamp(mainloop) * latency * util.
        let eff = (mainloop_efficiency(self.m, self.n, k_eff, config)
            * alignment_issue_factor(align)
            * self.eff_factor)
            .clamp(0.01, 1.0)
            * seed.latency_factor
            * sm_utilization;

        // Compute streams: MACs on the config's pipeline plus the epilogue
        // streams. `max(tc, cc) + sfu` distributes over the shared `eff`
        // division, so the prefolded `flops / peak` bases need only one
        // divide here.
        let splitk_cc = if !self.implicit_gemm && split_k > 1 {
            self.splitk_cc_coeff * split_k as f64
        } else {
            0.0
        };
        let stream_num = match config.pipeline {
            Pipeline::TensorCore => self.tc_base.max(self.cc_base_tc + splitk_cc),
            _ => self.cc_base_other + splitk_cc,
        };
        let compute_us = (stream_num + self.sfu_base) / eff;

        // DRAM and shared-memory traffic: the profile builders' models,
        // reconstructed term by term from the prefolded constants.
        let (dram_bytes, smem_bytes) = if self.implicit_gemm {
            let filter_read =
                self.filter_bytes * (1.0 + (grid_m as f64 - 1.0) * 0.03).min(grid_m as f64);
            let dram_read = self.base_read_bytes + filter_read + self.ep_extra_bytes;
            let warp = config.warp;
            let smem = self.smem_staging_bytes
                + self.smem_warp_traffic * (1.0 / warp.m as f64 + 1.0 / warp.n as f64);
            (dram_read + self.out_dram_bytes, smem)
        } else {
            let compulsory_in = self.base_read_bytes;
            let block_in = self.batch_elt
                * (grid_n as f64 * self.m_f * self.k_f + grid_m as f64 * self.k_f * self.n_f);
            // `perf::l2_leak`, refactored around the seed's combo-constant
            // coefficients: only the `sqrt(coeff * k)` eviction term
            // depends on the problem.
            let evict = (seed.leak_evict_coeff * self.k_f).sqrt().clamp(1.0, 3.0);
            let leak = (seed.leak_unique_frac * evict).clamp(0.02, 1.0);
            let workspace = if split_k > 1 {
                2.0 * self.out_elems * 4.0 * split_k as f64
            } else {
                0.0
            };
            let dram_read = compulsory_in
                + (block_in - compulsory_in).max(0.0) * leak
                + self.ep_extra_bytes
                + workspace / 2.0;
            let out_bytes = self.out_dram_bytes + workspace / 2.0;
            let warp = config.warp;
            let smem = block_in.min(compulsory_in + (block_in - compulsory_in) * 0.5)
                + self.smem_warp_traffic * (1.0 / warp.m as f64 + 1.0 / warp.n as f64);
            (dram_read + out_bytes, smem)
        };
        let dram_bw = self.dram_bytes_per_us
            * bolt_gpu_sim::alignment_efficiency(self.dtype, align)
            * sm_utilization.max(0.6);
        let dram_us = dram_bytes / dram_bw;
        let smem_us = smem_bytes / (self.smem_bytes_per_us * sm_utilization);

        // The simulator's combine step: secondary-stream leak and wave
        // tail priced with its exact expressions (the tail is bit-identical
        // — integer wave math on the same grid and occupancy).
        let dominant = compute_us.max(dram_us).max(smem_us);
        let leak = self.overlap_leak
            * (1.0 - pipelined_overlap(config).clamp(0.0, 1.0))
            * (compute_us + dram_us + smem_us - dominant);
        let waves = grid
            .max(1)
            .div_ceil(occ.blocks_per_sm as u64 * self.sm_count);
        let tail_us = (waves.saturating_sub(1)) as f64 * self.wave_tail_us;
        // 1 fs absolute shave: strictly dominates the rounding drift of
        // the prefolded reconstruction, without costing any real pruning
        // power.
        self.launch_us + dominant + leak + tail_us - 1e-9
    }
}

/// Analytic lower bound (in µs) on the simulated time of a templated GEMM
/// candidate.
///
/// The bound is admissible: it never exceeds what [`simulate_kernel`]
/// (`bolt_gpu_sim`) would report for the same candidate, so the profiler
/// can safely skip candidates whose bound already exceeds the running
/// best without ever discarding the true winner. Callers evaluating many
/// candidates of one workload should build a [`CandidateBound`] once and
/// reuse it; this wrapper rebuilds the context per call.
///
/// [`simulate_kernel`]: bolt_gpu_sim::simulate_kernel
pub fn gemm_lower_bound_us(
    arch: &GpuArch,
    problem: &GemmProblem,
    config: &GemmConfig,
    epilogue: &Epilogue,
) -> f64 {
    let seed = crate::generator::CandidateSeed::compute(arch, *config, problem.element);
    CandidateBound::gemm(arch, problem, epilogue).lower_bound_us(arch, &seed)
}

/// Analytic lower bound (in µs) for an implicit-GEMM Conv2D candidate.
/// See [`gemm_lower_bound_us`] for the admissibility contract.
pub fn conv2d_lower_bound_us(
    arch: &GpuArch,
    problem: &Conv2dProblem,
    config: &GemmConfig,
    epilogue: &Epilogue,
    element: DType,
) -> f64 {
    let seed = crate::generator::CandidateSeed::compute(arch, *config, element);
    CandidateBound::conv2d(arch, problem, epilogue, element).lower_bound_us(arch, &seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_gpu_sim::simulate_kernel;

    fn t4() -> GpuArch {
        GpuArch::tesla_t4()
    }

    #[test]
    fn efficiency_prefers_deep_k() {
        let c = GemmConfig::turing_default();
        let deep = mainloop_efficiency(4096, 4096, 4096, &c);
        let shallow = mainloop_efficiency(4096, 4096, 64, &c);
        assert!(deep > shallow + 0.2, "{deep} vs {shallow}");
    }

    #[test]
    fn efficiency_penalizes_ragged_tiles() {
        let c = GemmConfig::turing_default();
        let exact = mainloop_efficiency(1280, 3072, 768, &c);
        let ragged = mainloop_efficiency(1290, 3080, 768, &c);
        assert!(exact > ragged);
    }

    #[test]
    fn big_gemm_lands_near_tensor_core_peak() {
        let p = GemmProblem::fp16(4096, 4096, 4096);
        let prof = gemm_profile(
            &t4(),
            &p,
            &GemmConfig::turing_default(),
            &Epilogue::linear(DType::F16),
            None,
        );
        let t = simulate_kernel(&t4(), &prof);
        let tflops = t.tflops(p.flops());
        assert!(tflops > 40.0 && tflops < 65.0, "{tflops:.1} TFLOPS; {t:?}");
    }

    #[test]
    fn batched_small_gemm_is_memory_or_launch_bound() {
        let p = GemmProblem::fp16_batched(384, 40, 40, 64);
        let mut c = GemmConfig::turing_default();
        c.threadblock = crate::tiles::TileShape::new(64, 64, 32);
        c.warp = crate::tiles::TileShape::new(32, 32, 32);
        let prof = gemm_profile(&t4(), &p, &c, &Epilogue::linear(DType::F16), None);
        let t = simulate_kernel(&t4(), &prof);
        assert_ne!(t.bound, bolt_gpu_sim::Boundedness::Compute, "{t:?}");
    }

    #[test]
    fn conv_alignment_follows_channels() {
        let aligned = Conv2dProblem::new(32, 56, 56, 64, 64, 3, 3, (1, 1), (1, 1));
        let unaligned = Conv2dProblem::new(32, 20, 26, 46, 32, 3, 3, (1, 1), (1, 1));
        let c = GemmConfig::turing_default();
        let ep = Epilogue::linear(DType::F16);
        let pa = conv2d_profile(&t4(), &aligned, &c, &ep, DType::F16, None);
        let pu = conv2d_profile(&t4(), &unaligned, &c, &ep, DType::F16, None);
        assert_eq!(pa.alignment_elems, 8);
        assert_eq!(pu.alignment_elems, 2);
    }

    #[test]
    fn padding_speeds_up_unaligned_conv() {
        // Table 3 workload: IC=46 -> pad to 48. Use a right-sized config
        // (tb N matches the 32 output channels) as the profiler would pick.
        let unpadded = Conv2dProblem::new(32, 20, 26, 46, 32, 3, 3, (1, 1), (1, 1));
        let padded = Conv2dProblem::new(32, 20, 26, 48, 32, 3, 3, (1, 1), (1, 1));
        let mut c = GemmConfig::turing_default();
        c.threadblock = crate::tiles::TileShape::new(64, 32, 32);
        c.warp = crate::tiles::TileShape::new(32, 32, 32);
        let ep = Epilogue::linear(DType::F16);
        let tu = simulate_kernel(
            &t4(),
            &conv2d_profile(&t4(), &unpadded, &c, &ep, DType::F16, None),
        );
        let tp = simulate_kernel(
            &t4(),
            &conv2d_profile(&t4(), &padded, &c, &ep, DType::F16, None),
        );
        let gain = tu.total_us / tp.total_us;
        assert!(gain > 1.3, "padding gain {gain:.2} too small");
    }

    #[test]
    fn epilogue_cost_shows_up_for_sfu_heavy_activations() {
        use bolt_tensor::Activation;
        let p = GemmProblem::fp16(1280, 3072, 768);
        let c = GemmConfig::turing_default();
        let relu = gemm_profile(
            &t4(),
            &p,
            &c,
            &Epilogue::bias_activation(Activation::ReLU, DType::F16),
            None,
        );
        let soft = gemm_profile(
            &t4(),
            &p,
            &c,
            &Epilogue::bias_activation(Activation::Softplus, DType::F16),
            None,
        );
        assert!(soft.flops.sfu > relu.flops.sfu);
        let tr = simulate_kernel(&t4(), &relu);
        let ts = simulate_kernel(&t4(), &soft);
        assert!(ts.total_us >= tr.total_us);
    }

    #[test]
    fn candidate_bound_is_admissible_across_the_search_space() {
        use crate::generator::ConfigGenerator;
        use bolt_tensor::Activation;
        let t4 = t4();
        let generator = ConfigGenerator::new(&t4);
        let epilogues = [
            Epilogue::linear(DType::F16),
            Epilogue::bias_activation(Activation::Gelu, DType::F16),
        ];
        let gemms = [
            GemmProblem::fp16(4096, 4096, 4096),
            GemmProblem::fp16(1280, 3072, 768),
            GemmProblem::fp16(128, 768, 3072),
            GemmProblem::fp16_batched(384, 40, 40, 64),
            GemmProblem::fp16(32, 1000, 4096), // split-K territory
            GemmProblem::fp16(1024, 64, 46),   // unaligned K
        ];
        for ep in &epilogues {
            for problem in &gemms {
                let ctx = CandidateBound::gemm(&t4, problem, ep);
                for seed in generator.gemm_candidate_seeds(problem) {
                    let bound = ctx.lower_bound_us(&t4, &seed);
                    let profile = gemm_search_profile(&t4, problem, &seed.config, ep, None);
                    let sim = simulate_kernel(&t4, &profile).total_us;
                    if !sim.is_finite() {
                        assert!(bound.is_infinite(), "finite bound {bound} for infinite sim");
                        continue;
                    }
                    assert!(
                        bound <= sim,
                        "gemm {problem}: bound {bound} exceeds simulated {sim} for {}",
                        seed.config
                    );
                    assert!(bound > 0.0);
                    // The reconstruction must also stay *tight*: within the
                    // 1e-9 shave plus a ppb of rounding drift. Anything
                    // looser means a model term drifted out of mirror and
                    // the engine's pruning power silently degrades.
                    assert!(
                        sim - bound <= 1e-9 + sim * 1e-9,
                        "gemm {problem}: bound {bound} drifted below simulated {sim} for {}",
                        seed.config
                    );
                }
            }
            let convs = [
                Conv2dProblem::new(32, 56, 56, 64, 64, 3, 3, (1, 1), (1, 1)),
                Conv2dProblem::new(32, 20, 26, 46, 32, 3, 3, (1, 1), (1, 1)),
                Conv2dProblem::new(1, 14, 14, 256, 1024, 1, 1, (1, 1), (0, 0)),
            ];
            for problem in &convs {
                let ctx = CandidateBound::conv2d(&t4, problem, ep, DType::F16);
                for seed in generator.conv2d_candidate_seeds(problem, DType::F16) {
                    let bound = ctx.lower_bound_us(&t4, &seed);
                    let profile =
                        conv2d_search_profile(&t4, problem, &seed.config, ep, DType::F16, None);
                    let sim = simulate_kernel(&t4, &profile).total_us;
                    if !sim.is_finite() {
                        assert!(bound.is_infinite(), "finite bound {bound} for infinite sim");
                        continue;
                    }
                    assert!(
                        bound <= sim,
                        "conv {problem:?}: bound {bound} exceeds simulated {sim} for {}",
                        seed.config
                    );
                    assert!(
                        sim - bound <= 1e-9 + sim * 1e-9,
                        "conv {problem:?}: bound {bound} drifted below simulated {sim} for {}",
                        seed.config
                    );
                }
            }
        }
    }

    #[test]
    fn candidate_seeds_match_fresh_derivations() {
        // The bound's admissibility leans on the seed's cached factors
        // being what `simulate_kernel` and the profile builders recompute
        // per candidate: the occupancy must match bit for bit, and the
        // refactored leak constants must reproduce `l2_leak` to within
        // regrouping rounding.
        use crate::generator::ConfigGenerator;
        let t4 = t4();
        let generator = ConfigGenerator::new(&t4);
        let problem = GemmProblem::fp16(1280, 3072, 768);
        for seed in generator.gemm_candidate_seeds(&problem) {
            let fresh =
                bolt_gpu_sim::Occupancy::compute(&t4, seed.config.block_resources(problem.element));
            assert_eq!(seed.occupancy, fresh, "stale cached occupancy");
            let fresh_lat =
                bolt_gpu_sim::latency_hiding_factor(&t4, seed.occupancy.active_warps_per_sm);
            assert_eq!(seed.latency_factor, fresh_lat, "stale latency factor");
            let evict = (seed.leak_evict_coeff * problem.k as f64)
                .sqrt()
                .clamp(1.0, 3.0);
            let leak = (seed.leak_unique_frac * evict).clamp(0.02, 1.0);
            let fresh_leak = l2_leak(&t4, problem.k, &seed.config, problem.element);
            assert!(
                (leak - fresh_leak).abs() <= fresh_leak * 1e-12,
                "leak constants drifted: {leak} vs {fresh_leak}"
            );
        }
    }

    #[test]
    fn candidate_bound_is_tight_enough_to_prune() {
        // The bound only pays for itself if it separates losing candidates
        // from the winner: for a healthy compute-bound workload the best
        // candidate's bound must sit within ~2x of its simulated time.
        let t4 = t4();
        let problem = GemmProblem::fp16(1280, 3072, 768);
        let ep = Epilogue::linear(DType::F16);
        let ctx = CandidateBound::gemm(&t4, &problem, &ep);
        let seed =
            crate::generator::CandidateSeed::compute(&t4, GemmConfig::turing_default(), DType::F16);
        let bound = ctx.lower_bound_us(&t4, &seed);
        let sim = simulate_kernel(
            &t4,
            &gemm_search_profile(&t4, &problem, &seed.config, &ep, None),
        )
        .total_us;
        assert!(
            bound > sim * 0.5,
            "bound {bound} too loose vs simulated {sim}"
        );
    }

    #[test]
    fn larger_warp_tiles_cut_smem_traffic() {
        let p = GemmProblem::fp16(4096, 4096, 4096);
        let big = GemmConfig::turing_default(); // warp 64x64
        let mut small = GemmConfig::turing_default();
        small.warp = crate::tiles::TileShape::new(32, 32, 32);
        let ep = Epilogue::linear(DType::F16);
        let pb = gemm_profile(&t4(), &p, &big, &ep, None);
        let ps = gemm_profile(&t4(), &p, &small, &ep, None);
        assert!(ps.smem_bytes > pb.smem_bytes);
    }
}
