//! A fixed-function vendor library stand-in (cuBLAS / cuDNN).
//!
//! The Figure 1 baseline of the paper is "hardware-native performance as
//! delivered by vendor-tuned libraries". We model a vendor library as the
//! templated library driven by an **offline exhaustive search**: for each
//! workload it serves, it uses the best configuration in the whole template
//! space — which is what years of hand-tuning amount to — but it exposes
//! only a *fixed* operator set (GEMM with alpha/beta; Conv2D with optional
//! bias+ReLU), no custom epilogues and no cross-operator fusion. That
//! rigidity is exactly the gap Bolt fills.

use parking_lot::Mutex;
use std::collections::HashMap;

use bolt_gpu_sim::GpuArch;
use bolt_tensor::conv_ref::Conv2dProblem;
use bolt_tensor::{Activation, DType};

use crate::epilogue::Epilogue;
use crate::gemm::GemmProblem;
use crate::generator::ConfigGenerator;
use crate::perf;

/// The fixed-function operator set the vendor library exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VendorOp {
    /// `D = alpha * A @ B + beta * C` (cuBLAS `gemmEx`).
    Gemm,
    /// Forward convolution, optionally with fused bias + ReLU (cuDNN).
    Conv2dBiasRelu,
}

/// A cuBLAS/cuDNN-like library: hardware-native speed, fixed interface.
#[derive(Debug)]
pub struct VendorLibrary {
    arch: GpuArch,
    generator: ConfigGenerator,
    gemm_cache: Mutex<HashMap<GemmProblem, f64>>,
    conv_cache: Mutex<HashMap<(Conv2dProblem, bool), f64>>,
}

impl VendorLibrary {
    /// Creates the library for `arch`. The per-workload exhaustive search
    /// results are computed lazily and cached (the real library ships them
    /// baked into heuristics).
    pub fn new(arch: &GpuArch) -> Self {
        let mut generator = ConfigGenerator::new(arch);
        // The vendor's offline search is exhaustive, not a shortlist.
        generator.max_candidates = usize::MAX;
        VendorLibrary {
            arch: arch.clone(),
            generator,
            gemm_cache: Mutex::new(HashMap::new()),
            conv_cache: Mutex::new(HashMap::new()),
        }
    }

    /// True if the library can serve `activation` fused (vendor libraries
    /// support only the identity/ReLU epilogues of their fixed interface).
    pub fn supports_fused_activation(&self, activation: Activation) -> bool {
        matches!(activation, Activation::Identity | Activation::ReLU)
    }

    /// Hardware-native GEMM time: the best template configuration in the
    /// entire space, simulated. This is the "cuBLAS" line of Figure 1.
    pub fn gemm_time_us(&self, problem: &GemmProblem) -> f64 {
        if let Some(&t) = self.gemm_cache.lock().get(problem) {
            return t;
        }
        let ep = Epilogue::linear(problem.element);
        let candidates = self.generator.gemm_candidates(problem);
        let best = parallel_min_time(&self.arch, &candidates, |arch, config| {
            perf::gemm_profile(arch, problem, config, &ep, None)
        });
        self.gemm_cache.lock().insert(*problem, best);
        best
    }

    /// Delivered GEMM throughput in TFLOPS (Figure 1's y-axis).
    pub fn gemm_tflops(&self, problem: &GemmProblem) -> f64 {
        problem.flops() / (self.gemm_time_us(problem) * 1e6)
    }

    /// Hardware-native Conv2D time with the cuDNN-style fixed interface.
    pub fn conv2d_time_us(&self, problem: &Conv2dProblem, bias_relu: bool) -> f64 {
        let key = (*problem, bias_relu);
        if let Some(&t) = self.conv_cache.lock().get(&key) {
            return t;
        }
        let ep = if bias_relu {
            Epilogue::bias_activation(Activation::ReLU, DType::F16)
        } else {
            Epilogue::linear(DType::F16)
        };
        let candidates = self.generator.conv2d_candidates(problem, DType::F16);
        let best = parallel_min_time(&self.arch, &candidates, |arch, config| {
            perf::conv2d_profile(arch, problem, config, &ep, DType::F16, None)
        });
        self.conv_cache.lock().insert(key, best);
        best
    }
}

/// Prices every candidate in parallel (crossbeam scoped threads) and
/// returns the best time. The vendor's offline search sweeps the entire
/// template space, so this is the one profiling path where fan-out pays.
fn parallel_min_time<F>(arch: &GpuArch, candidates: &[crate::GemmConfig], build: F) -> f64
where
    F: Fn(&GpuArch, &crate::GemmConfig) -> bolt_gpu_sim::KernelProfile + Sync,
{
    if candidates.len() < 32 {
        return candidates
            .iter()
            .map(|c| bolt_gpu_sim::simulate_kernel(arch, &build(arch, c)).total_us)
            .fold(f64::INFINITY, f64::min);
    }
    let threads = std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .min(8);
    let chunk = candidates.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = candidates
            .chunks(chunk)
            .map(|chunk| {
                let build = &build;
                scope.spawn(move |_| {
                    chunk
                        .iter()
                        .map(|c| bolt_gpu_sim::simulate_kernel(arch, &build(arch, c)).total_us)
                        .fold(f64::INFINITY, f64::min)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("candidate pricing never panics"))
            .fold(f64::INFINITY, f64::min)
    })
    .expect("scoped threads join")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> VendorLibrary {
        VendorLibrary::new(&GpuArch::tesla_t4())
    }

    #[test]
    fn big_gemm_is_near_peak() {
        let l = lib();
        let tflops = l.gemm_tflops(&GemmProblem::fp16(4096, 4096, 4096));
        // cuBLAS reaches ~50-60 TFLOPS on T4 for large FP16 GEMMs.
        assert!(tflops > 45.0 && tflops <= 65.0, "{tflops:.1} TFLOPS");
    }

    #[test]
    fn caching_is_consistent() {
        let l = lib();
        let p = GemmProblem::fp16(1280, 3072, 768);
        let a = l.gemm_time_us(&p);
        let b = l.gemm_time_us(&p);
        assert_eq!(a, b);
        assert!(a.is_finite() && a > 0.0);
    }

    #[test]
    fn fixed_interface() {
        let l = lib();
        assert!(l.supports_fused_activation(Activation::ReLU));
        assert!(!l.supports_fused_activation(Activation::Hardswish));
        assert!(!l.supports_fused_activation(Activation::Softplus));
    }

    #[test]
    fn conv_time_reasonable() {
        let l = lib();
        let p = Conv2dProblem::new(32, 56, 56, 64, 64, 3, 3, (1, 1), (1, 1));
        let plain = l.conv2d_time_us(&p, false);
        let fused = l.conv2d_time_us(&p, true);
        assert!(plain.is_finite() && plain > 0.0);
        // Fused bias+relu adds epilogue math but saves nothing here (same
        // kernel); it must not be dramatically slower.
        assert!(fused < plain * 1.2);
    }
}
