//! Architecture-aware template enumeration — the search space of Bolt's
//! light-weight profiler.
//!
//! Bolt "determines possible \[parameter\] values according to the GPU
//! architecture as well as tuning guidelines that are specific to each
//! hardware" (Section 3.2.2). The guidelines encoded here are the ones the
//! paper lists:
//!
//! * within the register-file capacity, prefer **large warp tiles** for a
//!   higher compute-to-memory ratio;
//! * **four or eight warps** per threadblock perform best on modern
//!   NVIDIA GPUs;
//! * **small problems need small threadblocks** so that enough blocks are
//!   launched to keep all SMs busy.
//!
//! For each architecture the generator yields "tens of best parameter
//! combinations" (paper's words) — deliberately small, which is what makes
//! hardware-native profiling minutes instead of hours.

use bolt_gpu_sim::GpuArch;
use bolt_tensor::conv_ref::Conv2dProblem;
use bolt_tensor::DType;

use crate::gemm::GemmProblem;
use crate::template::GemmConfig;
use crate::tiles::TileShape;

/// Enumerates candidate template configurations for an architecture.
#[derive(Debug, Clone)]
pub struct ConfigGenerator {
    arch: GpuArch,
    /// Hard cap on how many candidates to emit per workload.
    pub max_candidates: usize,
}

impl ConfigGenerator {
    /// Creates a generator for `arch` with the default candidate budget.
    pub fn new(arch: &GpuArch) -> Self {
        ConfigGenerator {
            arch: arch.clone(),
            max_candidates: 40,
        }
    }

    /// The threadblock-tile menu for this architecture.
    fn threadblock_menu(&self) -> Vec<TileShape> {
        vec![
            TileShape::new(256, 128, 32),
            TileShape::new(128, 256, 32),
            TileShape::new(128, 128, 32),
            TileShape::new(128, 128, 64),
            TileShape::new(128, 64, 32),
            TileShape::new(64, 128, 32),
            TileShape::new(64, 64, 32),
            TileShape::new(64, 64, 64),
            TileShape::new(64, 32, 32),
            TileShape::new(32, 64, 32),
            TileShape::new(32, 32, 32),
        ]
    }

    /// Warp tilings of a threadblock that hit the preferred warp counts,
    /// largest warp tiles first.
    fn warp_menu(&self, tb: TileShape) -> Vec<TileShape> {
        let mut out = Vec::new();
        for (div_m, div_n) in [
            (1, 2),
            (2, 1),
            (2, 2),
            (1, 4),
            (4, 1),
            (2, 4),
            (4, 2),
            (1, 1),
        ] {
            if !tb.m.is_multiple_of(div_m) || !tb.n.is_multiple_of(div_n) {
                continue;
            }
            let warp = TileShape::new(tb.m / div_m, tb.n / div_n, tb.k);
            let warps = div_m * div_n;
            // Paper guideline: 4 or 8 warps per block tend to win; keep 1-2
            // only for tiny blocks.
            if warps > 8 {
                continue;
            }
            if warp.m < 16 || warp.n < 8 {
                continue;
            }
            out.push(warp);
        }
        out.sort_by_key(|w| std::cmp::Reverse(w.mn()));
        out.dedup();
        out
    }

    /// Candidate GEMM configs for `problem`, best-heuristic-score first.
    pub fn gemm_candidates(&self, problem: &GemmProblem) -> Vec<GemmConfig> {
        let stages_menu: &[usize] = if self.arch.compute_capability >= (8, 0) {
            &[3, 4, 2]
        } else {
            &[2]
        };
        let mut scored: Vec<(f64, GemmConfig)> = Vec::new();
        for tb in self.threadblock_menu() {
            for warp in self.warp_menu(tb) {
                for &stages in stages_menu {
                    for swizzle in [4u32, 1] {
                        // Volta tensor cores expose only the 8x8x4 HMMA
                        // shape; Turing/Ampere use the wide 16x8x16.
                        let instruction = if self.arch.compute_capability < (7, 5) {
                            TileShape::MMA_8X8X4
                        } else {
                            TileShape::MMA_16X8X16
                        };
                        let mut config = GemmConfig {
                            threadblock: tb,
                            warp,
                            instruction,
                            stages,
                            swizzle,
                            alignment_a: 8,
                            alignment_b: 8,
                            alignment_c: 8,
                            pipeline: bolt_gpu_sim::Pipeline::TensorCore,
                            split_k: 1,
                        };
                        let (a, b, c) = problem.max_alignments();
                        config.alignment_a = config.alignment_a.min(a);
                        config.alignment_b = config.alignment_b.min(b);
                        config.alignment_c = config.alignment_c.min(c);
                        if config.validate(&self.arch, problem.element).is_err() {
                            continue;
                        }
                        scored.push((self.score(problem, &config), config));
                        // Split-K variants when the plain grid underfills
                        // the SMs and K is deep enough to slice.
                        let grid =
                            problem.batch * problem.m.div_ceil(tb.m) * problem.n.div_ceil(tb.n);
                        if grid < self.arch.sm_count as usize && problem.k >= 4 * tb.k {
                            for split_k in [2usize, 4, 8] {
                                if problem.k < split_k * tb.k {
                                    break;
                                }
                                let mut c = config;
                                c.split_k = split_k;
                                if c.validate(&self.arch, problem.element).is_ok() {
                                    scored.push((self.score(problem, &c), c));
                                }
                            }
                        }
                    }
                }
            }
        }
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        scored
            .into_iter()
            .map(|(_, c)| c)
            .take(self.max_candidates)
            .collect()
    }

    /// Candidate configs for a convolution, via its implicit GEMM.
    pub fn conv2d_candidates(&self, problem: &Conv2dProblem, element: DType) -> Vec<GemmConfig> {
        let (m, n, k) = problem.implicit_gemm_mnk();
        let gemm = GemmProblem {
            m,
            n,
            k,
            batch: 1,
            element,
            ..GemmProblem::fp16(m, n, k)
        };
        self.gemm_candidates(&gemm)
    }

    /// Heuristic pre-profiling score (higher = try earlier). This is *not*
    /// the cost model — profiling measures for real — it only orders the
    /// shortlist the way the paper's tuning guidelines would.
    fn score(&self, problem: &GemmProblem, config: &GemmConfig) -> f64 {
        let tb = config.threadblock;
        let grid = (problem.batch * problem.m.div_ceil(tb.m) * problem.n.div_ceil(tb.n)) as f64;
        // Keep every SM busy: want at least one block per SM.
        let fill = (grid / self.arch.sm_count as f64).min(2.0);
        // Prefer large warp tiles (compute/memory ratio)...
        let warp_score = (config.warp.mn() as f64).sqrt() / 64.0;
        // ...and 4-8 warps per block.
        let warps = config.warp_count() as f64;
        let warp_count_score = if (4.0..=8.0).contains(&warps) {
            1.0
        } else {
            0.7
        };
        // Penalize tile waste on ragged problems.
        let waste_m = problem.m as f64 / (problem.m.div_ceil(tb.m) * tb.m) as f64;
        let waste_n = problem.n as f64 / (problem.n.div_ceil(tb.n) * tb.n) as f64;
        fill * warp_score * warp_count_score * waste_m * waste_n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator() -> ConfigGenerator {
        ConfigGenerator::new(&GpuArch::tesla_t4())
    }

    #[test]
    fn produces_tens_of_candidates() {
        let g = generator();
        let cands = g.gemm_candidates(&GemmProblem::fp16(4096, 4096, 4096));
        assert!(cands.len() >= 10, "only {} candidates", cands.len());
        assert!(cands.len() <= g.max_candidates);
    }

    #[test]
    fn all_candidates_are_valid() {
        let g = generator();
        let t4 = GpuArch::tesla_t4();
        for p in [
            GemmProblem::fp16(4096, 4096, 4096),
            GemmProblem::fp16(1280, 768, 768),
            GemmProblem::fp16_batched(384, 40, 40, 64),
        ] {
            for c in g.gemm_candidates(&p) {
                c.validate(&t4, p.element).unwrap();
            }
        }
    }

    #[test]
    fn small_problems_get_small_threadblocks_first() {
        let g = generator();
        let small = g.gemm_candidates(&GemmProblem::fp16(128, 64, 64));
        let first = small.first().expect("candidates for small problem");
        assert!(
            first.threadblock.m <= 64 && first.threadblock.n <= 64,
            "small problem should lead with small tiles, got {}",
            first.threadblock
        );
    }

    #[test]
    fn big_problems_get_big_warp_tiles_first() {
        let g = generator();
        let big = g.gemm_candidates(&GemmProblem::fp16(4096, 4096, 4096));
        let first = big.first().unwrap();
        assert!(first.warp.mn() >= 64 * 64, "got warp {}", first.warp);
    }

    #[test]
    fn unaligned_problems_clamp_alignment() {
        let g = generator();
        let cands = g.gemm_candidates(&GemmProblem::fp16(1024, 64, 46));
        assert!(!cands.is_empty());
        assert!(cands.iter().all(|c| c.alignment_a == 2));
    }

    #[test]
    fn conv_candidates_exist_for_resnet_shapes() {
        let g = generator();
        let p = Conv2dProblem::new(32, 56, 56, 64, 64, 3, 3, (1, 1), (1, 1));
        let cands = g.conv2d_candidates(&p, DType::F16);
        assert!(cands.len() >= 10);
    }

    #[test]
    fn split_k_candidates_for_underfilled_grids() {
        let g = generator();
        // Batch-32 classifier: tiny M*N grid, deep K.
        let cands = g.gemm_candidates(&GemmProblem::fp16(32, 1000, 4096));
        assert!(
            cands.iter().any(|c| c.split_k > 1),
            "expected split-K candidates for an SM-starved deep-K problem"
        );
        // Big grids don't need split-K.
        let big = g.gemm_candidates(&GemmProblem::fp16(4096, 4096, 4096));
        assert!(big.iter().all(|c| c.split_k == 1));
    }

    #[test]
    fn volta_uses_its_native_mma_shape() {
        let g = ConfigGenerator::new(&GpuArch::tesla_v100());
        let cands = g.gemm_candidates(&GemmProblem::fp16(2048, 2048, 2048));
        assert!(!cands.is_empty());
        assert!(cands.iter().all(|c| c.instruction == TileShape::MMA_8X8X4));
    }

    #[test]
    fn ampere_enables_multi_stage() {
        let g = ConfigGenerator::new(&GpuArch::a100());
        let cands = g.gemm_candidates(&GemmProblem::fp16(4096, 4096, 4096));
        assert!(cands.iter().any(|c| c.stages >= 3));
    }
}
