//! Architecture-aware template enumeration — the search space of Bolt's
//! light-weight profiler.
//!
//! Bolt "determines possible \[parameter\] values according to the GPU
//! architecture as well as tuning guidelines that are specific to each
//! hardware" (Section 3.2.2). The guidelines encoded here are the ones the
//! paper lists:
//!
//! * within the register-file capacity, prefer **large warp tiles** for a
//!   higher compute-to-memory ratio;
//! * **four or eight warps** per threadblock perform best on modern
//!   NVIDIA GPUs;
//! * **small problems need small threadblocks** so that enough blocks are
//!   launched to keep all SMs busy.
//!
//! For each architecture the generator yields "tens of best parameter
//! combinations" (paper's words) — deliberately small, which is what makes
//! hardware-native profiling minutes instead of hours.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use bolt_gpu_sim::{GpuArch, Occupancy};
use bolt_tensor::conv_ref::Conv2dProblem;
use bolt_tensor::DType;

use crate::gemm::GemmProblem;
use crate::template::GemmConfig;
use crate::tiles::TileShape;

/// A candidate template paired with the pricing inputs that depend only on
/// the base `(threadblock, warp, stages, swizzle)` combination — computed
/// once per architecture and element type, reused across every workload
/// and split-K/alignment variant.
///
/// The profiler's candidate-pruning bound consumes these instead of
/// re-deriving them per candidate per workload: occupancy and the latency
/// hiding factor depend only on the combo's block resources, and the
/// L2-leak factor of the DRAM model factors into a combo-constant
/// coefficient times the problem's reduction depth.
#[derive(Debug, Clone, Copy)]
pub struct CandidateSeed {
    /// The candidate template itself.
    pub config: GemmConfig,
    /// `Occupancy::compute(arch, config.block_resources(element))` —
    /// alignments and split-K don't change block resources, so the base
    /// combo's occupancy is exact for every variant.
    pub occupancy: Occupancy,
    /// `bolt_gpu_sim::latency_hiding_factor(arch, occupancy.active_warps_per_sm)`.
    pub latency_factor: f64,
    /// L2-leak constants: the leak factor of the combo on a problem with
    /// reduction depth `k` is
    /// `(leak_unique_frac * sqrt(leak_evict_coeff * k).clamp(1, 3)).clamp(0.02, 1)`.
    pub leak_unique_frac: f64,
    /// See [`CandidateSeed::leak_unique_frac`].
    pub leak_evict_coeff: f64,
}

impl CandidateSeed {
    /// Derives the combo-constant pricing inputs for `config` on `arch`.
    pub fn compute(arch: &GpuArch, config: GemmConfig, element: DType) -> Self {
        let occupancy = Occupancy::compute(arch, config.block_resources(element));
        let latency_factor =
            bolt_gpu_sim::latency_hiding_factor(arch, occupancy.active_warps_per_sm);
        // The leak constants refactor `perf::l2_leak` into a combo
        // coefficient times the problem's reduction depth under the
        // square root.
        let tb = config.threadblock;
        let elt = element.size_bytes() as f64;
        let blocks_per_sm = (arch.smem_per_sm as f64 / config.smem_bytes(element).max(1) as f64)
            .floor()
            .max(1.0);
        let wave_blocks = blocks_per_sm * arch.sm_count as f64;
        let swizzle_quality: f64 = match config.swizzle {
            s if s >= 4 => 1.0,
            2 => 1.6,
            _ => 3.0,
        };
        let unique_frac = (swizzle_quality / wave_blocks.sqrt()).min(1.0);
        let evict_coeff =
            unique_frac * wave_blocks * (tb.m + tb.n) as f64 * elt / arch.l2_bytes as f64;
        CandidateSeed {
            config,
            occupancy,
            latency_factor,
            leak_unique_frac: unique_frac,
            leak_evict_coeff: evict_coeff,
        }
    }
}

/// Enumerates candidate template configurations for an architecture.
#[derive(Debug, Clone)]
pub struct ConfigGenerator {
    arch: GpuArch,
    /// Hard cap on how many candidates to emit per workload.
    pub max_candidates: usize,
    /// Legal `(threadblock, warp, stages, swizzle)` combinations per
    /// element type, enumerated and validated once and reused across
    /// workloads, each paired with its combo-constant pricing inputs on
    /// `arch`. Template legality does not depend on the problem shape —
    /// per-problem alignment clamping always keeps the alignment rule
    /// satisfied — and neither do block resources (alignments and split-K
    /// don't change threads/registers/smem), so re-validating the raw menu
    /// and recomputing occupancy for every workload was pure overhead in
    /// the profiler's hot path. Shared across clones.
    base_combos: Arc<Mutex<HashMap<DType, Arc<Vec<CandidateSeed>>>>>,
}

impl ConfigGenerator {
    /// Creates a generator for `arch` with the default candidate budget.
    pub fn new(arch: &GpuArch) -> Self {
        ConfigGenerator {
            arch: arch.clone(),
            max_candidates: 40,
            base_combos: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The threadblock-tile menu for this architecture.
    fn threadblock_menu(&self) -> Vec<TileShape> {
        vec![
            TileShape::new(256, 128, 32),
            TileShape::new(128, 256, 32),
            TileShape::new(128, 128, 32),
            TileShape::new(128, 128, 64),
            TileShape::new(128, 64, 32),
            TileShape::new(64, 128, 32),
            TileShape::new(64, 64, 32),
            TileShape::new(64, 64, 64),
            TileShape::new(64, 32, 32),
            TileShape::new(32, 64, 32),
            TileShape::new(32, 32, 32),
        ]
    }

    /// Warp tilings of a threadblock that hit the preferred warp counts,
    /// largest warp tiles first.
    fn warp_menu(&self, tb: TileShape) -> Vec<TileShape> {
        let mut out = Vec::new();
        for (div_m, div_n) in [
            (1, 2),
            (2, 1),
            (2, 2),
            (1, 4),
            (4, 1),
            (2, 4),
            (4, 2),
            (1, 1),
        ] {
            if !tb.m.is_multiple_of(div_m) || !tb.n.is_multiple_of(div_n) {
                continue;
            }
            let warp = TileShape::new(tb.m / div_m, tb.n / div_n, tb.k);
            let warps = div_m * div_n;
            // Paper guideline: 4 or 8 warps per block tend to win; keep 1-2
            // only for tiny blocks.
            if warps > 8 {
                continue;
            }
            if warp.m < 16 || warp.n < 8 {
                continue;
            }
            out.push(warp);
        }
        out.sort_by_key(|w| std::cmp::Reverse(w.mn()));
        out.dedup();
        out
    }

    /// The validated base combinations for `element`, building and caching
    /// them on first use. Alignments are set to the widest the element
    /// type allows; per-problem clamping only ever narrows them, which
    /// cannot invalidate a combination (every legality rule other than the
    /// alignment-range check ignores the alignments, and clamped values
    /// stay powers of two within the element's vector width).
    fn base_combos(&self, element: DType) -> Arc<Vec<CandidateSeed>> {
        if let Some(combos) = self.base_combos.lock().get(&element) {
            return combos.clone();
        }
        let stages_menu: &[usize] = if self.arch.compute_capability >= (8, 0) {
            &[3, 4, 2]
        } else {
            &[2]
        };
        // Volta tensor cores expose only the 8x8x4 HMMA shape;
        // Turing/Ampere use the wide 16x8x16.
        let instruction = if self.arch.compute_capability < (7, 5) {
            TileShape::MMA_8X8X4
        } else {
            TileShape::MMA_16X8X16
        };
        let align = 8usize.min(element.max_vector_elems());
        let mut combos = Vec::new();
        for tb in self.threadblock_menu() {
            for warp in self.warp_menu(tb) {
                for &stages in stages_menu {
                    for swizzle in [4u32, 1] {
                        let config = GemmConfig {
                            threadblock: tb,
                            warp,
                            instruction,
                            stages,
                            swizzle,
                            alignment_a: align,
                            alignment_b: align,
                            alignment_c: align,
                            pipeline: bolt_gpu_sim::Pipeline::TensorCore,
                            split_k: 1,
                        };
                        if config.validate(&self.arch, element).is_ok() {
                            combos.push(CandidateSeed::compute(&self.arch, config, element));
                        }
                    }
                }
            }
        }
        let combos = Arc::new(combos);
        self.base_combos.lock().insert(element, combos.clone());
        combos
    }

    /// Candidate GEMM configs for `problem`, best-heuristic-score first.
    pub fn gemm_candidates(&self, problem: &GemmProblem) -> Vec<GemmConfig> {
        self.gemm_candidate_seeds(problem)
            .into_iter()
            .map(|seed| seed.config)
            .collect()
    }

    /// [`ConfigGenerator::gemm_candidates`] with each candidate's cached
    /// [`CandidateSeed`] pricing inputs — the profiler's candidate-pruning
    /// bound consumes them instead of re-deriving occupancy and the
    /// combo-constant model factors per candidate.
    pub fn gemm_candidate_seeds(&self, problem: &GemmProblem) -> Vec<CandidateSeed> {
        let combos = self.base_combos(problem.element);
        let (a, b, c) = problem.max_alignments();
        // Sort compact `(score, combo-index | split-K)` keys instead of
        // full `(config, occupancy)` tuples: moving the ~160-byte tuples
        // through the stable sort dominated the cost of candidate
        // generation, and only the `max_candidates` survivors ever need
        // materializing. The heuristic score ignores alignments and
        // split-K, so one evaluation per base combination covers all of
        // its variants bit-for-bit, and the stable sort keeps equal-score
        // candidates in push order exactly as the tuple sort did.
        let mut scored: Vec<(f64, u32)> = Vec::with_capacity(combos.len() * 2);
        for (idx, seed) in combos.iter().enumerate() {
            let score = self.score(problem, &seed.config);
            let key = (idx as u32) << 2;
            scored.push((score, key));
            // Split-K variants when the plain grid underfills the SMs and
            // K is deep enough to slice. No re-validation: no legality
            // rule besides the power-of-two range check reads `split_k`,
            // and 2/4/8 always pass it.
            let tb = seed.config.threadblock;
            let grid = problem.batch * problem.m.div_ceil(tb.m) * problem.n.div_ceil(tb.n);
            if grid < self.arch.sm_count as usize && problem.k >= 4 * tb.k {
                for (log2, split_k) in [(1u32, 2usize), (2, 4), (3, 8)] {
                    if problem.k < split_k * tb.k {
                        break;
                    }
                    scored.push((score, key | log2));
                }
            }
        }
        scored.sort_by(|x, y| y.0.total_cmp(&x.0));
        scored
            .iter()
            .take(self.max_candidates)
            .map(|&(_, key)| {
                let mut seed = combos[(key >> 2) as usize];
                seed.config.alignment_a = seed.config.alignment_a.min(a);
                seed.config.alignment_b = seed.config.alignment_b.min(b);
                seed.config.alignment_c = seed.config.alignment_c.min(c);
                seed.config.split_k = 1usize << (key & 3);
                debug_assert!(seed.config.validate(&self.arch, problem.element).is_ok());
                seed
            })
            .collect()
    }

    /// Candidate configs for a convolution, via its implicit GEMM.
    pub fn conv2d_candidates(&self, problem: &Conv2dProblem, element: DType) -> Vec<GemmConfig> {
        self.conv2d_candidate_seeds(problem, element)
            .into_iter()
            .map(|seed| seed.config)
            .collect()
    }

    /// [`ConfigGenerator::conv2d_candidates`] with each candidate's cached
    /// [`CandidateSeed`] — see [`ConfigGenerator::gemm_candidate_seeds`].
    pub fn conv2d_candidate_seeds(
        &self,
        problem: &Conv2dProblem,
        element: DType,
    ) -> Vec<CandidateSeed> {
        let (m, n, k) = problem.implicit_gemm_mnk();
        let gemm = GemmProblem {
            m,
            n,
            k,
            batch: 1,
            element,
            ..GemmProblem::fp16(m, n, k)
        };
        self.gemm_candidate_seeds(&gemm)
    }

    /// Heuristic pre-profiling score (higher = try earlier). This is *not*
    /// the cost model — profiling measures for real — it only orders the
    /// shortlist the way the paper's tuning guidelines would.
    fn score(&self, problem: &GemmProblem, config: &GemmConfig) -> f64 {
        let tb = config.threadblock;
        let grid = (problem.batch * problem.m.div_ceil(tb.m) * problem.n.div_ceil(tb.n)) as f64;
        // Keep every SM busy: want at least one block per SM.
        let fill = (grid / self.arch.sm_count as f64).min(2.0);
        // Prefer large warp tiles (compute/memory ratio)...
        let warp_score = (config.warp.mn() as f64).sqrt() / 64.0;
        // ...and 4-8 warps per block.
        let warps = config.warp_count() as f64;
        let warp_count_score = if (4.0..=8.0).contains(&warps) {
            1.0
        } else {
            0.7
        };
        // Penalize tile waste on ragged problems.
        let waste_m = problem.m as f64 / (problem.m.div_ceil(tb.m) * tb.m) as f64;
        let waste_n = problem.n as f64 / (problem.n.div_ceil(tb.n) * tb.n) as f64;
        fill * warp_score * warp_count_score * waste_m * waste_n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator() -> ConfigGenerator {
        ConfigGenerator::new(&GpuArch::tesla_t4())
    }

    #[test]
    fn produces_tens_of_candidates() {
        let g = generator();
        let cands = g.gemm_candidates(&GemmProblem::fp16(4096, 4096, 4096));
        assert!(cands.len() >= 10, "only {} candidates", cands.len());
        assert!(cands.len() <= g.max_candidates);
    }

    #[test]
    fn all_candidates_are_valid() {
        let g = generator();
        let t4 = GpuArch::tesla_t4();
        for p in [
            GemmProblem::fp16(4096, 4096, 4096),
            GemmProblem::fp16(1280, 768, 768),
            GemmProblem::fp16_batched(384, 40, 40, 64),
        ] {
            for c in g.gemm_candidates(&p) {
                c.validate(&t4, p.element).unwrap();
            }
        }
    }

    #[test]
    fn small_problems_get_small_threadblocks_first() {
        let g = generator();
        let small = g.gemm_candidates(&GemmProblem::fp16(128, 64, 64));
        let first = small.first().expect("candidates for small problem");
        assert!(
            first.threadblock.m <= 64 && first.threadblock.n <= 64,
            "small problem should lead with small tiles, got {}",
            first.threadblock
        );
    }

    #[test]
    fn big_problems_get_big_warp_tiles_first() {
        let g = generator();
        let big = g.gemm_candidates(&GemmProblem::fp16(4096, 4096, 4096));
        let first = big.first().unwrap();
        assert!(first.warp.mn() >= 64 * 64, "got warp {}", first.warp);
    }

    #[test]
    fn unaligned_problems_clamp_alignment() {
        let g = generator();
        let cands = g.gemm_candidates(&GemmProblem::fp16(1024, 64, 46));
        assert!(!cands.is_empty());
        assert!(cands.iter().all(|c| c.alignment_a == 2));
    }

    #[test]
    fn conv_candidates_exist_for_resnet_shapes() {
        let g = generator();
        let p = Conv2dProblem::new(32, 56, 56, 64, 64, 3, 3, (1, 1), (1, 1));
        let cands = g.conv2d_candidates(&p, DType::F16);
        assert!(cands.len() >= 10);
    }

    #[test]
    fn split_k_candidates_for_underfilled_grids() {
        let g = generator();
        // Batch-32 classifier: tiny M*N grid, deep K.
        let cands = g.gemm_candidates(&GemmProblem::fp16(32, 1000, 4096));
        assert!(
            cands.iter().any(|c| c.split_k > 1),
            "expected split-K candidates for an SM-starved deep-K problem"
        );
        // Big grids don't need split-K.
        let big = g.gemm_candidates(&GemmProblem::fp16(4096, 4096, 4096));
        assert!(big.iter().all(|c| c.split_k == 1));
    }

    #[test]
    fn volta_uses_its_native_mma_shape() {
        let g = ConfigGenerator::new(&GpuArch::tesla_v100());
        let cands = g.gemm_candidates(&GemmProblem::fp16(2048, 2048, 2048));
        assert!(!cands.is_empty());
        assert!(cands.iter().all(|c| c.instruction == TileShape::MMA_8X8X4));
    }

    #[test]
    fn ampere_enables_multi_stage() {
        let g = ConfigGenerator::new(&GpuArch::a100());
        let cands = g.gemm_candidates(&GemmProblem::fp16(4096, 4096, 4096));
        assert!(cands.iter().any(|c| c.stages >= 3));
    }
}
