//! One serving replica: an independent engine registry plus a
//! [`BoltServer`] (scheduler, batcher, worker pool of simulated GPU
//! streams), with a cluster-visible health state, placement-class
//! membership, per-arch kernel-cost signals, and retire hooks.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bolt::BoltConfig;
use bolt_gpu_sim::GpuArch;
use bolt_serve::registry::GraphBuilder;
use bolt_serve::{
    BoltServer, EngineRegistry, LoadGauges, MetricsSnapshot, RequestHandle, ServeConfig, ServeError,
};
use bolt_tensor::Tensor;
use parking_lot::RwLock;

use crate::error::ClusterError;

/// One model a replica serves.
#[derive(Clone)]
pub enum ModelSpec {
    /// A `bolt-models` zoo model by name.
    Zoo {
        /// Zoo model name (e.g. `"mlp-small"`).
        name: String,
        /// `true` compiles fully-profiled engines per bucket at launch;
        /// `false` boots fast on heuristic default-config engines (no
        /// profiling) — the autoscaler's scale-up path, which must not
        /// stall the cluster behind minutes of tuning.
        tuned: bool,
    },
    /// A model outside the zoo, from a graph-builder callback.
    Custom {
        /// Served model name.
        name: String,
        /// `batch` → inference graph at that batch size.
        build: GraphBuilder,
        /// See [`ModelSpec::Zoo::tuned`].
        tuned: bool,
    },
}

impl ModelSpec {
    /// The served model name.
    pub fn name(&self) -> &str {
        match self {
            ModelSpec::Zoo { name, .. } | ModelSpec::Custom { name, .. } => name,
        }
    }

    fn tuned(&self) -> bool {
        match self {
            ModelSpec::Zoo { tuned, .. } | ModelSpec::Custom { tuned, .. } => *tuned,
        }
    }
}

impl std::fmt::Debug for ModelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelSpec::Zoo { name, tuned } => f
                .debug_struct("Zoo")
                .field("name", name)
                .field("tuned", tuned)
                .finish(),
            ModelSpec::Custom { name, tuned, .. } => f
                .debug_struct("Custom")
                .field("name", name)
                .field("tuned", tuned)
                .finish_non_exhaustive(),
        }
    }
}

/// Everything needed to launch one replica. Every replica in a
/// placement class runs the same spec; different classes may run
/// different architectures. Sharing [`BoltConfig::cache_path`] across
/// replicas makes later launches (autoscaler scale-up) warm, and
/// setting [`BoltConfig::bundle_path`] to a packed multi-arch bundle
/// (`bolt-tune pack`) boots replicas of *any* arch with zero tuning
/// time — launch strictly validates that the bundle carries a shard for
/// the replica's architecture.
#[derive(Debug, Clone)]
pub struct ReplicaSpec {
    /// Simulated GPU the replica's engines compile for.
    pub arch: GpuArch,
    /// Compiler configuration (set `cache_path` for warm scale-up,
    /// `bundle_path` for zero-tuning boots from a shipped bundle).
    pub bolt: BoltConfig,
    /// Per-replica server configuration.
    pub serve: ServeConfig,
    /// Models every replica serves.
    pub models: Vec<ModelSpec>,
}

/// A replica's cluster-visible health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Serving: the router may place new requests here.
    Healthy,
    /// Graceful drain in progress: no new placements, queued work
    /// finishes.
    Draining,
    /// Gone (killed or fully drained): the router must skip it and
    /// re-route.
    Dead,
}

impl Health {
    fn from_u8(v: u8) -> Health {
        match v {
            0 => Health::Healthy,
            1 => Health::Draining,
            _ => Health::Dead,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            Health::Healthy => 0,
            Health::Draining => 1,
            Health::Dead => 2,
        }
    }
}

/// The simulated kernel-cost signal the cost/SLO-aware router places
/// by: what one request costs on *this* replica's architecture, priced
/// from the compiled engines' `bolt-gpu-sim` timelines (no live
/// measurement on the routing path — the costs are cached at first
/// lookup).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Simulated latency of a single-sample launch (the smallest
    /// compiled bucket), in µs — the latency-critical signal.
    pub batch1_us: f64,
    /// Simulated per-sample cost at the largest compiled bucket, in µs
    /// — the throughput signal (big arches amortize better).
    pub per_sample_us: f64,
    /// The largest compiled bucket the per-sample cost was priced at.
    pub max_batch: usize,
}

/// One serving replica, owned by a [`crate::Cluster`].
pub struct Replica {
    id: u64,
    /// The placement class that launched this replica.
    class: String,
    registry: Arc<EngineRegistry>,
    /// `None` once retired; the server is *taken out* to shut down, so a
    /// racing submit sees an empty slot and reports `ShuttingDown`
    /// instead of touching a joined thread pool.
    server: RwLock<Option<BoltServer>>,
    health: AtomicU8,
    /// Simulated tuning wall-clock this replica's launch paid. Zero when
    /// it booted fully warm from a cache or packed bundle.
    tuning_seconds: f64,
    /// Per-model kernel-cost cache for the router (engines are
    /// immutable once compiled, so a priced cost never goes stale).
    costs: RwLock<HashMap<String, KernelCost>>,
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.id)
            .field("class", &self.class)
            .field("arch", &self.registry.arch().name)
            .field("health", &self.health())
            .finish_non_exhaustive()
    }
}

impl Replica {
    /// Compiles the spec's models into a fresh registry and starts the
    /// serving threads, recording the replica's `class` and the tuning
    /// time the launch paid. When the spec names a tune bundle
    /// ([`BoltConfig::bundle_path`] or `BOLT_TUNE_BUNDLE`), the bundle
    /// is validated **strictly** first: a missing, corrupt, or
    /// wrong-arch bundle refuses the launch instead of silently
    /// re-tuning for minutes.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Bundle`] for an unusable tune bundle,
    /// [`ClusterError::Launch`] when a model fails to register/compile
    /// or the serve configuration is invalid.
    pub fn launch(id: u64, class: &str, spec: &ReplicaSpec) -> Result<Arc<Replica>, ClusterError> {
        let registry = Arc::new(EngineRegistry::new(spec.arch.clone(), spec.bolt.clone()));
        if let Some(path) = spec.bolt.tune_bundle_path() {
            // The compiler already loaded the bundle leniently at
            // construction; re-loading strictly costs one parse of a
            // small file (inserts are first-wins no-ops) and turns a
            // fleet misconfiguration into a typed refusal.
            registry
                .compiler()
                .profiler()
                .load_bundle(&path)
                .map_err(|e| ClusterError::Bundle {
                    path: path.display().to_string(),
                    reason: e.to_string(),
                })?;
        }
        let buckets = spec.serve.buckets();
        for model in &spec.models {
            register_model(&registry, model, &buckets).map_err(ClusterError::Launch)?;
        }
        let tuning_seconds = registry.compiler().profiler().stats().tuning_seconds();
        let server = BoltServer::start(Arc::clone(&registry), spec.serve.clone())
            .map_err(ClusterError::Launch)?;
        Ok(Arc::new(Replica {
            id,
            class: class.to_string(),
            registry,
            server: RwLock::new(Some(server)),
            health: AtomicU8::new(Health::Healthy.as_u8()),
            tuning_seconds,
            costs: RwLock::new(HashMap::new()),
        }))
    }

    /// The cluster-assigned replica id (stable for its lifetime).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The placement class this replica belongs to.
    pub fn class(&self) -> &str {
        &self.class
    }

    /// The architecture this replica's engines are compiled for.
    pub fn arch(&self) -> &GpuArch {
        self.registry.arch()
    }

    /// Simulated tuning wall-clock the launch paid (template generation
    /// plus profiling). Zero when every workload came from a warm cache
    /// or packed bundle — the paper's "ship the tuned configs, not the
    /// tuning" claim, observable per replica.
    pub fn tuning_seconds(&self) -> f64 {
        self.tuning_seconds
    }

    /// The cached kernel-cost signal for `model` on this replica's
    /// architecture, priced from the compiled engines on first lookup.
    /// `None` when the model is unknown here or has no compiled bucket
    /// yet (dynamic registration before first traffic).
    pub fn kernel_cost(&self, model: &str) -> Option<KernelCost> {
        if let Some(cost) = self.costs.read().get(model) {
            return Some(*cost);
        }
        let engines = self.registry.get(model)?;
        let buckets = engines.bucket_sizes();
        let (&smallest, &largest) = (buckets.first()?, buckets.last()?);
        let batch1_us = engines.engine_for(smallest)?.1.time().total_us;
        let (max_batch, big_engine) = engines.engine_for(largest)?;
        let per_sample_us = big_engine.time().total_us / max_batch.max(1) as f64;
        let cost = KernelCost {
            batch1_us,
            per_sample_us,
            max_batch,
        };
        self.costs.write().insert(model.to_string(), cost);
        Some(cost)
    }

    /// This replica's engine registry.
    pub fn registry(&self) -> &Arc<EngineRegistry> {
        &self.registry
    }

    /// Current health state.
    pub fn health(&self) -> Health {
        Health::from_u8(self.health.load(Ordering::Acquire))
    }

    pub(crate) fn set_health(&self, health: Health) {
        self.health.store(health.as_u8(), Ordering::Release);
    }

    /// Live load gauges, `None` once the replica is retired.
    pub fn load(&self) -> Option<LoadGauges> {
        self.server.read().as_ref().map(BoltServer::load)
    }

    /// A metrics snapshot, `None` once the replica is retired.
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        self.server.read().as_ref().map(BoltServer::metrics)
    }

    /// Submits to this replica's server, handing inputs back on any
    /// rejection so the router can re-route. A non-`Healthy` replica
    /// refuses immediately with [`ServeError::ShuttingDown`].
    ///
    /// # Errors
    ///
    /// The server's admission errors, paired with the unconsumed inputs.
    pub fn submit_recoverable(
        &self,
        model: &str,
        inputs: Vec<Tensor>,
        deadline: Option<Duration>,
    ) -> Result<RequestHandle, (ServeError, Vec<Tensor>)> {
        if self.health() != Health::Healthy {
            return Err((ServeError::ShuttingDown, inputs));
        }
        match &*self.server.read() {
            Some(server) => server.submit_recoverable(model, inputs, deadline),
            None => Err((ServeError::ShuttingDown, inputs)),
        }
    }

    /// Stops the replica and returns its final metrics (or `None` when
    /// already retired). `graceful` drains queued work to completion;
    /// `!graceful` is an abrupt kill — queued requests resolve
    /// `Rejected`, in-flight batches still finish (exactly-once holds
    /// either way).
    pub fn retire(&self, graceful: bool) -> Option<MetricsSnapshot> {
        self.set_health(if graceful {
            Health::Draining
        } else {
            Health::Dead
        });
        let server = self.server.write().take()?;
        let stats = if graceful {
            server.shutdown()
        } else {
            server.abort()
        };
        self.set_health(Health::Dead);
        Some(stats)
    }
}

/// Registers one model on a replica's registry: tuned specs compile
/// fully-profiled engines per bucket; untuned specs register dynamically
/// and install heuristic default-config engines (zero profiling time).
fn register_model(
    registry: &Arc<EngineRegistry>,
    model: &ModelSpec,
    buckets: &[usize],
) -> Result<(), ServeError> {
    let name = model.name().to_string();
    if model.tuned() {
        match model {
            ModelSpec::Zoo { .. } => {
                registry.register_zoo(&name, buckets)?;
            }
            ModelSpec::Custom { build, .. } => {
                let build = Arc::clone(build);
                registry.register_with(&name, buckets, move |batch| build(batch))?;
            }
        }
        return Ok(());
    }
    match model {
        ModelSpec::Zoo { .. } => {
            registry.register_zoo_dynamic(&name)?;
        }
        ModelSpec::Custom { build, .. } => {
            let build = Arc::clone(build);
            registry.register_dynamic(&name, move |batch| build(batch))?;
        }
    }
    for &bucket in buckets {
        let engine = registry.compile_heuristic_bucket(&name, bucket)?;
        registry.insert_bucket(&name, bucket, engine)?;
    }
    Ok(())
}
