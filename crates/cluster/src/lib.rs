#![warn(missing_docs)]
//! # bolt-cluster
//!
//! A simulated sharded serving cluster layered on `bolt-serve` — the
//! "millions of users" tier: N tuned replicas turned into near-linear
//! aggregate throughput.
//!
//! The subsystem has four moving parts:
//!
//! 1. **Replicas** ([`Replica`], launched from a [`ReplicaSpec`]) — each
//!    an independent [`bolt_serve::EngineRegistry`] plus a
//!    [`bolt_serve::BoltServer`] (scheduler, batcher, worker pool of
//!    simulated GPU streams), with a cluster-visible health state.
//!    Replicas sharing a [`bolt::BoltConfig::cache_path`] launch warm:
//!    scale-up re-reads the tuned configs the first replica profiled.
//! 2. **Router** ([`PlacementPolicy`]) — consistent hashing of the model
//!    name onto a virtual-node ring (cache affinity: a model's requests
//!    stay on one replica while it lives), or least-loaded with rotating
//!    tie-break (instantaneous balance for single-model workloads). The
//!    candidate order doubles as the failover order.
//! 3. **Replica-aware admission** ([`Cluster::submit`]) — backpressure
//!    or a dying replica re-routes the request (inputs are handed back
//!    by `submit_recoverable`, never cloned per attempt); the cluster
//!    fails fast with [`ClusterError::AllBackpressured`] only when
//!    *every* healthy candidate refused.
//! 4. **Autoscaler** ([`Autoscaler`]) — grows and shrinks the replica
//!    set from mean queue depth and windowed-p99 signals with
//!    hysteresis and cooldown; scale-down is a graceful drain, so
//!    shrinking never drops accepted work. Replica death (the `chaos`
//!    feature's seeded [`bolt::faults::FaultSite::ReplicaKill`]) is
//!    detected by the router, which re-routes around the corpse.
//!
//! Exactly-once everywhere: every request a replica accepts resolves to
//! one terminal [`bolt_serve::Outcome`] — through graceful drains,
//! abrupt kills, and autoscaler churn —
//! [`ClusterTotals::unresolved`]` == 0` after shutdown.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use bolt::BoltConfig;
//! use bolt_cluster::{Cluster, ClusterConfig, ModelSpec, PlacementPolicy, ReplicaSpec};
//! use bolt_gpu_sim::GpuArch;
//! use bolt_serve::{Outcome, ServeConfig};
//! use bolt_tensor::{DType, Tensor};
//!
//! let cluster = Cluster::new(ClusterConfig {
//!     replica: ReplicaSpec {
//!         arch: GpuArch::tesla_t4(),
//!         bolt: BoltConfig::default(),
//!         serve: ServeConfig::default(),
//!         models: vec![ModelSpec::Zoo { name: "mlp-small".into(), tuned: true }],
//!     },
//!     initial_replicas: 2,
//!     policy: PlacementPolicy::default(),
//! })
//! .unwrap();
//!
//! let outcome = cluster
//!     .infer("mlp-small", vec![Tensor::randn(&[1, 128], DType::F16, 1)])
//!     .unwrap();
//! assert!(matches!(outcome, Outcome::Completed(_)));
//! let end = cluster.shutdown();
//! assert_eq!(end.totals.unresolved(), 0);
//! ```

pub mod autoscaler;
pub mod cluster;
pub mod error;
pub mod replica;
pub mod router;

pub use autoscaler::{Autoscaler, AutoscalerConfig, AutoscalerHandle, ScaleDecision};
pub use cluster::{Cluster, ClusterConfig, ClusterSnapshot, ClusterTotals, RetiredReplica};
pub use error::ClusterError;
pub use replica::{Health, ModelSpec, Replica, ReplicaSpec};
pub use router::PlacementPolicy;

/// Result alias for cluster operations.
pub type Result<T> = std::result::Result<T, ClusterError>;
