#![warn(missing_docs)]
//! # bolt-cluster
//!
//! A simulated sharded serving cluster layered on `bolt-serve` — the
//! "millions of users" tier: tuned replicas, possibly of **mixed
//! architectures**, turned into near-linear aggregate throughput.
//!
//! The subsystem has four moving parts:
//!
//! 1. **Replicas** ([`Replica`], launched from a [`ReplicaSpec`]) — each
//!    an independent [`bolt_serve::EngineRegistry`] plus a
//!    [`bolt_serve::BoltServer`] (scheduler, batcher, worker pool of
//!    simulated GPU streams), with a cluster-visible health state and a
//!    [`PlacementClass`] membership. Replicas sharing a
//!    [`bolt::BoltConfig::cache_path`] launch warm, and a packed
//!    multi-arch tune bundle ([`bolt::BoltConfig::bundle_path`], built
//!    by `bolt-tune pack`) boots a replica of *any* architecture with
//!    [`Replica::tuning_seconds`]` == 0` — launch strictly validates
//!    the bundle and refuses ([`ClusterError::Bundle`]) rather than
//!    silently re-tuning.
//! 2. **Router** ([`PlacementPolicy`]) — consistent hashing of the model
//!    name onto a virtual-node ring (cache affinity), least-loaded with
//!    rotating tie-break (instantaneous balance), or **cost/SLO-aware
//!    placement** for mixed fleets: replicas are scored by their
//!    simulated per-arch kernel cost ([`Replica::kernel_cost`]) so
//!    latency-critical requests land on the nearest warm fast engine
//!    while bulk traffic flows to the class that amortizes big batches
//!    best. The candidate order doubles as the failover order, so
//!    backpressure degrades across classes instead of failing.
//! 3. **Replica-aware admission** ([`Cluster::submit`]) — backpressure
//!    or a dying replica re-routes the request (inputs are handed back
//!    by `submit_recoverable`, never cloned per attempt); the cluster
//!    fails fast with [`ClusterError::AllBackpressured`] only when
//!    *every* healthy candidate refused.
//! 4. **Autoscaler** ([`Autoscaler`]) — tracks mean queue depth and
//!    windowed-p99 signals **per class** with hysteresis and cooldown,
//!    scaling the hot class instead of the fleet uniformly; class size
//!    bounds live on [`PlacementClass`]. Scale-down is a graceful
//!    drain, so shrinking never drops accepted work. Replica death (the
//!    `chaos` feature's seeded [`bolt::faults::FaultSite::ReplicaKill`])
//!    is detected by the router, which re-routes around the corpse.
//!
//! Exactly-once everywhere: every request a replica accepts resolves to
//! one terminal [`bolt_serve::Outcome`] — through graceful drains,
//! abrupt kills, and autoscaler churn —
//! [`ClusterTotals::unresolved`]` == 0` after shutdown.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use bolt::BoltConfig;
//! use bolt_cluster::{Cluster, ClusterConfig, ModelSpec, PlacementPolicy, ReplicaSpec};
//! use bolt_gpu_sim::GpuArch;
//! use bolt_serve::{Outcome, ServeConfig};
//! use bolt_tensor::{DType, Tensor};
//!
//! let spec = ReplicaSpec {
//!     arch: GpuArch::tesla_t4(),
//!     bolt: BoltConfig::default(),
//!     serve: ServeConfig::default(),
//!     models: vec![ModelSpec::Zoo { name: "mlp-small".into(), tuned: true }],
//! };
//! let cluster = Cluster::new(ClusterConfig::homogeneous(
//!     spec,
//!     2,
//!     PlacementPolicy::default(),
//! ))
//! .unwrap();
//!
//! let outcome = cluster
//!     .infer("mlp-small", vec![Tensor::randn(&[1, 128], DType::F16, 1)])
//!     .unwrap();
//! assert!(matches!(outcome, Outcome::Completed(_)));
//! let end = cluster.shutdown();
//! assert_eq!(end.totals.unresolved(), 0);
//! ```
//!
//! A heterogeneous fleet lists one [`PlacementClass`] per architecture
//! (e.g. a `"t4"` class and an `"a100"` class over the same models)
//! and routes with [`PlacementPolicy::CostSlo`]; see
//! `examples/cluster_demo.rs`.

pub mod autoscaler;
pub mod cluster;
pub mod error;
pub mod replica;
pub mod router;

pub use autoscaler::{Autoscaler, AutoscalerConfig, AutoscalerHandle, ScaleDecision};
pub use cluster::{
    Cluster, ClusterConfig, ClusterSnapshot, ClusterTotals, PlacementClass, RetiredReplica,
};
pub use error::ClusterError;
pub use replica::{Health, KernelCost, ModelSpec, Replica, ReplicaSpec};
pub use router::PlacementPolicy;

/// Result alias for cluster operations.
pub type Result<T> = std::result::Result<T, ClusterError>;
