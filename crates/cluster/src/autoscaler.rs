//! The autoscaler: grows and shrinks each placement class from live
//! load signals — the *hot class* scales, not the fleet uniformly.
//!
//! Signals per tick, scraped per class from each healthy replica's
//! cheap [`bolt_serve::LoadGauges`]:
//!
//! - **mean outstanding** — queued + in-flight requests averaged over
//!   the class's replicas (queue-depth pressure), and
//! - **max recent p99** — the worst windowed p99 latency in the class
//!   (the cumulative p99 cannot move once enough history accumulates,
//!   so the window is what tracks *current* load).
//!
//! On a mixed fleet the classes saturate at different points (an
//! A100-class replica absorbs several T4s' worth of throughput
//! traffic), so hot/cold streaks are tracked **per class** and every
//! scaling action names the class it acted on. Class size bounds live
//! on [`crate::PlacementClass`] — the class definition owns its shape.
//!
//! Hysteresis: a scale-up needs `scale_up_after` consecutive hot ticks
//! in that class, a scale-down `scale_down_after` consecutive cold
//! ticks, and every action is followed by `cooldown_ticks` of mandatory
//! holding for that class so its signals can re-settle. Scale-down uses
//! [`crate::Cluster::drain_replica`] — graceful, so shrinking never
//! drops accepted work.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::cluster::Cluster;
use crate::error::ClusterError;
use crate::replica::Health;

/// Thresholds and pacing for an [`Autoscaler`]. Applied per placement
/// class; the per-class size bounds live on [`crate::PlacementClass`].
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscalerConfig {
    /// Hot when mean outstanding requests per replica exceeds this.
    pub queue_depth_high: f64,
    /// Cold only when mean outstanding falls below this.
    pub queue_depth_low: f64,
    /// Hot when any replica's recent p99 exceeds this (µs).
    pub p99_high_us: f64,
    /// Cold only when every replica's recent p99 is below this (µs).
    pub p99_low_us: f64,
    /// Consecutive hot ticks before adding a replica to a class.
    pub scale_up_after: u32,
    /// Consecutive cold ticks before draining a replica from a class.
    pub scale_down_after: u32,
    /// Ticks a class holds after any scaling action on it.
    pub cooldown_ticks: u32,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        AutoscalerConfig {
            queue_depth_high: 32.0,
            queue_depth_low: 2.0,
            p99_high_us: 50_000.0,
            p99_low_us: 10_000.0,
            scale_up_after: 2,
            scale_down_after: 4,
            cooldown_ticks: 4,
        }
    }
}

/// What one autoscaler tick decided.
#[derive(Debug, Clone, PartialEq)]
pub enum ScaleDecision {
    /// No change (within thresholds, in hysteresis, or in cooldown).
    Hold,
    /// A replica was added to a class.
    ScaledUp {
        /// The placement class that grew.
        class: String,
        /// The new replica's id.
        added: u64,
    },
    /// A replica was gracefully drained out of a class.
    ScaledDown {
        /// The placement class that shrank.
        class: String,
        /// The drained replica's id.
        drained: u64,
    },
    /// A scaling action was attempted and failed (e.g. launch error);
    /// the class holds and will retry after cooldown.
    Failed {
        /// The error the action hit.
        error: ClusterError,
    },
}

/// Per-class hysteresis state.
#[derive(Debug, Default)]
struct ClassState {
    hot_ticks: u32,
    cold_ticks: u32,
    cooldown: u32,
}

/// Deterministic, manually-tickable scaling loop over a [`Cluster`].
/// Drive it with [`Autoscaler::tick`] (tests, benches), or let
/// [`Autoscaler::spawn`] run it on a wall-clock interval.
pub struct Autoscaler {
    cluster: Arc<Cluster>,
    config: AutoscalerConfig,
    classes: HashMap<String, ClassState>,
}

impl Autoscaler {
    /// Creates an autoscaler driving `cluster` with `config`.
    pub fn new(cluster: Arc<Cluster>, config: AutoscalerConfig) -> Self {
        let classes = cluster
            .config()
            .classes
            .iter()
            .map(|c| (c.name.clone(), ClassState::default()))
            .collect();
        Autoscaler {
            cluster,
            config,
            classes,
        }
    }

    /// One scaling decision from the current load signals: at most one
    /// action per tick, on the class that needs it most. Below-floor
    /// restore (e.g. after chaos kills) preempts everything and ignores
    /// hysteresis — a class below its `min_replicas` is not a tuning
    /// question.
    pub fn tick(&mut self) -> ScaleDecision {
        let replicas = self.cluster.replicas();
        let class_defs: Vec<(String, usize, usize)> = self
            .cluster
            .config()
            .classes
            .iter()
            .map(|c| (c.name.clone(), c.min_replicas, c.max_replicas))
            .collect();

        for (name, min_replicas, _) in &class_defs {
            let healthy = replicas
                .iter()
                .filter(|r| r.class() == *name && r.health() == Health::Healthy)
                .count();
            if healthy < *min_replicas {
                return self.scale_up_class(name);
            }
        }

        // Hottest hot class scales up first; only when no class is due
        // to grow does the coldest cold class shrink — growth is the
        // SLO-protecting action.
        let mut scale_up: Option<(f64, String)> = None;
        let mut scale_down: Option<(u32, String, u64)> = None;
        for (name, min_replicas, max_replicas) in &class_defs {
            let state = self.classes.entry(name.clone()).or_default();
            if state.cooldown > 0 {
                state.cooldown -= 1;
                continue;
            }
            let members: Vec<_> = replicas
                .iter()
                .filter(|r| r.class() == *name && r.health() == Health::Healthy)
                .collect();
            let gauges: Vec<_> = members.iter().filter_map(|r| r.load()).collect();
            if gauges.is_empty() {
                continue;
            }
            let mean_outstanding =
                gauges.iter().map(|g| g.outstanding()).sum::<u64>() as f64 / gauges.len() as f64;
            let max_recent_p99 = gauges.iter().map(|g| g.recent_p99_us).fold(0.0, f64::max);

            let hot = mean_outstanding > self.config.queue_depth_high
                || max_recent_p99 > self.config.p99_high_us;
            let cold = mean_outstanding < self.config.queue_depth_low
                && max_recent_p99 < self.config.p99_low_us;
            state.hot_ticks = if hot { state.hot_ticks + 1 } else { 0 };
            state.cold_ticks = if cold { state.cold_ticks + 1 } else { 0 };

            if state.hot_ticks >= self.config.scale_up_after && members.len() < *max_replicas {
                // Urgency = queue pressure; the hottest class wins the
                // tick's one action.
                if scale_up.as_ref().is_none_or(|(p, _)| mean_outstanding > *p) {
                    scale_up = Some((mean_outstanding, name.clone()));
                }
            } else if state.cold_ticks >= self.config.scale_down_after
                && members.len() > *min_replicas
                && scale_down.is_none()
            {
                // Drain the least-loaded healthy replica of the class:
                // its queue empties fastest, so the drain completes
                // promptly.
                let victim = members
                    .iter()
                    .min_by_key(|r| r.load().map_or(u64::MAX, |g| g.outstanding()))
                    .map(|r| r.id());
                if let Some(victim) = victim {
                    scale_down = Some((state.cold_ticks, name.clone(), victim));
                }
            }
        }

        if let Some((_, class)) = scale_up {
            return self.scale_up_class(&class);
        }
        if let Some((_, class, victim)) = scale_down {
            self.reset_class(&class);
            return match self.cluster.drain_replica(victim) {
                Ok(_) => ScaleDecision::ScaledDown {
                    class,
                    drained: victim,
                },
                Err(error) => ScaleDecision::Failed { error },
            };
        }
        ScaleDecision::Hold
    }

    fn reset_class(&mut self, class: &str) {
        let state = self.classes.entry(class.to_string()).or_default();
        state.hot_ticks = 0;
        state.cold_ticks = 0;
        state.cooldown = self.config.cooldown_ticks;
    }

    fn scale_up_class(&mut self, class: &str) -> ScaleDecision {
        self.reset_class(class);
        match self.cluster.scale_up_class(class, 1) {
            Ok(ids) => ScaleDecision::ScaledUp {
                class: class.to_string(),
                added: ids[0],
            },
            Err(error) => ScaleDecision::Failed { error },
        }
    }

    /// Runs the scaling loop on a background thread, ticking every
    /// `interval`, until the returned handle is stopped or dropped.
    pub fn spawn(mut self, interval: Duration) -> AutoscalerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            let mut decisions = Vec::new();
            while !stop_flag.load(Ordering::Acquire) {
                let decision = self.tick();
                if decision != ScaleDecision::Hold {
                    decisions.push(decision);
                }
                std::thread::sleep(interval);
            }
            decisions
        });
        AutoscalerHandle {
            stop,
            thread: Some(thread),
        }
    }
}

/// Stops the background autoscaler on [`AutoscalerHandle::stop`] or
/// drop.
pub struct AutoscalerHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<Vec<ScaleDecision>>>,
}

impl AutoscalerHandle {
    /// Stops the loop and returns every non-`Hold` decision it made.
    pub fn stop(mut self) -> Vec<ScaleDecision> {
        self.stop.store(true, Ordering::Release);
        self.thread
            .take()
            .and_then(|t| t.join().ok())
            .unwrap_or_default()
    }
}

impl Drop for AutoscalerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}
