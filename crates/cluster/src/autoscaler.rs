//! The autoscaler: grows and shrinks the replica set from live load
//! signals.
//!
//! Signals per tick, scraped from each healthy replica's cheap
//! [`bolt_serve::LoadGauges`]:
//!
//! - **mean outstanding** — queued + in-flight requests averaged over
//!   replicas (queue-depth pressure), and
//! - **max recent p99** — the worst windowed p99 latency across
//!   replicas (the cumulative p99 cannot move once enough history
//!   accumulates, so the window is what tracks *current* load).
//!
//! Hysteresis: a scale-up needs `scale_up_after` consecutive hot ticks,
//! a scale-down `scale_down_after` consecutive cold ticks, and every
//! action is followed by `cooldown_ticks` of mandatory holding so the
//! signals can re-settle before the next decision. Scale-down uses
//! [`crate::Cluster::drain_replica`] — graceful, so shrinking never
//! drops accepted work.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::cluster::Cluster;
use crate::error::ClusterError;
use crate::replica::Health;

/// Thresholds and pacing for an [`Autoscaler`].
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscalerConfig {
    /// Never drain below this many replicas.
    pub min_replicas: usize,
    /// Never grow above this many replicas.
    pub max_replicas: usize,
    /// Hot when mean outstanding requests per replica exceeds this.
    pub queue_depth_high: f64,
    /// Cold only when mean outstanding falls below this.
    pub queue_depth_low: f64,
    /// Hot when any replica's recent p99 exceeds this (µs).
    pub p99_high_us: f64,
    /// Cold only when every replica's recent p99 is below this (µs).
    pub p99_low_us: f64,
    /// Consecutive hot ticks before adding a replica.
    pub scale_up_after: u32,
    /// Consecutive cold ticks before draining a replica.
    pub scale_down_after: u32,
    /// Ticks to hold after any scaling action.
    pub cooldown_ticks: u32,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        AutoscalerConfig {
            min_replicas: 1,
            max_replicas: 8,
            queue_depth_high: 32.0,
            queue_depth_low: 2.0,
            p99_high_us: 50_000.0,
            p99_low_us: 10_000.0,
            scale_up_after: 2,
            scale_down_after: 4,
            cooldown_ticks: 4,
        }
    }
}

/// What one autoscaler tick decided.
#[derive(Debug, Clone, PartialEq)]
pub enum ScaleDecision {
    /// No change (within thresholds, in hysteresis, or in cooldown).
    Hold,
    /// A replica was added.
    ScaledUp {
        /// The new replica's id.
        added: u64,
    },
    /// A replica was gracefully drained out.
    ScaledDown {
        /// The drained replica's id.
        drained: u64,
    },
    /// A scaling action was attempted and failed (e.g. launch error);
    /// the autoscaler holds and will retry after cooldown.
    Failed {
        /// The error the action hit.
        error: ClusterError,
    },
}

/// Deterministic, manually-tickable scaling loop over a [`Cluster`].
/// Drive it with [`Autoscaler::tick`] (tests, benches), or let
/// [`Autoscaler::spawn`] run it on a wall-clock interval.
pub struct Autoscaler {
    cluster: Arc<Cluster>,
    config: AutoscalerConfig,
    hot_ticks: u32,
    cold_ticks: u32,
    cooldown: u32,
}

impl Autoscaler {
    /// Creates an autoscaler driving `cluster` with `config`.
    pub fn new(cluster: Arc<Cluster>, config: AutoscalerConfig) -> Self {
        Autoscaler {
            cluster,
            config,
            hot_ticks: 0,
            cold_ticks: 0,
            cooldown: 0,
        }
    }

    /// One scaling decision from the current load signals.
    pub fn tick(&mut self) -> ScaleDecision {
        let replicas = self.cluster.replicas();
        let healthy: Vec<_> = replicas
            .iter()
            .filter(|r| r.health() == Health::Healthy)
            .collect();

        // Below the floor (e.g. after chaos kills): restore first,
        // ignoring hysteresis — a cluster below min_replicas is not a
        // tuning question.
        if healthy.len() < self.config.min_replicas {
            return self.scale_up();
        }

        if self.cooldown > 0 {
            self.cooldown -= 1;
            return ScaleDecision::Hold;
        }

        let gauges: Vec<_> = healthy.iter().filter_map(|r| r.load()).collect();
        if gauges.is_empty() {
            return ScaleDecision::Hold;
        }
        let mean_outstanding =
            gauges.iter().map(|g| g.outstanding()).sum::<u64>() as f64 / gauges.len() as f64;
        let max_recent_p99 = gauges.iter().map(|g| g.recent_p99_us).fold(0.0, f64::max);

        let hot = mean_outstanding > self.config.queue_depth_high
            || max_recent_p99 > self.config.p99_high_us;
        let cold = mean_outstanding < self.config.queue_depth_low
            && max_recent_p99 < self.config.p99_low_us;

        self.hot_ticks = if hot { self.hot_ticks + 1 } else { 0 };
        self.cold_ticks = if cold { self.cold_ticks + 1 } else { 0 };

        if self.hot_ticks >= self.config.scale_up_after && healthy.len() < self.config.max_replicas
        {
            return self.scale_up();
        }
        if self.cold_ticks >= self.config.scale_down_after
            && healthy.len() > self.config.min_replicas
        {
            // Drain the least-loaded healthy replica: its queue empties
            // fastest, so the drain completes promptly.
            let victim = healthy
                .iter()
                .min_by_key(|r| r.load().map_or(u64::MAX, |g| g.outstanding()))
                .map(|r| r.id());
            let Some(victim) = victim else {
                return ScaleDecision::Hold;
            };
            self.hot_ticks = 0;
            self.cold_ticks = 0;
            self.cooldown = self.config.cooldown_ticks;
            return match self.cluster.drain_replica(victim) {
                Ok(_) => ScaleDecision::ScaledDown { drained: victim },
                Err(error) => ScaleDecision::Failed { error },
            };
        }
        ScaleDecision::Hold
    }

    fn scale_up(&mut self) -> ScaleDecision {
        self.hot_ticks = 0;
        self.cold_ticks = 0;
        self.cooldown = self.config.cooldown_ticks;
        match self.cluster.scale_up(1) {
            Ok(ids) => ScaleDecision::ScaledUp { added: ids[0] },
            Err(error) => ScaleDecision::Failed { error },
        }
    }

    /// Runs the scaling loop on a background thread, ticking every
    /// `interval`, until the returned handle is stopped or dropped.
    pub fn spawn(mut self, interval: Duration) -> AutoscalerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            let mut decisions = Vec::new();
            while !stop_flag.load(Ordering::Acquire) {
                let decision = self.tick();
                if decision != ScaleDecision::Hold {
                    decisions.push(decision);
                }
                std::thread::sleep(interval);
            }
            decisions
        });
        AutoscalerHandle {
            stop,
            thread: Some(thread),
        }
    }
}

/// Stops the background autoscaler on [`AutoscalerHandle::stop`] or
/// drop.
pub struct AutoscalerHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<Vec<ScaleDecision>>>,
}

impl AutoscalerHandle {
    /// Stops the loop and returns every non-`Hold` decision it made.
    pub fn stop(mut self) -> Vec<ScaleDecision> {
        self.stop.store(true, Ordering::Release);
        self.thread
            .take()
            .and_then(|t| t.join().ok())
            .unwrap_or_default()
    }
}

impl Drop for AutoscalerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}
