//! The cluster front-end: heterogeneous membership grouped into
//! placement classes, routed admission with failover, and replica
//! lifecycle (per-class scale-up, graceful drain, abrupt kill).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bolt_serve::{MetricsSnapshot, RequestHandle, ServeError};
use bolt_tensor::Tensor;
use parking_lot::{Mutex, RwLock};

use crate::error::ClusterError;
use crate::replica::{Health, Replica, ReplicaSpec};
use crate::router::{PlacementPolicy, Router};

/// One homogeneous group inside a (possibly heterogeneous) cluster: a
/// named spec plus its scaling bounds. All replicas of a class share an
/// architecture, models, and serve config; different classes may run
/// different GPUs (the mixed T4 + A100 fleet), and the autoscaler
/// scales each class independently.
#[derive(Debug, Clone)]
pub struct PlacementClass {
    /// Class name, unique within the cluster (e.g. `"t4"`, `"a100"`).
    pub name: String,
    /// The spec every replica of this class launches from.
    pub spec: ReplicaSpec,
    /// Replicas launched by [`Cluster::new`].
    pub initial_replicas: usize,
    /// The autoscaler never drains this class below this many replicas.
    pub min_replicas: usize,
    /// The autoscaler never grows this class above this many replicas.
    pub max_replicas: usize,
}

/// Tunables for a [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// The placement classes. At least one; initial replica counts must
    /// sum to at least 1; class names must be distinct.
    pub classes: Vec<PlacementClass>,
    /// Placement policy for the router.
    pub policy: PlacementPolicy,
}

impl ClusterConfig {
    /// A single-class (homogeneous) cluster — the pre-fleet shape:
    /// `initial_replicas` copies of `spec` in a class named
    /// `"default"`, scaling between 1 and 8 replicas.
    pub fn homogeneous(
        spec: ReplicaSpec,
        initial_replicas: usize,
        policy: PlacementPolicy,
    ) -> Self {
        ClusterConfig {
            classes: vec![PlacementClass {
                name: "default".into(),
                spec,
                initial_replicas,
                min_replicas: 1,
                max_replicas: 8,
            }],
            policy,
        }
    }
}

/// Final metrics of a replica that left the cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct RetiredReplica {
    /// The departed replica's id.
    pub id: u64,
    /// The placement class it belonged to.
    pub class: String,
    /// `true` for a graceful drain, `false` for an abrupt kill.
    pub graceful: bool,
    /// Its final metrics snapshot (all accepted work resolved).
    pub stats: MetricsSnapshot,
}

/// Cluster-wide counter sums across live and retired replicas.
///
/// Note that `submitted` counts per-replica submit *attempts*: a request
/// re-routed after backpressure is submitted on more than one replica,
/// so `submitted` can exceed the number of cluster submissions. The
/// exactly-once invariant is on `accepted` vs [`ClusterTotals::resolved`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterTotals {
    /// Per-replica submit attempts (admission checks), incl. rejected.
    pub submitted: u64,
    /// Requests admitted by some replica — each is guaranteed exactly
    /// one terminal outcome.
    pub accepted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests with any terminal outcome (completed, shed, rejected
    /// post-admission). Equals `accepted` once all replicas drained:
    /// zero silently dropped requests.
    pub resolved: u64,
    /// Requests still queued across live replicas.
    pub queue_depth: u64,
    /// Requests in flight across live replicas.
    pub inflight: u64,
}

impl ClusterTotals {
    /// Accepted requests with no terminal outcome yet. After a full
    /// drain this must be zero — the "no request silently dropped"
    /// invariant the autoscaler and chaos kills are tested against.
    pub fn unresolved(&self) -> u64 {
        self.accepted.saturating_sub(self.resolved)
    }

    fn absorb(&mut self, stats: &MetricsSnapshot) {
        self.submitted += stats.submitted;
        self.accepted += stats.accepted;
        self.completed += stats.completed;
        self.resolved += stats.resolved();
        self.queue_depth += stats.queue_depth;
        self.inflight += stats.inflight;
    }
}

/// A point-in-time view of every replica plus the cluster sums.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSnapshot {
    /// `(replica id, snapshot)` for every live replica.
    pub live: Vec<(u64, MetricsSnapshot)>,
    /// Replicas that left the cluster, with their final metrics.
    pub retired: Vec<RetiredReplica>,
    /// Sums over `live` + `retired`.
    pub totals: ClusterTotals,
}

/// A sharded serving cluster: [`Replica`]s grouped into
/// [`PlacementClass`]es (possibly of different architectures), fronted
/// by a router with failover and replica-aware admission.
///
/// Admission semantics: the router orders the healthy replicas for each
/// request; backpressure (queue full) or a dying replica moves the
/// request to the next candidate — under [`PlacementPolicy::CostSlo`]
/// that means degrading to the next-cheapest *class* — and only when
/// **every** candidate refuses does the cluster fail fast with
/// [`ClusterError::AllBackpressured`]. Non-recoverable rejections
/// (unknown model, invalid input) fail immediately — every class serves
/// the same models, so re-routing cannot change the answer.
pub struct Cluster {
    config: ClusterConfig,
    members: RwLock<Vec<Arc<Replica>>>,
    retired: Mutex<Vec<RetiredReplica>>,
    router: Router,
    /// Bumped on every membership change; the router's ring cache keys
    /// off it.
    epoch: AtomicU64,
    next_id: AtomicU64,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("replicas", &self.members.read().len())
            .field("policy", &self.router.policy())
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Cluster {
    /// Launches every class's initial replicas and starts routing.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Lifecycle`] when the config has no classes,
    /// duplicate class names, or zero total initial replicas;
    /// [`ClusterError::Launch`] / [`ClusterError::Bundle`] when a
    /// replica fails to come up.
    pub fn new(config: ClusterConfig) -> Result<Arc<Cluster>, ClusterError> {
        if config.classes.is_empty() {
            return Err(ClusterError::Lifecycle {
                reason: "cluster needs at least one placement class".into(),
            });
        }
        for (i, class) in config.classes.iter().enumerate() {
            if config.classes[..i].iter().any(|c| c.name == class.name) {
                return Err(ClusterError::Lifecycle {
                    reason: format!("duplicate placement class {:?}", class.name),
                });
            }
        }
        if config
            .classes
            .iter()
            .map(|c| c.initial_replicas)
            .sum::<usize>()
            == 0
        {
            return Err(ClusterError::Lifecycle {
                reason: "initial replicas must total at least 1".into(),
            });
        }
        let cluster = Arc::new(Cluster {
            router: Router::new(config.policy),
            members: RwLock::new(Vec::new()),
            retired: Mutex::new(Vec::new()),
            epoch: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            config,
        });
        for class in &cluster.config.classes {
            cluster.scale_up_class(&class.name, class.initial_replicas)?;
        }
        Ok(cluster)
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Live replicas, in membership order.
    pub fn replicas(&self) -> Vec<Arc<Replica>> {
        self.members.read().clone()
    }

    /// Number of live (non-retired) replicas.
    pub fn replica_count(&self) -> usize {
        self.members.read().len()
    }

    /// Number of live replicas in placement class `class`.
    pub fn class_count(&self, class: &str) -> usize {
        self.members
            .read()
            .iter()
            .filter(|r| r.class() == class)
            .count()
    }

    /// The current membership epoch (bumped on every change).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Routes one single-sample request to a replica, failing over past
    /// backpressured or dying replicas.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoReplicas`] with no healthy replica,
    /// [`ClusterError::AllBackpressured`] when every candidate refused
    /// with backpressure, [`ClusterError::Replica`] for a
    /// non-recoverable rejection.
    pub fn submit(
        &self,
        model: &str,
        inputs: Vec<Tensor>,
        deadline: Option<Duration>,
    ) -> Result<RequestHandle, ClusterError> {
        let mut candidates =
            self.router
                .candidates(model, &self.members.read(), self.epoch(), deadline);

        // Chaos: a seeded replica kill scheduled at this submission
        // index abruptly kills the primary placement, then re-plans —
        // the router must notice the death and route elsewhere. (No-op
        // without the `chaos` feature.)
        if bolt::faults::fail(bolt::faults::FaultSite::ReplicaKill).is_some() {
            if let Some(primary) = candidates.first() {
                let _ = self.kill_replica(primary.id());
                candidates =
                    self.router
                        .candidates(model, &self.members.read(), self.epoch(), deadline);
            }
        }

        if candidates.is_empty() {
            return Err(ClusterError::NoReplicas);
        }
        let attempted = candidates.len();
        let mut inputs = inputs;
        for replica in candidates {
            match replica.submit_recoverable(model, inputs, deadline) {
                Ok(handle) => return Ok(handle),
                Err((error, returned)) => {
                    inputs = returned;
                    match error {
                        // Recoverable on another replica: backpressure,
                        // or this replica began dying under us.
                        ServeError::QueueFull { .. } | ServeError::ShuttingDown => continue,
                        other => return Err(ClusterError::Replica(other)),
                    }
                }
            }
        }
        Err(ClusterError::AllBackpressured { attempted })
    }

    /// Blocking convenience: submit and wait for the terminal outcome.
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::submit`].
    pub fn infer(
        &self,
        model: &str,
        inputs: Vec<Tensor>,
    ) -> Result<bolt_serve::Outcome, ClusterError> {
        Ok(self.submit(model, inputs, None)?.wait())
    }

    /// Launches `n` additional replicas of the **first** placement
    /// class — the whole cluster, when it is homogeneous. Heterogeneous
    /// callers (the autoscaler) use [`Cluster::scale_up_class`].
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::scale_up_class`].
    pub fn scale_up(&self, n: usize) -> Result<Vec<u64>, ClusterError> {
        let class = self.config.classes[0].name.clone();
        self.scale_up_class(&class, n)
    }

    /// Launches `n` additional replicas of placement class `class` and
    /// adds them to the routing set. With a shared
    /// [`bolt::BoltConfig::cache_path`] or a packed
    /// [`bolt::BoltConfig::bundle_path`] the new replicas compile warm
    /// (zero tuning seconds — the configs are already on disk).
    ///
    /// # Errors
    ///
    /// [`ClusterError::Lifecycle`] for an unknown class name;
    /// [`ClusterError::Launch`] / [`ClusterError::Bundle`] when a
    /// replica fails to come up; replicas launched before the failure
    /// stay in the cluster.
    pub fn scale_up_class(&self, class: &str, n: usize) -> Result<Vec<u64>, ClusterError> {
        let spec = self
            .config
            .classes
            .iter()
            .find(|c| c.name == class)
            .map(|c| c.spec.clone())
            .ok_or_else(|| ClusterError::Lifecycle {
                reason: format!("unknown placement class {class:?}"),
            })?;
        let mut added = Vec::with_capacity(n);
        for _ in 0..n {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            let replica = Replica::launch(id, class, &spec)?;
            self.members.write().push(replica);
            self.epoch.fetch_add(1, Ordering::AcqRel);
            added.push(id);
        }
        Ok(added)
    }

    /// Gracefully drains replica `id` out of the cluster: it leaves the
    /// routing set immediately, queued work runs to completion, and its
    /// final metrics are archived. Refuses to drain the last replica.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownReplica`] for an unknown id,
    /// [`ClusterError::Lifecycle`] when `id` is the last live replica.
    pub fn drain_replica(&self, id: u64) -> Result<MetricsSnapshot, ClusterError> {
        let replica = {
            let mut members = self.members.write();
            if members.len() <= 1 {
                return Err(ClusterError::Lifecycle {
                    reason: "cannot drain the last replica".into(),
                });
            }
            let index = members
                .iter()
                .position(|r| r.id() == id)
                .ok_or(ClusterError::UnknownReplica { id })?;
            let replica = members.remove(index);
            replica.set_health(Health::Draining);
            replica
        };
        self.epoch.fetch_add(1, Ordering::AcqRel);
        let stats = replica
            .retire(true)
            .expect("replica was a live member, so its server exists");
        self.retired.lock().push(RetiredReplica {
            id,
            class: replica.class().to_string(),
            graceful: true,
            stats: stats.clone(),
        });
        Ok(stats)
    }

    /// Abruptly kills replica `id` (a simulated crash): it leaves the
    /// routing set, queued requests resolve `Rejected`, in-flight
    /// batches finish. Unlike [`Cluster::drain_replica`] the last
    /// replica *can* be killed — crashes do not ask permission.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownReplica`] for an unknown id.
    pub fn kill_replica(&self, id: u64) -> Result<MetricsSnapshot, ClusterError> {
        let replica = {
            let mut members = self.members.write();
            let index = members
                .iter()
                .position(|r| r.id() == id)
                .ok_or(ClusterError::UnknownReplica { id })?;
            let replica = members.remove(index);
            replica.set_health(Health::Dead);
            replica
        };
        self.epoch.fetch_add(1, Ordering::AcqRel);
        let stats = replica
            .retire(false)
            .expect("replica was a live member, so its server exists");
        self.retired.lock().push(RetiredReplica {
            id,
            class: replica.class().to_string(),
            graceful: false,
            stats: stats.clone(),
        });
        Ok(stats)
    }

    /// A point-in-time view of every live replica plus the archived
    /// retired ones, with cluster-wide sums.
    pub fn snapshot(&self) -> ClusterSnapshot {
        let live: Vec<(u64, MetricsSnapshot)> = self
            .members
            .read()
            .iter()
            .filter_map(|r| r.metrics().map(|m| (r.id(), m)))
            .collect();
        let retired = self.retired.lock().clone();
        let mut totals = ClusterTotals::default();
        for (_, stats) in &live {
            totals.absorb(stats);
        }
        for r in &retired {
            totals.absorb(&r.stats);
        }
        ClusterSnapshot {
            live,
            retired,
            totals,
        }
    }

    /// Gracefully drains every replica and returns the final snapshot.
    /// After shutdown [`ClusterTotals::unresolved`] is zero: every
    /// accepted request resolved exactly once.
    pub fn shutdown(&self) -> ClusterSnapshot {
        let members: Vec<Arc<Replica>> = {
            let mut guard = self.members.write();
            for replica in guard.iter() {
                replica.set_health(Health::Draining);
            }
            std::mem::take(&mut *guard)
        };
        self.epoch.fetch_add(1, Ordering::AcqRel);
        for replica in members {
            if let Some(stats) = replica.retire(true) {
                self.retired.lock().push(RetiredReplica {
                    id: replica.id(),
                    class: replica.class().to_string(),
                    graceful: true,
                    stats,
                });
            }
        }
        self.snapshot()
    }
}
