//! Request placement: which replica serves a request, and in what
//! failover order the alternatives are tried.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::replica::{Health, Replica};

/// How the router picks a replica for a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Consistent hashing of the model name onto a ring of virtual
    /// nodes: a model's requests land on the same replica as long as it
    /// lives (cache affinity — its engines, price cache, and batch
    /// queues stay hot), and membership changes only move the models
    /// that hashed onto the departed replica. Failover order is the ring
    /// walk, which is also stable per model. **Arch-blind**: on a mixed
    /// fleet a latency-critical request can hash onto the slowest class.
    ConsistentHash {
        /// Ring points per replica; more points smooth the load split
        /// across models (128 is a good default).
        virtual_nodes: usize,
    },
    /// Route each request to the replica with the fewest outstanding
    /// (queued + in-flight) requests; ties rotate. Ignores affinity but
    /// tracks instantaneous load, which is the right trade for a
    /// single-model homogeneous fleet where affinity buys nothing. Also
    /// arch-blind: an idle slow replica beats a lightly-loaded fast one.
    LeastLoaded,
    /// Cost/SLO-aware placement for heterogeneous fleets: replicas are
    /// scored by their **simulated kernel cost** for the request's model
    /// ([`Replica::kernel_cost`], priced from each arch's compiled
    /// engines) combined with instantaneous load.
    ///
    /// A request with a deadline at or under `tight_deadline_us` is
    /// latency-critical: it is scored by expected single-sample latency
    /// — `batch1_us + outstanding × per_sample_us` — which sends it to
    /// the nearest *warm, fast* engine. Everything else is throughput
    /// traffic, scored by per-sample cost inflated by relative queue
    /// pressure — `per_sample_us × (1 + outstanding / max_batch)` —
    /// which steers bulk load toward the class that amortizes big
    /// batches best (A100-class) while still spilling onto smaller
    /// arches when the big class saturates. The score order doubles as
    /// the failover order, so backpressure degrades to the
    /// next-cheapest class instead of failing.
    CostSlo {
        /// Deadlines at or under this many µs are latency-critical.
        tight_deadline_us: u64,
    },
}

impl PlacementPolicy {
    /// The paper-benchmark default for mixed fleets: deadlines of 25 ms
    /// or less route latency-critically.
    pub fn cost_slo() -> Self {
        PlacementPolicy::CostSlo {
            tight_deadline_us: 25_000,
        }
    }
}

impl Default for PlacementPolicy {
    fn default() -> Self {
        PlacementPolicy::ConsistentHash { virtual_nodes: 128 }
    }
}

/// The hash ring for one membership epoch: sorted `(point, replica_id)`.
struct RingCache {
    epoch: u64,
    points: Vec<(u64, u64)>,
}

/// Orders healthy replicas for each request under the configured policy.
pub(crate) struct Router {
    policy: PlacementPolicy,
    ring: Mutex<RingCache>,
    /// Tie-break rotation for [`PlacementPolicy::LeastLoaded`].
    rotation: AtomicU64,
}

impl Router {
    pub(crate) fn new(policy: PlacementPolicy) -> Self {
        Router {
            policy,
            ring: Mutex::new(RingCache {
                epoch: u64::MAX,
                points: Vec::new(),
            }),
            rotation: AtomicU64::new(0),
        }
    }

    pub(crate) fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// The ordered candidate list for `model` over the current members:
    /// first entry is the primary placement, the rest are the failover
    /// order when it is backpressured or dead. Only healthy replicas are
    /// returned. `deadline` feeds the [`PlacementPolicy::CostSlo`]
    /// latency-critical classification; the other policies ignore it.
    pub(crate) fn candidates(
        &self,
        model: &str,
        members: &[Arc<Replica>],
        epoch: u64,
        deadline: Option<Duration>,
    ) -> Vec<Arc<Replica>> {
        let healthy: Vec<Arc<Replica>> = members
            .iter()
            .filter(|r| r.health() == Health::Healthy)
            .map(Arc::clone)
            .collect();
        if healthy.len() <= 1 {
            return healthy;
        }
        match self.policy {
            PlacementPolicy::ConsistentHash { virtual_nodes } => {
                self.ring_order(model, &healthy, virtual_nodes, epoch)
            }
            PlacementPolicy::LeastLoaded => self.load_order(healthy),
            PlacementPolicy::CostSlo { tight_deadline_us } => {
                let tight =
                    deadline.is_some_and(|d| d.as_micros() <= u128::from(tight_deadline_us));
                self.cost_order(model, healthy, tight)
            }
        }
    }

    /// Consistent-hash order: walk the ring clockwise from the model's
    /// point, collecting distinct replicas. The ring is rebuilt only
    /// when the membership epoch changes.
    fn ring_order(
        &self,
        model: &str,
        healthy: &[Arc<Replica>],
        virtual_nodes: usize,
        epoch: u64,
    ) -> Vec<Arc<Replica>> {
        let mut ring = self.ring.lock();
        if ring.epoch != epoch {
            let mut points = Vec::with_capacity(healthy.len() * virtual_nodes.max(1));
            for replica in healthy {
                for vnode in 0..virtual_nodes.max(1) as u64 {
                    let mut bytes = [0u8; 16];
                    bytes[..8].copy_from_slice(&replica.id().to_le_bytes());
                    bytes[8..].copy_from_slice(&vnode.to_le_bytes());
                    points.push((fnv1a(&bytes), replica.id()));
                }
            }
            points.sort_unstable();
            *ring = RingCache { epoch, points };
        }
        let key = fnv1a(model.as_bytes());
        let start = ring.points.partition_point(|&(point, _)| point < key);
        let mut order: Vec<u64> = Vec::with_capacity(healthy.len());
        for i in 0..ring.points.len() {
            let (_, id) = ring.points[(start + i) % ring.points.len()];
            if !order.contains(&id) {
                order.push(id);
                if order.len() == healthy.len() {
                    break;
                }
            }
        }
        drop(ring);
        order
            .iter()
            .filter_map(|id| healthy.iter().find(|r| r.id() == *id).map(Arc::clone))
            .collect()
    }

    /// Least-loaded order: ascending by outstanding requests, with a
    /// rotating pre-sort so equally idle replicas share placements
    /// instead of all requests piling onto index 0.
    fn load_order(&self, mut healthy: Vec<Arc<Replica>>) -> Vec<Arc<Replica>> {
        let offset = self.rotation.fetch_add(1, Ordering::Relaxed) as usize % healthy.len();
        healthy.rotate_left(offset);
        healthy.sort_by_key(|r| r.load().map_or(u64::MAX, |g| g.outstanding()));
        healthy
    }

    /// Cost/SLO order: ascending by the per-replica score described on
    /// [`PlacementPolicy::CostSlo`]. A replica that cannot price the
    /// model (unknown, or no compiled bucket yet) scores last but stays
    /// a failover candidate. The rotating pre-sort keeps equally-scored
    /// replicas sharing placements.
    fn cost_order(
        &self,
        model: &str,
        mut healthy: Vec<Arc<Replica>>,
        tight: bool,
    ) -> Vec<Arc<Replica>> {
        let offset = self.rotation.fetch_add(1, Ordering::Relaxed) as usize % healthy.len();
        healthy.rotate_left(offset);
        let mut scored: Vec<(f64, Arc<Replica>)> = healthy
            .into_iter()
            .map(|r| {
                let outstanding = r.load().map_or(u64::MAX, |g| g.outstanding());
                let score = match (r.kernel_cost(model), outstanding) {
                    (_, u64::MAX) | (None, _) => f64::INFINITY,
                    (Some(cost), outstanding) => {
                        if tight {
                            cost.batch1_us + outstanding as f64 * cost.per_sample_us
                        } else {
                            cost.per_sample_us
                                * (1.0 + outstanding as f64 / cost.max_batch.max(1) as f64)
                        }
                    }
                };
                (score, r)
            })
            .collect();
        scored.sort_by(|(a, _), (b, _)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        scored.into_iter().map(|(_, r)| r).collect()
    }
}

/// FNV-1a 64-bit: tiny, dependency-free, and well-distributed enough
/// for ring points.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_distributes_distinct_keys() {
        let a = fnv1a(b"mlp-small");
        let b = fnv1a(b"mlp-large");
        let c = fnv1a(b"cnn-small");
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }
}
