//! Error type for the cluster layer.

use std::fmt;

use bolt_serve::ServeError;

/// Errors surfaced by cluster routing and lifecycle operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// The cluster has no healthy replica to route to (all drained,
    /// killed, or never launched).
    NoReplicas,
    /// Every healthy candidate replica refused the request with
    /// backpressure (queue full or mid-drain). This is the cluster-wide
    /// fail-fast: a single backpressured replica re-routes instead.
    AllBackpressured {
        /// How many replicas were attempted before giving up.
        attempted: usize,
    },
    /// A replica rejected the request for a non-recoverable reason
    /// (unknown model, invalid input, no engine): every other replica
    /// runs the same spec, so re-routing cannot help.
    Replica(ServeError),
    /// The named replica id does not exist (or is already retired).
    UnknownReplica {
        /// The requested replica id.
        id: u64,
    },
    /// A replica failed to launch (engine compilation or configuration).
    Launch(ServeError),
    /// The packed tune bundle a replica was asked to boot from is
    /// unusable: unreadable, corrupt, or holding no shard for the
    /// replica's architecture. Launch refuses rather than silently
    /// re-tuning — a fleet misconfiguration must be loud.
    Bundle {
        /// The bundle path.
        path: String,
        /// The underlying cache error (arch mismatch, corruption, IO).
        reason: String,
    },
    /// A lifecycle operation would violate a cluster bound (e.g.
    /// draining the last healthy replica).
    Lifecycle {
        /// Why the operation was refused.
        reason: String,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NoReplicas => write!(f, "cluster has no healthy replicas"),
            ClusterError::AllBackpressured { attempted } => {
                write!(f, "all {attempted} candidate replicas are backpressured")
            }
            ClusterError::Replica(e) => write!(f, "replica rejected request: {e}"),
            ClusterError::UnknownReplica { id } => write!(f, "no replica with id {id}"),
            ClusterError::Launch(e) => write!(f, "replica launch failed: {e}"),
            ClusterError::Bundle { path, reason } => {
                write!(f, "tune bundle {path} rejected: {reason}")
            }
            ClusterError::Lifecycle { reason } => {
                write!(f, "lifecycle operation refused: {reason}")
            }
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Replica(e) | ClusterError::Launch(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        assert!(ClusterError::NoReplicas.to_string().contains("no healthy"));
        assert!(ClusterError::AllBackpressured { attempted: 3 }
            .to_string()
            .contains('3'));
        let e = ClusterError::Replica(ServeError::ShuttingDown);
        assert!(e.to_string().contains("shutting down"));
    }
}
