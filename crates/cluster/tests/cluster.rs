//! Cluster acceptance tests: placement affinity, failover past
//! backpressure and dead replicas, autoscaler decisions, and the
//! exactly-once invariant under membership churn.
//!
//! Replicas boot on heuristic (unprofiled) engines so each test pays
//! compile seconds, not tuning minutes — routing and lifecycle are
//! what's under test, not kernel quality.

use std::sync::Arc;
use std::time::Duration;

use bolt::BoltConfig;
use bolt_cluster::{
    Autoscaler, AutoscalerConfig, Cluster, ClusterConfig, ClusterError, ModelSpec, PlacementPolicy,
    ReplicaSpec, ScaleDecision,
};
use bolt_serve::testing::test_arch;
use bolt_serve::{Outcome, ServeConfig, ServeError};
use bolt_tensor::{DType, Tensor};

fn sample(seed: u64) -> Vec<Tensor> {
    vec![Tensor::randn(&[1, 128], DType::F16, seed)]
}

fn spec(serve: ServeConfig) -> ReplicaSpec {
    ReplicaSpec {
        arch: test_arch(),
        bolt: BoltConfig::default(),
        serve,
        models: vec![ModelSpec::Zoo {
            name: "mlp-small".into(),
            tuned: false,
        }],
    }
}

fn cluster(replicas: usize, policy: PlacementPolicy, serve: ServeConfig) -> Arc<Cluster> {
    Cluster::new(ClusterConfig::homogeneous(spec(serve), replicas, policy))
        .expect("cluster comes up")
}

/// Like `cluster`, with explicit scaling bounds on the single class.
fn bounded_cluster(
    replicas: usize,
    min: usize,
    max: usize,
    policy: PlacementPolicy,
    serve: ServeConfig,
) -> Arc<Cluster> {
    let mut config = ClusterConfig::homogeneous(spec(serve), replicas, policy);
    config.classes[0].min_replicas = min;
    config.classes[0].max_replicas = max;
    Cluster::new(config).expect("cluster comes up")
}

/// A serve config whose queues hold work: batches form only at
/// `max_batch` and the timeout is far away, so queued requests stay
/// visible to gauges and admission control.
fn holding_config(queue_capacity: usize) -> ServeConfig {
    ServeConfig {
        workers: 1,
        batch_timeout: Duration::from_secs(10),
        queue_capacity,
        ..ServeConfig::default()
    }
}

#[test]
fn consistent_hash_pins_a_model_to_one_replica() {
    let cluster = cluster(
        3,
        PlacementPolicy::ConsistentHash { virtual_nodes: 64 },
        ServeConfig::default(),
    );
    for i in 0..12 {
        let outcome = cluster.infer("mlp-small", sample(i)).expect("routed");
        assert!(matches!(outcome, Outcome::Completed(_)));
    }
    let end = cluster.shutdown();
    let serving: Vec<_> = end
        .retired
        .iter()
        .filter(|r| r.stats.accepted > 0)
        .collect();
    assert_eq!(
        serving.len(),
        1,
        "cache affinity: every request for one model lands on the ring owner"
    );
    assert_eq!(end.totals.completed, 12);
    assert_eq!(end.totals.unresolved(), 0);
}

#[test]
fn router_reroutes_after_replica_death() {
    let cluster = cluster(
        2,
        PlacementPolicy::ConsistentHash { virtual_nodes: 64 },
        ServeConfig::default(),
    );
    // Discover the ring owner for this model.
    cluster.infer("mlp-small", sample(0)).expect("routed");
    let primary = cluster
        .snapshot()
        .live
        .iter()
        .find(|(_, stats)| stats.accepted > 0)
        .map(|(id, _)| *id)
        .expect("someone served it");

    cluster.kill_replica(primary).expect("kill the owner");

    // The router detects the death and re-routes to the survivor.
    for i in 1..5 {
        let outcome = cluster.infer("mlp-small", sample(i)).expect("rerouted");
        assert!(matches!(outcome, Outcome::Completed(_)));
    }
    let end = cluster.shutdown();
    assert_eq!(end.totals.completed, 5);
    assert_eq!(end.totals.unresolved(), 0, "no request silently dropped");
    assert!(end.retired.iter().any(|r| !r.graceful && r.id == primary));
}

#[test]
fn backpressure_fails_over_then_fails_fast_cluster_wide() {
    // Capacity 2 per replica, batches held: 2 replicas admit exactly 4.
    let cluster = cluster(
        2,
        PlacementPolicy::ConsistentHash { virtual_nodes: 64 },
        holding_config(2),
    );
    let mut handles = Vec::new();
    for i in 0..4 {
        handles.push(
            cluster
                .submit("mlp-small", sample(i), None)
                .expect("admitted, overflowing onto the second replica"),
        );
    }
    // Both replicas hold queued work now.
    let loads: Vec<u64> = cluster
        .replicas()
        .iter()
        .map(|r| r.load().expect("live").outstanding())
        .collect();
    assert_eq!(loads.iter().sum::<u64>(), 4);
    assert!(
        loads.iter().all(|&l| l == 2),
        "failover spread admissions across both replicas: {loads:?}"
    );

    // The fifth submit finds every candidate backpressured.
    match cluster.submit("mlp-small", sample(99), None) {
        Err(ClusterError::AllBackpressured { attempted }) => assert_eq!(attempted, 2),
        other => panic!("expected AllBackpressured, got {other:?}"),
    }

    // Drain flushes the held batches; everything admitted completes.
    let end = cluster.shutdown();
    for handle in handles {
        assert!(matches!(handle.wait(), Outcome::Completed(_)));
    }
    assert_eq!(end.totals.completed, 4);
    assert_eq!(end.totals.unresolved(), 0);
}

#[test]
fn non_recoverable_rejections_fail_fast() {
    let cluster = cluster(2, PlacementPolicy::LeastLoaded, ServeConfig::default());
    match cluster.submit("no-such-model", sample(0), None) {
        Err(ClusterError::Replica(ServeError::UnknownModel { name })) => {
            assert_eq!(name, "no-such-model");
        }
        other => panic!("expected fail-fast UnknownModel, got {other:?}"),
    }
    cluster.shutdown();
}

#[test]
fn abrupt_kill_rejects_queued_work_exactly_once() {
    let cluster = cluster(1, PlacementPolicy::LeastLoaded, holding_config(64));
    let id = cluster.replicas()[0].id();
    let handles: Vec<_> = (0..5)
        .map(|i| {
            cluster
                .submit("mlp-small", sample(i), None)
                .expect("queued")
        })
        .collect();
    let stats = cluster.kill_replica(id).expect("killed");
    assert_eq!(stats.accepted, 5);
    assert_eq!(
        stats.resolved(),
        5,
        "abort resolves everything queued, as rejections"
    );
    for handle in handles {
        assert!(
            matches!(handle.wait(), Outcome::Rejected { .. }),
            "queued work on a killed replica terminates as Rejected"
        );
    }
    let end = cluster.shutdown();
    assert_eq!(end.totals.unresolved(), 0);
}

#[test]
fn autoscaler_scales_up_on_queue_pressure() {
    let cluster = bounded_cluster(1, 1, 2, PlacementPolicy::LeastLoaded, holding_config(64));
    let mut scaler = Autoscaler::new(
        Arc::clone(&cluster),
        AutoscalerConfig {
            queue_depth_high: 4.0,
            scale_up_after: 2,
            cooldown_ticks: 0,
            ..AutoscalerConfig::default()
        },
    );
    // Six requests sit queued (batches need 8 to form, timeout is far).
    let handles: Vec<_> = (0..6)
        .map(|i| {
            cluster
                .submit("mlp-small", sample(i), None)
                .expect("queued")
        })
        .collect();
    assert_eq!(
        scaler.tick(),
        ScaleDecision::Hold,
        "first hot tick: hysteresis"
    );
    match scaler.tick() {
        ScaleDecision::ScaledUp { .. } => {}
        other => panic!("expected scale-up on second hot tick, got {other:?}"),
    }
    assert_eq!(cluster.replica_count(), 2);
    // At the max: further hot ticks hold.
    assert_eq!(scaler.tick(), ScaleDecision::Hold);
    assert_eq!(scaler.tick(), ScaleDecision::Hold);

    let end = cluster.shutdown();
    for handle in handles {
        assert!(matches!(handle.wait(), Outcome::Completed(_)));
    }
    assert_eq!(end.totals.unresolved(), 0);
}

#[test]
fn autoscaler_drains_idle_replicas_down_to_min() {
    let cluster = bounded_cluster(
        2,
        1,
        4,
        PlacementPolicy::LeastLoaded,
        ServeConfig::default(),
    );
    let mut scaler = Autoscaler::new(
        Arc::clone(&cluster),
        AutoscalerConfig {
            scale_down_after: 2,
            cooldown_ticks: 0,
            ..AutoscalerConfig::default()
        },
    );
    assert_eq!(
        scaler.tick(),
        ScaleDecision::Hold,
        "first cold tick: hysteresis"
    );
    match scaler.tick() {
        ScaleDecision::ScaledDown { .. } => {}
        other => panic!("expected scale-down on second cold tick, got {other:?}"),
    }
    assert_eq!(cluster.replica_count(), 1);
    // At the floor: stays there no matter how idle.
    assert_eq!(scaler.tick(), ScaleDecision::Hold);
    assert_eq!(scaler.tick(), ScaleDecision::Hold);
    assert_eq!(cluster.replica_count(), 1);

    let end = cluster.shutdown();
    assert!(
        end.retired.iter().any(|r| r.graceful),
        "scale-down drained gracefully"
    );
    assert_eq!(end.totals.unresolved(), 0);
}

#[test]
fn autoscaler_restores_the_floor_after_a_crash() {
    let cluster = cluster(1, PlacementPolicy::LeastLoaded, ServeConfig::default());
    let id = cluster.replicas()[0].id();
    cluster.kill_replica(id).expect("crash");
    assert!(matches!(
        cluster.submit("mlp-small", sample(0), None),
        Err(ClusterError::NoReplicas)
    ));

    let mut scaler = Autoscaler::new(Arc::clone(&cluster), AutoscalerConfig::default());
    match scaler.tick() {
        ScaleDecision::ScaledUp { .. } => {}
        other => panic!("below the floor must restore immediately, got {other:?}"),
    }
    assert_eq!(cluster.replica_count(), 1);
    let outcome = cluster
        .infer("mlp-small", sample(1))
        .expect("serving again");
    assert!(matches!(outcome, Outcome::Completed(_)));
    cluster.shutdown();
}

#[test]
fn storm_with_membership_churn_loses_nothing() {
    let cluster = cluster(2, PlacementPolicy::LeastLoaded, ServeConfig::default());
    let threads = 4;
    let per_thread = 40;
    let mut joins = Vec::new();
    for t in 0..threads {
        let cluster = Arc::clone(&cluster);
        joins.push(std::thread::spawn(move || {
            let mut completed = 0u64;
            let mut terminal = 0u64;
            for i in 0..per_thread {
                match cluster.submit("mlp-small", sample((t * per_thread + i) as u64), None) {
                    Ok(handle) => {
                        terminal += 1;
                        if matches!(handle.wait(), Outcome::Completed(_)) {
                            completed += 1;
                        }
                    }
                    Err(ClusterError::AllBackpressured { .. } | ClusterError::NoReplicas) => {}
                    Err(other) => panic!("unexpected cluster error: {other}"),
                }
            }
            (terminal, completed)
        }));
    }
    // Mid-storm churn: crash one replica, then scale back up.
    std::thread::sleep(Duration::from_millis(30));
    let victim = cluster.replicas()[0].id();
    cluster.kill_replica(victim).expect("mid-storm crash");
    cluster.scale_up(1).expect("mid-storm scale-up");

    let mut accepted_waited = 0u64;
    for join in joins {
        let (terminal, _) = join.join().expect("storm thread");
        accepted_waited += terminal;
    }
    let end = cluster.shutdown();
    assert_eq!(
        end.totals.accepted, accepted_waited,
        "every Ok(handle) the callers hold is an accepted request"
    );
    assert_eq!(
        end.totals.unresolved(),
        0,
        "churn dropped requests: accepted {} resolved {}",
        end.totals.accepted,
        end.totals.resolved
    );
}
