//! Heterogeneous-fleet acceptance: a mixed T4 + A100 cluster where
//! every replica — of either architecture — boots from **one** packed
//! tune bundle with zero tuning seconds, the cost/SLO router places by
//! per-arch simulated kernel cost, and the autoscaler scales the hot
//! class instead of the fleet uniformly.

use std::sync::Arc;
use std::time::Duration;

use bolt::{BoltConfig, TuneBundle};
use bolt_cluster::{
    Autoscaler, AutoscalerConfig, Cluster, ClusterConfig, ClusterError, ModelSpec, PlacementClass,
    PlacementPolicy, ReplicaSpec, ScaleDecision,
};
use bolt_gpu_sim::GpuArch;
use bolt_serve::{EngineRegistry, Outcome, ServeConfig};
use bolt_tensor::{DType, Tensor};

const MODEL: &str = "mlp-small";

fn sample(seed: u64) -> Vec<Tensor> {
    vec![Tensor::randn(&[1, 128], DType::F16, seed)]
}

fn fast_tuning() -> BoltConfig {
    BoltConfig {
        profiler_candidates: 4,
        ..BoltConfig::default()
    }
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("bolt_fleet_test");
    let _ = std::fs::create_dir_all(&dir);
    dir.join(format!("{}_{name}", std::process::id()))
}

/// Tunes `MODEL`'s serving buckets once per arch and packs the shards
/// into one bundle at `path` — the `bolt-tune pack` flow via the
/// library API.
fn pack_bundle(path: &std::path::Path, arches: &[GpuArch], serve: &ServeConfig) {
    let mut bundle = TuneBundle::new();
    for arch in arches {
        let registry = EngineRegistry::new(arch.clone(), fast_tuning());
        registry
            .register_zoo(MODEL, &serve.buckets())
            .expect("tuning registry compiles");
        bundle.absorb(registry.compiler().profiler().export_shard());
    }
    bundle.write(path).expect("bundle writes");
}

fn class(
    name: &str,
    arch: GpuArch,
    replicas: usize,
    bolt: BoltConfig,
    serve: &ServeConfig,
) -> PlacementClass {
    PlacementClass {
        name: name.into(),
        spec: ReplicaSpec {
            arch,
            bolt,
            serve: serve.clone(),
            models: vec![ModelSpec::Zoo {
                name: MODEL.into(),
                tuned: true,
            }],
        },
        initial_replicas: replicas,
        min_replicas: 1,
        max_replicas: 4,
    }
}

#[test]
fn mixed_fleet_boots_every_arch_from_one_bundle_with_zero_tuning() {
    let bundle_path = tmp("mixed.bundle");
    let serve = ServeConfig::default();
    pack_bundle(
        &bundle_path,
        &[GpuArch::tesla_t4(), GpuArch::a100()],
        &serve,
    );

    let bolt = BoltConfig {
        bundle_path: Some(bundle_path.clone()),
        ..fast_tuning()
    };
    let cluster = Cluster::new(ClusterConfig {
        classes: vec![
            class("t4", GpuArch::tesla_t4(), 2, bolt.clone(), &serve),
            class("a100", GpuArch::a100(), 1, bolt, &serve),
        ],
        policy: PlacementPolicy::cost_slo(),
    })
    .expect("mixed fleet comes up");

    assert_eq!(cluster.replica_count(), 3);
    assert_eq!(cluster.class_count("t4"), 2);
    assert_eq!(cluster.class_count("a100"), 1);
    for replica in cluster.replicas() {
        assert_eq!(
            replica.tuning_seconds(),
            0.0,
            "replica {} ({}, class {}) must boot fully warm from the bundle",
            replica.id(),
            replica.arch().name,
            replica.class()
        );
    }

    // The per-arch kernel-cost signal exists on both classes and says
    // the A100 is faster — the information CostSlo routes on.
    let replicas = cluster.replicas();
    let t4_cost = replicas
        .iter()
        .find(|r| r.class() == "t4")
        .and_then(|r| r.kernel_cost(MODEL))
        .expect("t4 cost priced");
    let a100_cost = replicas
        .iter()
        .find(|r| r.class() == "a100")
        .and_then(|r| r.kernel_cost(MODEL))
        .expect("a100 cost priced");
    assert!(
        a100_cost.batch1_us < t4_cost.batch1_us,
        "a100 batch-1 {:.2}us must beat t4 {:.2}us",
        a100_cost.batch1_us,
        t4_cost.batch1_us
    );

    // And it serves across the mix.
    for i in 0..6 {
        let outcome = cluster.infer(MODEL, sample(i)).expect("routed");
        assert!(matches!(outcome, Outcome::Completed(_)));
    }
    let end = cluster.shutdown();
    assert_eq!(end.totals.completed, 6);
    assert_eq!(end.totals.unresolved(), 0);
    let _ = std::fs::remove_file(&bundle_path);
}

#[test]
fn launch_refuses_a_bundle_missing_the_replicas_arch() {
    let bundle_path = tmp("v100_only.bundle");
    let serve = ServeConfig::default();
    pack_bundle(&bundle_path, &[GpuArch::tesla_v100()], &serve);

    let bolt = BoltConfig {
        bundle_path: Some(bundle_path.clone()),
        ..fast_tuning()
    };
    match Cluster::new(ClusterConfig {
        classes: vec![class("t4", GpuArch::tesla_t4(), 1, bolt, &serve)],
        policy: PlacementPolicy::default(),
    }) {
        Err(ClusterError::Bundle { path, reason }) => {
            assert!(path.contains("v100_only.bundle"), "{path}");
            assert!(
                reason.contains("Tesla V100"),
                "the refusal names what the bundle holds: {reason}"
            );
        }
        other => panic!("expected typed Bundle refusal, got {other:?}"),
    }
    let _ = std::fs::remove_file(&bundle_path);
}

#[test]
fn cost_slo_sends_tight_deadlines_to_the_fast_class() {
    let serve = ServeConfig::default();
    let cluster = Cluster::new(ClusterConfig {
        classes: vec![
            class("t4", GpuArch::tesla_t4(), 2, fast_tuning(), &serve),
            class("a100", GpuArch::a100(), 1, fast_tuning(), &serve),
        ],
        policy: PlacementPolicy::CostSlo {
            tight_deadline_us: 25_000,
        },
    })
    .expect("mixed fleet comes up");

    // Latency-critical traffic, one at a time so the fleet is idle at
    // every placement: each request must go to the fastest arch.
    for i in 0..8 {
        let outcome = cluster
            .submit(MODEL, sample(i), Some(Duration::from_millis(20)))
            .expect("routed")
            .wait();
        assert!(matches!(outcome, Outcome::Completed(_)));
    }
    let end = cluster.shutdown();
    let a100_served: u64 = end
        .retired
        .iter()
        .filter(|r| r.class == "a100")
        .map(|r| r.stats.completed)
        .sum();
    assert_eq!(
        a100_served, 8,
        "an idle fleet routes every tight-deadline request to the A100 class"
    );
    assert_eq!(end.totals.unresolved(), 0);
}

#[test]
fn autoscaler_scales_the_hot_class_not_the_fleet() {
    // Queues hold work (batches form only at max_batch, timeout far
    // away), so outstanding requests stay visible per class.
    let serve = ServeConfig {
        workers: 1,
        batch_timeout: Duration::from_secs(10),
        queue_capacity: 64,
        ..ServeConfig::default()
    };
    let cluster = Cluster::new(ClusterConfig {
        classes: vec![
            class("t4", GpuArch::tesla_t4(), 1, fast_tuning(), &serve),
            class("a100", GpuArch::a100(), 1, fast_tuning(), &serve),
        ],
        policy: PlacementPolicy::cost_slo(),
    })
    .expect("mixed fleet comes up");
    let mut scaler = Autoscaler::new(
        Arc::clone(&cluster),
        AutoscalerConfig {
            queue_depth_high: 2.0,
            scale_up_after: 2,
            cooldown_ticks: 0,
            ..AutoscalerConfig::default()
        },
    );

    // Throughput traffic on an idle mix goes to the cheapest class
    // (A100); with batches held, its queue builds while the T4 stays
    // idle — only the hot class may grow.
    let handles: Vec<_> = (0..6)
        .map(|i| cluster.submit(MODEL, sample(i), None).expect("queued"))
        .collect();
    let a100_replica = cluster
        .replicas()
        .into_iter()
        .find(|r| r.class() == "a100")
        .expect("a100 class live");
    assert_eq!(
        a100_replica.load().expect("live").outstanding(),
        6,
        "cheapest class absorbed the whole burst"
    );

    assert_eq!(scaler.tick(), ScaleDecision::Hold, "hysteresis first");
    match scaler.tick() {
        ScaleDecision::ScaledUp { class, .. } => assert_eq!(class, "a100"),
        other => panic!("expected the a100 class to scale, got {other:?}"),
    }
    assert_eq!(cluster.class_count("a100"), 2);
    assert_eq!(cluster.class_count("t4"), 1, "the cold class must not grow");

    let end = cluster.shutdown();
    for handle in handles {
        assert!(matches!(handle.wait(), Outcome::Completed(_)));
    }
    assert_eq!(end.totals.unresolved(), 0);
}
