//! Chaos acceptance at the cluster layer: seeded replica kills fire
//! mid-traffic ([`FaultSite::ReplicaKill`]) and the router must detect
//! each death, re-route, and lose nothing. The schedule is a pure
//! function of the seed (`BOLT_CHAOS_SEED`, default 42).
//!
//! Run with: `cargo test -p bolt-cluster --features chaos`
#![cfg(feature = "chaos")]

use std::time::Duration;

use bolt::faults::{self, ChaosConfig, FaultSite};
use bolt::BoltConfig;
use bolt_cluster::{Cluster, ClusterConfig, ClusterError, ModelSpec, PlacementPolicy, ReplicaSpec};
use bolt_serve::testing::test_arch;
use bolt_serve::{Outcome, ServeConfig};
use bolt_tensor::{DType, Tensor};

fn chaos_seed() -> u64 {
    std::env::var("BOLT_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

#[test]
fn seeded_replica_kills_reroute_without_losing_requests() {
    let cluster = Cluster::new(ClusterConfig::homogeneous(
        ReplicaSpec {
            arch: test_arch(),
            bolt: BoltConfig::default(),
            serve: ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            models: vec![ModelSpec::Zoo {
                name: "mlp-small".into(),
                tuned: false,
            }],
        },
        3,
        PlacementPolicy::LeastLoaded,
    ))
    .expect("cluster up");

    // Kill the routed replica at the 10th and 25th submissions.
    let chaos = faults::install(ChaosConfig {
        seed: chaos_seed(),
        replica_kills: vec![10, 25],
        ..ChaosConfig::default()
    });

    let total = 60u64;
    let mut accepted = 0u64;
    let mut completed = 0u64;
    for i in 0..total {
        match cluster.submit(
            "mlp-small",
            vec![Tensor::randn(&[1, 128], DType::F16, i)],
            Some(Duration::from_secs(5)),
        ) {
            Ok(handle) => {
                accepted += 1;
                if matches!(handle.wait(), Outcome::Completed(_)) {
                    completed += 1;
                }
            }
            Err(ClusterError::AllBackpressured { .. } | ClusterError::NoReplicas) => {}
            Err(other) => panic!("unexpected cluster error: {other}"),
        }
    }

    let kills = chaos
        .events()
        .iter()
        .filter(|e| e.site == FaultSite::ReplicaKill)
        .count();
    assert_eq!(kills, 2, "both scheduled kills fired");
    drop(chaos);

    assert_eq!(cluster.replica_count(), 1, "two of three replicas died");
    let end = cluster.shutdown();
    assert_eq!(
        end.retired.iter().filter(|r| !r.graceful).count(),
        2,
        "the two killed replicas are archived as non-graceful"
    );
    assert_eq!(
        end.totals.unresolved(),
        0,
        "kills dropped accepted requests"
    );
    assert_eq!(end.totals.accepted, accepted);
    assert!(
        completed >= accepted.saturating_sub(10),
        "most accepted requests complete; only work queued on a corpse rejects \
         (completed {completed} of accepted {accepted})"
    );
}
