//! End-to-end serving tests: the acceptance-criteria load test, batching
//! determinism, admission control, timing-only models, and an
//! exactly-once property test under concurrent submitters and shutdown.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use proptest::prelude::*;

use bolt::BoltConfig;
use bolt_serve::testing::test_arch;
use bolt_serve::{BoltServer, EngineRegistry, Outcome, RequestHandle, ServeConfig, ServeError};
use bolt_tensor::{DType, Tensor};

/// One registry shared by every test: engines are immutable, and sharing
/// the compiler means each (model, bucket) pair is tuned exactly once for
/// the whole suite.
fn shared_registry() -> Arc<EngineRegistry> {
    static REGISTRY: OnceLock<Arc<EngineRegistry>> = OnceLock::new();
    Arc::clone(REGISTRY.get_or_init(|| {
        let registry = Arc::new(EngineRegistry::new(test_arch(), BoltConfig::default()));
        registry
            .register_zoo("mlp-small", &[1, 2, 4, 8])
            .expect("mlp-small registers");
        registry
            .register_zoo("mlp-large", &[1, 2, 4, 8])
            .expect("mlp-large registers");
        registry
            .register_zoo("cnn-small", &[1, 2, 4])
            .expect("cnn-small registers");
        registry
    }))
}

fn sample(model: &str, seed: u64) -> Vec<Tensor> {
    let dims: Vec<usize> = match model {
        "mlp-small" => vec![1, 128],
        "mlp-large" => vec![1, 256],
        "cnn-small" => vec![1, 3, 8, 8],
        other => panic!("unexpected model {other}"),
    };
    vec![Tensor::randn(&dims, DType::F16, seed)]
}

/// The ISSUE acceptance test: 4 workers, `max_batch` 8, 1,000 concurrent
/// requests against two registered models — every request reaches a
/// terminal outcome, dynamic batching achieves mean batch size > 2 under
/// saturating load, and deadline-shed requests are observed and counted.
#[test]
fn thousand_concurrent_requests_batch_and_resolve() {
    let server = Arc::new(
        BoltServer::start(
            shared_registry(),
            ServeConfig {
                workers: 4,
                max_batch: 8,
                batch_timeout: Duration::from_millis(20),
                queue_capacity: 2048,
                ..Default::default()
            },
        )
        .expect("valid serve config"),
    );

    let models = ["mlp-small", "mlp-large"];
    let submitters = 8;
    let per_thread = 125; // 8 × 125 = 1,000
    let handles: Vec<RequestHandle> = std::thread::scope(|scope| {
        let threads: Vec<_> = (0..submitters)
            .map(|t| {
                let server = Arc::clone(&server);
                scope.spawn(move || {
                    (0..per_thread)
                        .map(|i| {
                            let model = models[(t + i) % models.len()];
                            server
                                .submit(model, sample(model, (t * per_thread + i) as u64), None)
                                .expect("queue capacity covers the full load")
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        threads
            .into_iter()
            .flat_map(|t| t.join().expect("submitter"))
            .collect()
    });
    assert_eq!(handles.len(), 1000);

    // While the queues are still deep, lob in already-late requests: the
    // batcher must shed them at formation time, never execute them.
    let shed_handles: Vec<RequestHandle> = (0..10)
        .map(|i| {
            server
                .submit(
                    "mlp-small",
                    sample("mlp-small", 5000 + i),
                    Some(Duration::ZERO),
                )
                .expect("shed candidates are admitted")
        })
        .collect();

    for handle in &handles {
        match handle.wait() {
            Outcome::Completed(response) => {
                assert!(response.batch_size >= 1 && response.batch_size <= 8);
                assert!(response.bucket >= response.batch_size);
                let outputs = response.outputs.expect("serving MLPs run functionally");
                assert_eq!(outputs.len(), 1);
                assert_eq!(outputs[0].shape().dims(), &[1, 10]);
                assert!(response.latency.total_us > 0.0);
            }
            other => panic!("load request must complete, got {other:?}"),
        }
    }
    let mut shed_seen = 0;
    for handle in &shed_handles {
        match handle.wait() {
            Outcome::DeadlineExceeded { .. } => shed_seen += 1,
            Outcome::Completed(_) => {} // raced formation before its scan
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    assert!(shed_seen > 0, "at least one already-late request is shed");

    let stats = server_arc_shutdown(server);
    assert_eq!(stats.accepted, 1010);
    assert_eq!(stats.resolved(), stats.accepted, "every request terminal");
    assert_eq!(stats.completed, 1000 + (10 - shed_seen) as u64);
    assert_eq!(stats.deadline_shed, shed_seen as u64);
    assert!(
        stats.mean_batch > 2.0,
        "saturating load must batch: mean batch {}",
        stats.mean_batch
    );
    assert!(stats.latency_p99_us >= stats.latency_p50_us);
    assert!(stats.sim_images_per_sec > 0.0);
}

fn server_arc_shutdown(server: Arc<BoltServer>) -> bolt_serve::MetricsSnapshot {
    Arc::try_unwrap(server)
        .expect("all submitters joined")
        .shutdown()
}

/// Batch formation is driven by `max_batch` (a full batch dispatches
/// immediately) and `batch_timeout` (a partial batch waits the timeout
/// out before dispatching).
#[test]
fn batch_formation_respects_max_batch_and_timeout() {
    // Full batch: forms the moment 4 requests wait, long before the
    // generous 2 s timeout.
    let server = BoltServer::start(
        shared_registry(),
        ServeConfig {
            workers: 1,
            max_batch: 4,
            batch_timeout: Duration::from_secs(2),
            ..Default::default()
        },
    )
    .expect("valid serve config");
    let start = std::time::Instant::now();
    let handles: Vec<_> = (0..4)
        .map(|i| {
            server
                .submit("mlp-small", sample("mlp-small", i), None)
                .expect("submit")
        })
        .collect();
    for handle in &handles {
        assert!(handle.wait().is_completed());
    }
    assert!(
        start.elapsed() < Duration::from_secs(1),
        "a full batch must not wait for the timeout"
    );
    let stats = server.shutdown();
    assert_eq!(stats.batch_hist, vec![(4, 1)]);

    // Partial batch: two requests cannot fill max_batch, so they dispatch
    // only once the oldest has waited out the timeout.
    let timeout = Duration::from_millis(150);
    let server = BoltServer::start(
        shared_registry(),
        ServeConfig {
            workers: 1,
            max_batch: 4,
            batch_timeout: timeout,
            ..Default::default()
        },
    )
    .expect("valid serve config");
    let start = std::time::Instant::now();
    let handles: Vec<_> = (0..2)
        .map(|i| {
            server
                .submit("mlp-small", sample("mlp-small", 10 + i), None)
                .expect("submit")
        })
        .collect();
    for handle in &handles {
        assert!(handle.wait().is_completed());
    }
    assert!(
        start.elapsed() >= Duration::from_millis(100),
        "a partial batch must wait for the batch timeout"
    );
    let stats = server.shutdown();
    assert_eq!(stats.batch_hist, vec![(2, 1)], "one batch of 2, not 1+1");
}

#[test]
fn admission_control_rejects_fast_and_counts() {
    let server = BoltServer::start(
        shared_registry(),
        ServeConfig {
            workers: 1,
            max_batch: 8,
            // Queue effectively never drains during the submissions below.
            batch_timeout: Duration::from_secs(10),
            queue_capacity: 3,
            ..Default::default()
        },
    )
    .expect("valid serve config");

    assert!(matches!(
        server.submit("no-such-model", sample("mlp-small", 0), None),
        Err(ServeError::UnknownModel { .. })
    ));
    assert!(matches!(
        server.submit(
            "mlp-small",
            vec![Tensor::randn(&[1, 7], DType::F16, 0)],
            None
        ),
        Err(ServeError::InvalidInput { .. })
    ));

    // Fill the bounded queue, then watch backpressure kick in.
    let held: Vec<_> = (0..3)
        .map(|i| {
            server
                .submit("mlp-small", sample("mlp-small", i), None)
                .expect("fits in queue")
        })
        .collect();
    assert!(matches!(
        server.submit("mlp-small", sample("mlp-small", 9), None),
        Err(ServeError::QueueFull { capacity: 3, .. })
    ));

    let stats = server.shutdown();
    assert_eq!(stats.rejected_unknown_model, 1);
    assert_eq!(stats.rejected_invalid_input, 1);
    assert_eq!(stats.rejected_queue_full, 1);
    assert_eq!(stats.rejected, 3);
    // Graceful drain still completes the held requests.
    for handle in held {
        assert!(handle.wait().is_completed());
    }
}

/// Shapes-only zoo graphs cannot run functionally; the server still
/// serves them, pricing batches on the simulator (outputs `None`).
#[test]
fn timing_only_models_serve_without_outputs() {
    let registry = Arc::new(EngineRegistry::new(test_arch(), BoltConfig::default()));
    let model = registry
        .register_with("dlrm-bottom", &[1, 2], |batch| {
            bolt_models::mlp::dlrm_bottom_mlp(batch, &[64, 32, 8])
        })
        .expect("register");
    assert!(!model.functional(), "shapes-only graphs are timing-only");

    let server = BoltServer::start(registry, ServeConfig::default()).expect("valid serve config");
    match server
        .infer("dlrm-bottom", vec![Tensor::randn(&[1, 64], DType::F16, 1)])
        .expect("admitted")
    {
        Outcome::Completed(response) => {
            assert!(response.outputs.is_none());
            assert!(response.latency.kernel_us > 0.0);
        }
        other => panic!("unexpected outcome {other:?}"),
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, 1);
}

/// The CNN zoo entry serves end to end — conv, pad, layout-transform,
/// and host steps all run through the shared plan executor — and the
/// plan's step observer surfaces per-kernel latency attribution plus the
/// planned workspace in the metrics snapshot.
#[test]
fn cnn_serves_with_kernel_attribution_and_workspace() {
    let server =
        BoltServer::start(shared_registry(), ServeConfig::default()).expect("valid serve config");
    for i in 0..4 {
        match server
            .infer("cnn-small", sample("cnn-small", 100 + i))
            .expect("admitted")
        {
            Outcome::Completed(response) => {
                let outputs = response.outputs.expect("cnn-small runs functionally");
                assert_eq!(outputs.len(), 1);
                assert_eq!(outputs[0].shape().dims(), &[1, 10]);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, 4);

    // Per-kernel attribution: every batch's simulated time is broken
    // down by step name, sorted descending by total time.
    assert!(!stats.kernel_stats.is_empty());
    assert!(
        stats.kernel_stats.iter().any(|k| k.name.contains("conv2d")),
        "conv kernels appear in the attribution: {:?}",
        stats.kernel_stats
    );
    for pair in stats.kernel_stats.windows(2) {
        assert!(pair[0].total_us >= pair[1].total_us, "sorted descending");
    }
    for stat in &stats.kernel_stats {
        assert!(stat.launches > 0);
        assert!(stat.mean_us > 0.0);
    }
    let total_attributed: f64 = stats.kernel_stats.iter().map(|k| k.total_us).sum();
    assert!(total_attributed > 0.0);

    // The snapshot reports each model's planned peak workspace.
    let cnn_ws = stats
        .model_workspace
        .iter()
        .find(|(name, _)| name == "cnn-small")
        .map(|(_, ws)| *ws)
        .expect("cnn-small workspace reported");
    assert!(cnn_ws > 0, "planned workspace is positive");
}

#[test]
fn submissions_after_shutdown_are_rejected() {
    let server =
        BoltServer::start(shared_registry(), ServeConfig::default()).expect("valid serve config");
    let ok = server
        .submit("mlp-small", sample("mlp-small", 1), None)
        .expect("accepted while running");
    assert!(ok.wait().is_completed());
    // Dropping shuts the server down; a second server on the same
    // registry proves engines outlive individual servers.
    drop(server);
    let server =
        BoltServer::start(shared_registry(), ServeConfig::default()).expect("valid serve config");
    assert!(server
        .infer("mlp-small", sample("mlp-small", 2))
        .expect("fresh server accepts")
        .is_completed());
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Exactly-once: under random worker counts, batch limits, concurrent
    /// submitters, deadlines, and a shutdown racing the submitters, every
    /// accepted request resolves to exactly one terminal outcome and the
    /// metrics agree with the observed outcomes.
    #[test]
    fn every_accepted_request_resolves_exactly_once(
        workers in 1usize..4,
        max_batch in 1usize..9,
        submitters in 1usize..4,
        per_thread in 1usize..25,
        timeout_ms in 1u64..10,
    ) {
        let server = Arc::new(BoltServer::start(
            shared_registry(),
            ServeConfig {
                workers,
                max_batch,
                batch_timeout: Duration::from_millis(timeout_ms),
                queue_capacity: 64,
                ..Default::default()
            },
        ).expect("valid serve config"));

        let mut accepted: Vec<RequestHandle> = Vec::new();
        let mut admission_rejected = 0u64;
        std::thread::scope(|scope| {
            let threads: Vec<_> = (0..submitters)
                .map(|t| {
                    let server = Arc::clone(&server);
                    scope.spawn(move || {
                        let mut ok = Vec::new();
                        let mut rejected = 0u64;
                        for i in 0..per_thread {
                            let deadline = if i % 3 == 0 {
                                Some(Duration::ZERO)
                            } else {
                                None
                            };
                            let model = if i % 2 == 0 { "mlp-small" } else { "mlp-large" };
                            let seed = (t * per_thread + i) as u64;
                            match server.submit(model, sample(model, seed), deadline) {
                                Ok(handle) => ok.push(handle),
                                Err(ServeError::QueueFull { .. })
                                | Err(ServeError::ShuttingDown) => rejected += 1,
                                Err(other) => panic!("unexpected admission error {other}"),
                            }
                        }
                        (ok, rejected)
                    })
                })
                .collect();
            for thread in threads {
                let (ok, rejected) = thread.join().expect("submitter");
                accepted.extend(ok);
                admission_rejected += rejected;
            }
        });

        let stats = Arc::try_unwrap(server)
            .expect("submitters joined")
            .shutdown();

        let mut completed = 0u64;
        let mut shed = 0u64;
        for handle in &accepted {
            match handle.try_wait() {
                Some(Outcome::Completed(_)) => completed += 1,
                Some(Outcome::DeadlineExceeded { .. }) => shed += 1,
                Some(Outcome::Rejected { reason }) => {
                    panic!("no execution failure expected: {reason}")
                }
                None => panic!("accepted request left unresolved after drain"),
            }
        }
        prop_assert_eq!(stats.accepted, accepted.len() as u64);
        prop_assert_eq!(stats.completed, completed);
        prop_assert_eq!(stats.deadline_shed, shed);
        prop_assert_eq!(stats.resolved(), stats.accepted);
        prop_assert_eq!(
            stats.rejected_queue_full + stats.rejected_shutting_down,
            admission_rejected
        );
        prop_assert_eq!(
            stats.submitted,
            accepted.len() as u64 + admission_rejected
        );
    }
}
