//! Chaos acceptance tests (ISSUE 5): drive the serving stack through a
//! seeded fault schedule — compile failures, worker panics and kills,
//! tuner kills, slow batches, and a pre-corrupted autotune cache — and
//! assert the hardening holds: **zero lost or hung requests**, every
//! failure surfaced as a typed error or a degraded response, all
//! workers and tuners alive at drain, and the corrupt cache quarantined
//! and rebuilt on disk. The schedule is a pure function of the seed
//! (`BOLT_CHAOS_SEED`, default 42), so a failing run reproduces
//! bit-for-bit.
//!
//! Run with: `cargo test -p bolt-serve --features chaos`
#![cfg(feature = "chaos")]

use std::sync::Arc;
use std::time::Duration;

use bolt::faults::{self, ChaosConfig, FaultSite};
use bolt::BoltConfig;
use bolt_models::zoo::sample_inputs;
use bolt_serve::testing::test_arch;
use bolt_serve::{
    BoltServer, EngineRegistry, OnlineConfig, OnlineEngineManager, Outcome, ServeConfig,
};

fn chaos_seed() -> u64 {
    std::env::var("BOLT_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bolt-chaos-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn dynamic_registry(cache: Option<std::path::PathBuf>) -> Arc<EngineRegistry> {
    let reg = Arc::new(EngineRegistry::new(
        test_arch(),
        BoltConfig {
            cache_path: cache,
            ..BoltConfig::default()
        },
    ));
    reg.register_zoo_dynamic("mlp-small").expect("register");
    reg
}

/// The ISSUE acceptance scenario: 500 requests against a cold dynamic
/// server while the fault plan injects 30% compile failures, a worker
/// panic mid-batch, worker and tuner kills between batches, slow
/// batches, and the autotune cache starts out corrupted on disk.
#[test]
fn serving_survives_seeded_fault_storm_with_zero_lost_requests() {
    let seed = chaos_seed();
    let dir = scratch_dir("storm");
    let cache = dir.join("autotune.tune");
    // (c) A corrupted cache file is already on disk at warm-start.
    std::fs::write(&cache, b"bolt-autotune-cache v2 arch=sm75\ngarbage entry\n").unwrap();

    let reg = dynamic_registry(Some(cache.clone()));
    let guard = faults::install(ChaosConfig {
        seed,
        // (a) 30% of profiled compiles fail with a typed injected error.
        compile_fail_ratio: 0.3,
        // (b) One worker panic mid-batch, isolated by catch_unwind.
        batch_panics: vec![2],
        // Thread deaths between batches/compiles: the supervisors respawn.
        worker_kills: vec![5],
        tuner_kills: vec![1],
        // A sprinkle of slow batches, to age queues realistically.
        batch_stall_ratio: 0.05,
        batch_stall: Duration::from_micros(200),
        ..ChaosConfig::default()
    });

    let server = Arc::new(
        BoltServer::start(
            Arc::clone(&reg),
            ServeConfig {
                workers: 2,
                max_batch: 8,
                batch_timeout: Duration::from_millis(1),
                queue_capacity: 1024,
                online: Some(OnlineConfig {
                    tuner_threads: 2,
                    retry_backoff: Duration::from_millis(5),
                    retry_backoff_max: Duration::from_millis(50),
                    breaker_threshold: 4,
                    breaker_cooldown: Duration::from_millis(20),
                    ..OnlineConfig::default()
                }),
                ..Default::default()
            },
        )
        .expect("valid serve config"),
    );

    const REQUESTS: usize = 500;
    let handles: Vec<_> = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..4)
            .map(|t| {
                let server = Arc::clone(&server);
                scope.spawn(move || {
                    (0..REQUESTS / 4)
                        .map(|i| {
                            let seed = (t * 1000 + i) as u64;
                            server
                                .submit(
                                    "mlp-small",
                                    sample_inputs("mlp-small", seed).unwrap(),
                                    None,
                                )
                                .expect("admission never fails under this load")
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        clients
            .into_iter()
            .flat_map(|c| c.join().expect("client thread"))
            .collect()
    });

    // Zero hung requests: every handle reaches a terminal outcome in
    // bounded time, and every non-completion is a *typed* failure.
    let (mut completed, mut rejected) = (0u64, 0u64);
    for handle in &handles {
        match handle
            .wait_timeout(Duration::from_secs(120))
            .expect("request must not hang under faults")
        {
            Outcome::Completed(_) => completed += 1,
            Outcome::Rejected { reason } => {
                assert!(
                    reason.contains("panic isolated") || reason.contains("injected fault"),
                    "rejections under chaos carry the injected cause, got: {reason}"
                );
                rejected += 1;
            }
            Outcome::DeadlineExceeded { .. } => {
                panic!("no deadlines were set, none may be exceeded")
            }
        }
    }
    assert_eq!(completed + rejected, REQUESTS as u64, "zero lost requests");
    assert!(
        completed >= (REQUESTS as u64) * 9 / 10,
        "only the injected batch panic may reject; got {rejected} rejections"
    );

    // The tuner pool survives the storm and still converges: every
    // compile failure retries (backoff) until the key lands.
    let manager = server.online().expect("online mode");
    assert!(
        manager.wait_idle(Duration::from_secs(300)),
        "tuners drain even with 30% compile failures"
    );

    // Every injected fault was predicted by the pure schedule: the same
    // seed reproduces the same (site, occurrence) -> action mapping.
    let replayed = ChaosConfig {
        seed,
        compile_fail_ratio: 0.3,
        batch_panics: vec![2],
        worker_kills: vec![5],
        tuner_kills: vec![1],
        batch_stall_ratio: 0.05,
        batch_stall: Duration::from_micros(200),
        ..ChaosConfig::default()
    };
    let events = guard.events();
    assert!(!events.is_empty(), "the storm must have injected something");
    for event in &events {
        assert!(
            replayed.fires(event.site, event.occurrence),
            "event {event:?} must replay from the seed alone"
        );
    }
    let injected_compile_failures = events
        .iter()
        .filter(|e| e.site == FaultSite::Compile)
        .count() as u64;
    drop(guard); // Uninstall: the recovery below runs fault-free.

    // Self-healing: with the plan gone, re-requesting every key still in
    // `Failed` (once its backoff elapses) recompiles it successfully —
    // the whole engine set recovers.
    let recovery_deadline = std::time::Instant::now() + Duration::from_secs(120);
    loop {
        let snap = manager.snapshot();
        if snap.failed_buckets.is_empty() && snap.tripped_models.is_empty() {
            break;
        }
        assert!(
            std::time::Instant::now() < recovery_deadline,
            "keys must recover once faults stop: {:?}",
            snap.failed_buckets
        );
        std::thread::sleep(Duration::from_millis(25));
        let engines = reg.get("mlp-small").unwrap();
        for failed in &snap.failed_buckets {
            let _ = manager.acquire(&engines, failed.bucket);
        }
        if snap.failed_buckets.is_empty() {
            // Breaker still cooling down with no failed key to retry:
            // any miss-free acquire keeps the clock moving until the
            // half-open probe can fire.
            let _ = manager.acquire(&engines, 1);
        }
        assert!(manager.wait_idle(Duration::from_secs(60)));
    }

    // The stack is healthy after the storm: a fresh request completes,
    // workers and tuners are alive (restart counters prove the deaths
    // happened *and* were recovered).
    match server
        .infer("mlp-small", sample_inputs("mlp-small", 9999).unwrap())
        .expect("server accepts after the storm")
    {
        Outcome::Completed(_) => {}
        other => panic!("post-storm request must complete, got {other:?}"),
    }

    let stats = Arc::try_unwrap(server).expect("clients joined").shutdown();
    assert_eq!(
        stats.resolved(),
        stats.accepted,
        "every accepted request is terminal at drain"
    );
    assert!(stats.worker_panics >= 1, "the batch panic was recorded");
    assert!(
        stats.worker_restarts >= 1,
        "the killed worker was respawned"
    );
    let online = stats.online.expect("online counters");
    assert!(online.tuner_restarts >= 1, "the killed tuner was respawned");
    assert_eq!(
        online.compiles_failed, injected_compile_failures,
        "every failed compile is an injected one, each counted once"
    );
    assert!(
        online.failed_buckets.is_empty(),
        "all keys recovered once the plan was uninstalled: {:?}",
        online.failed_buckets
    );

    // The corrupt cache was quarantined (evidence preserved) and a
    // valid cache was rebuilt in its place by the surviving compiles.
    let quarantined = dir.join("autotune.tune.corrupt");
    assert!(quarantined.exists(), "corrupt cache renamed, not deleted");
    let rebuilt = std::fs::read_to_string(&cache).expect("cache rebuilt on disk");
    assert!(
        rebuilt
            .lines()
            .last()
            .is_some_and(|l| l.starts_with("checksum ")),
        "rebuilt cache carries a checksum footer"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `EngineState::Failed { retry_after }` gates retries: while the
/// backoff deadline is in the future no amount of traffic re-enqueues
/// the compile, and the first miss after it enqueues **exactly one**.
#[test]
fn failed_bucket_retries_exactly_once_after_backoff() {
    let guard = faults::install(ChaosConfig {
        seed: chaos_seed(),
        compile_fail_ratio: 1.0, // every profiled compile fails
        ..ChaosConfig::default()
    });
    let reg = dynamic_registry(None);
    let engines = reg.get("mlp-small").unwrap();
    let manager = OnlineEngineManager::new(
        Arc::clone(&reg),
        OnlineConfig {
            retry_backoff: Duration::from_millis(300),
            retry_backoff_max: Duration::from_secs(2),
            breaker_threshold: u32::MAX, // keep the breaker out of this test
            ..OnlineConfig::default()
        },
    );

    manager.acquire(&engines, 2).expect("heuristic fallback");
    assert!(manager.wait_idle(Duration::from_secs(60)));
    let snap = manager.snapshot();
    assert_eq!(snap.compiles_failed, 1);
    assert_eq!(snap.failed_buckets.len(), 1);
    assert_eq!(snap.failed_buckets[0].attempts, 1);
    let retry_in = snap.failed_buckets[0].retry_in;
    assert!(retry_in > Duration::ZERO, "backoff must be pending");

    // Hammer the key while the backoff deadline is in the future: no
    // compile may be (re-)enqueued.
    for _ in 0..50 {
        manager.acquire(&engines, 2).expect("still served");
    }
    assert!(manager.wait_idle(Duration::from_secs(60)));
    assert_eq!(
        manager.snapshot().compiles_failed,
        1,
        "no re-enqueue before retry_after"
    );

    // First miss past the deadline: exactly one retry, which fails
    // again and doubles the backoff.
    std::thread::sleep(retry_in + Duration::from_millis(50));
    manager.acquire(&engines, 2).expect("served while retrying");
    assert!(manager.wait_idle(Duration::from_secs(60)));
    let snap = manager.snapshot();
    assert_eq!(snap.compiles_failed, 2, "exactly one retry after backoff");
    assert_eq!(snap.failed_buckets[0].attempts, 2);
    assert!(
        snap.failed_buckets[0].retry_in > retry_in,
        "backoff grows: {:?} then {:?}",
        retry_in,
        snap.failed_buckets[0].retry_in
    );
    drop(guard);
}

/// The per-model circuit breaker: consecutive compile failures trip it,
/// tripped models serve degraded without enqueueing compiles, and after
/// the cooldown a single half-open probe (succeeding once the faults
/// stop) closes it again.
#[test]
fn breaker_trips_serves_degraded_then_probe_recovers() {
    let guard = faults::install(ChaosConfig {
        seed: chaos_seed(),
        compile_fail_ratio: 1.0,
        ..ChaosConfig::default()
    });
    let reg = dynamic_registry(None);
    let engines = reg.get("mlp-small").unwrap();
    let manager = OnlineEngineManager::new(
        Arc::clone(&reg),
        OnlineConfig {
            retry_backoff: Duration::from_millis(1), // backoff out of the way
            retry_backoff_max: Duration::from_millis(2),
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(250),
            ..OnlineConfig::default()
        },
    );

    // Two consecutive failures trip the breaker.
    let placed = manager.acquire(&engines, 2).expect("first miss");
    assert!(!placed.degraded, "breaker still closed on the first miss");
    assert!(manager.wait_idle(Duration::from_secs(60)));
    std::thread::sleep(Duration::from_millis(10)); // past the 1 ms backoff
    manager.acquire(&engines, 2).expect("second miss");
    assert!(manager.wait_idle(Duration::from_secs(60)));
    let snap = manager.snapshot();
    assert_eq!(snap.compiles_failed, 2);
    assert_eq!(snap.breaker_trips, 1, "threshold 2 trips on failure 2");
    assert_eq!(snap.tripped_models, vec!["mlp-small".to_string()]);

    // Open breaker: served, flagged degraded, no compile enqueued.
    let placed = manager.acquire(&engines, 2).expect("served while open");
    assert!(placed.degraded);
    assert!(manager.wait_idle(Duration::from_secs(60)));
    let snap = manager.snapshot();
    assert_eq!(snap.compiles_failed, 2, "open breaker enqueues nothing");
    assert!(snap.degraded_served >= 2, "degraded requests are counted");

    // Stop injecting, wait out the cooldown: the next miss admits one
    // half-open probe, the probe succeeds, and the breaker closes.
    drop(guard);
    std::thread::sleep(Duration::from_millis(300));
    let placed = manager.acquire(&engines, 2).expect("probe miss");
    assert!(placed.degraded, "the probe itself still serves degraded");
    assert!(manager.wait_idle(Duration::from_secs(60)));
    let snap = manager.snapshot();
    assert_eq!(snap.compiles_completed, 1, "the probe compile succeeded");
    assert!(snap.tripped_models.is_empty(), "success closes the breaker");
    assert!(snap.failed_buckets.is_empty());

    let placed = manager.acquire(&engines, 2).expect("tuned after recovery");
    assert!(!placed.fallback, "the probed bucket is tuned and serving");
    assert!(!placed.degraded, "closed breaker serves clean");
}
