//! Drain, gauge, and configuration-validation acceptance tests: the
//! invariants the cluster layer's autoscaler and router build on.
//!
//! - graceful drain resolves every accepted request exactly once
//!   (completed or rejected, never dropped);
//! - the live `queue_depth`/`inflight` gauges track load and return to
//!   zero after drain;
//! - a degenerate [`ServeConfig`] is rejected at construction with a
//!   typed [`ServeError::Config`] instead of panicking or hanging.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bolt::BoltConfig;
use bolt_serve::testing::test_arch;
use bolt_serve::{BoltServer, EngineRegistry, Outcome, ServeConfig, ServeError};
use bolt_tensor::{DType, Tensor};

fn registry() -> Arc<EngineRegistry> {
    let reg = Arc::new(EngineRegistry::new(test_arch(), BoltConfig::default()));
    // Heuristic engines: fast to build, and engine quality is irrelevant
    // to drain semantics.
    reg.register_zoo_dynamic("mlp-small").expect("register");
    for bucket in [1usize, 2, 4, 8] {
        let engine = reg
            .compile_heuristic_bucket("mlp-small", bucket)
            .expect("heuristic compile");
        reg.insert_bucket("mlp-small", bucket, engine)
            .expect("install");
    }
    reg
}

fn sample(seed: u64) -> Vec<Tensor> {
    vec![Tensor::randn(&[1, 128], DType::F16, seed)]
}

#[test]
fn graceful_drain_resolves_every_accepted_request_exactly_once() {
    let server = Arc::new(
        BoltServer::start(
            registry(),
            ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
        )
        .expect("valid serve config"),
    );

    // Concurrent submitters, with the drain racing the tail of the storm:
    // some requests are in queues, some in formed batches, some on
    // streams when accepting flips off.
    let outcomes = Arc::new([
        AtomicU64::new(0), // completed
        AtomicU64::new(0), // rejected
        AtomicU64::new(0), // deadline exceeded
    ]);
    let mut joins = Vec::new();
    let mut accepted = 0u64;
    let mut handles = Vec::new();
    for i in 0..300u64 {
        match server.submit("mlp-small", sample(i), None) {
            Ok(handle) => {
                accepted += 1;
                handles.push(handle);
            }
            Err(ServeError::QueueFull { .. }) => {}
            Err(other) => panic!("unexpected admission error: {other}"),
        }
    }
    for handle in handles {
        let outcomes = Arc::clone(&outcomes);
        joins.push(std::thread::spawn(move || {
            let index = match handle.wait() {
                Outcome::Completed(_) => 0,
                Outcome::Rejected { .. } => 1,
                Outcome::DeadlineExceeded { .. } => 2,
            };
            outcomes[index].fetch_add(1, Ordering::Relaxed);
        }));
    }

    let server = Arc::try_unwrap(server).ok();
    let stats = match server {
        Some(server) => server.shutdown(),
        None => unreachable!("all clones dropped"),
    };
    for join in joins {
        join.join().expect("waiter");
    }

    let terminal: u64 = outcomes.iter().map(|c| c.load(Ordering::Relaxed)).sum();
    assert_eq!(stats.accepted, accepted);
    assert_eq!(
        terminal, accepted,
        "every accepted request reached exactly one terminal outcome"
    );
    assert_eq!(
        stats.resolved(),
        stats.accepted,
        "server accounting agrees: resolved == accepted after drain"
    );
    assert_eq!(stats.worker_panics, 0, "no double-resolution panics");
    assert_eq!(
        stats.queue_depth, 0,
        "queue gauge returns to zero after drain"
    );
    assert_eq!(
        stats.inflight, 0,
        "inflight gauge returns to zero after drain"
    );
}

#[test]
fn gauges_show_live_load_and_zero_after_drain() {
    // Batches form only at 8 and the timeout is far away: submitted
    // requests sit in the queue where the gauge can see them.
    let server = BoltServer::start(
        registry(),
        ServeConfig {
            workers: 1,
            batch_timeout: Duration::from_secs(10),
            ..ServeConfig::default()
        },
    )
    .expect("valid serve config");

    let handles: Vec<_> = (0..3)
        .map(|i| server.submit("mlp-small", sample(i), None).expect("queued"))
        .collect();
    let load = server.load();
    assert_eq!(load.queue_depth, 3, "queued work is visible live");
    assert_eq!(load.outstanding(), 3);

    let stats = server.shutdown();
    for handle in handles {
        assert!(matches!(handle.wait(), Outcome::Completed(_)));
    }
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.inflight, 0);
    assert_eq!(stats.resolved(), stats.accepted);
}

#[test]
fn abort_rejects_queued_work_instead_of_executing_it() {
    let server = BoltServer::start(
        registry(),
        ServeConfig {
            workers: 1,
            batch_timeout: Duration::from_secs(10),
            ..ServeConfig::default()
        },
    )
    .expect("valid serve config");
    let handles: Vec<_> = (0..5)
        .map(|i| server.submit("mlp-small", sample(i), None).expect("queued"))
        .collect();
    let stats = server.abort();
    assert_eq!(stats.accepted, 5);
    assert_eq!(stats.resolved(), 5, "abort still resolves everything");
    assert_eq!(stats.completed, 0, "nothing executed");
    for handle in handles {
        assert!(matches!(handle.wait(), Outcome::Rejected { .. }));
    }
}

#[test]
fn degenerate_configs_are_rejected_with_typed_errors() {
    let cases = [
        (
            ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            },
            "workers",
        ),
        (
            ServeConfig {
                max_batch: 0,
                ..ServeConfig::default()
            },
            "max_batch",
        ),
        (
            ServeConfig {
                queue_capacity: 0,
                ..ServeConfig::default()
            },
            "queue_capacity",
        ),
        (
            ServeConfig {
                batch_timeout: Duration::ZERO,
                default_deadline: None,
                ..ServeConfig::default()
            },
            "batch_timeout",
        ),
    ];
    for (config, expect) in cases {
        match BoltServer::start(registry(), config) {
            Err(ServeError::Config { reason }) => assert!(
                reason.contains(expect),
                "reason {reason:?} should name {expect}"
            ),
            other => panic!("expected Config error naming {expect}, got {other:?}"),
        }
    }

    // Zero timeout WITH a deadline is legal: the deadline bounds waits.
    let ok = BoltServer::start(
        registry(),
        ServeConfig {
            batch_timeout: Duration::ZERO,
            default_deadline: Some(Duration::from_secs(1)),
            ..ServeConfig::default()
        },
    );
    assert!(ok.is_ok(), "zero timeout with a deadline is valid");
    drop(ok);
}
