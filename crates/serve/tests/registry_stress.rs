//! Concurrency stress test for the engine registry: threads racing
//! re-registration, lookups, hot-swaps, and evictions must never observe
//! a partially-built `ModelEngines` — every lookup sees a complete,
//! internally-consistent snapshot (hot-swaps replace the whole `Arc`
//! under the write lock; there is no in-place mutation to tear).

use std::sync::Arc;

use bolt::BoltConfig;
use bolt_serve::testing::test_arch;
use bolt_serve::EngineRegistry;

#[test]
fn racing_register_lookup_hot_swap_and_evict_see_only_complete_snapshots() {
    let reg = Arc::new(EngineRegistry::new(test_arch(), BoltConfig::default()));
    reg.register_zoo("mlp-small", &[1]).expect("register");
    // Compile the hot-swap candidates up front so the loops below race
    // registry mutation, not the compiler.
    let (plan2, _) = reg.compile_bucket("mlp-small", 2).expect("bucket 2");
    let (plan4, _) = reg.compile_bucket("mlp-small", 4).expect("bucket 4");

    std::thread::scope(|scope| {
        // Re-registration: wholesale replacement back to buckets [1].
        {
            let reg = Arc::clone(&reg);
            scope.spawn(move || {
                for _ in 0..50 {
                    reg.register_zoo("mlp-small", &[1]).expect("re-register");
                }
            });
        }
        // Hot-swap/evict churn on two distinct buckets. A remove may
        // no-op when a re-registration already dropped the bucket; both
        // orders leave a complete snapshot behind.
        for (bucket, plan) in [(2usize, &plan2), (4usize, &plan4)] {
            let reg = Arc::clone(&reg);
            let plan = Arc::clone(plan);
            scope.spawn(move || {
                for _ in 0..200 {
                    reg.insert_bucket("mlp-small", bucket, Arc::clone(&plan))
                        .expect("hot-swap");
                    reg.remove_bucket("mlp-small", bucket).expect("evict");
                }
            });
        }
        // Lookups: every observed snapshot must be fully built.
        for _ in 0..4 {
            let reg = Arc::clone(&reg);
            scope.spawn(move || {
                for _ in 0..2_000 {
                    let engines = reg.get("mlp-small").expect("always registered");
                    assert_eq!(engines.name(), "mlp-small");
                    let buckets = engines.bucket_sizes();
                    assert!(
                        buckets.windows(2).all(|w| w[0] < w[1]),
                        "buckets sorted, unique: {buckets:?}"
                    );
                    assert!(
                        buckets.contains(&1),
                        "bucket 1 survives every interleaving: {buckets:?}"
                    );
                    assert_eq!(engines.max_batch(), *buckets.last().unwrap());
                    for bucket in buckets {
                        let (found, engine) =
                            engines.engine_for(bucket).expect("listed bucket resolves");
                        assert_eq!(found, bucket);
                        assert!(engine.resident_bytes() > 0);
                    }
                    // The batch-placement view agrees with the snapshot.
                    let placed = engines.placement_for(1).expect("bucket 1 places");
                    assert_eq!(placed.launches, 1);
                }
            });
        }
    });

    // The churn threads end on `remove`, the re-register thread on
    // buckets [1]; whichever won last, the registry is consistent.
    let final_buckets = reg.get("mlp-small").unwrap().bucket_sizes();
    assert!(final_buckets.contains(&1));
}
