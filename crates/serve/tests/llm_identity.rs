//! Property tests for the continuous batcher (ISSUE 9, satellite d;
//! KV-budget cases from ISSUE 10): under random prompts, generation
//! lengths, slot counts, batching modes, join/step interleavings, and
//! KV block budgets, every submitted sequence finishes **exactly once**
//! with a token stream **bit-identical** to running that sequence alone
//! through the same engines (the `max_slots = 1` sequential oracle).
//! Batching — who else shares the step, when they join, when they
//! retire, who got preempted and replayed under memory pressure — must
//! never leak into the generated tokens.

use proptest::prelude::*;

use bolt::BoltConfig;
use bolt_serve::testing::test_arch;
use bolt_serve::{
    BatchMode, ContinuousBatcher, FinishReason, LlmServeConfig, SequenceRequest, SequenceResult,
};

const VOCAB: u32 = 128; // tiny-lm vocabulary

fn batcher(max_slots: usize, mode: BatchMode) -> ContinuousBatcher {
    ContinuousBatcher::new(
        test_arch(),
        BoltConfig::default(),
        LlmServeConfig {
            max_slots,
            mode,
            ..LlmServeConfig::default()
        },
    )
    .expect("tiny-lm batcher")
}

/// One sequence at a time through the same model: the ground truth each
/// batched run must reproduce bit-for-bit.
fn sequential_oracle(requests: &[(Vec<u32>, usize)]) -> Vec<Vec<u32>> {
    let mut oracle = batcher(1, BatchMode::Continuous);
    requests
        .iter()
        .map(|(prompt, max_new)| {
            oracle
                .submit(SequenceRequest {
                    prompt: prompt.clone(),
                    max_new_tokens: *max_new,
                    deadline_us: None,
                })
                .expect("valid request");
            let mut done = oracle.run_to_completion();
            assert_eq!(done.len(), 1, "oracle runs one sequence at a time");
            let seq = done.pop().expect("one result");
            assert_eq!(seq.finish, FinishReason::Length);
            seq.tokens
        })
        .collect()
}

/// Drives `requests` through a batcher built from `config`, submitting
/// `joins[k]` new sequences before step `k` (remainder submitted up
/// front), and returns the results sorted by submission id.
fn interleaved_run(
    config: LlmServeConfig,
    requests: &[(Vec<u32>, usize)],
    joins: &[usize],
) -> (Vec<SequenceResult>, bolt_serve::LlmStats) {
    let mut batcher = ContinuousBatcher::new(test_arch(), BoltConfig::default(), config)
        .expect("tiny-lm batcher");
    let mut next = 0usize;
    let mut submit_n = |batcher: &mut ContinuousBatcher, n: usize| {
        for _ in 0..n {
            if next >= requests.len() {
                return;
            }
            let (prompt, max_new) = &requests[next];
            batcher
                .submit(SequenceRequest {
                    prompt: prompt.clone(),
                    max_new_tokens: *max_new,
                    deadline_us: None,
                })
                .expect("valid request");
            next += 1;
        }
    };
    for &n in joins {
        submit_n(&mut batcher, n);
        batcher.step();
    }
    submit_n(&mut batcher, requests.len());
    let mut results = batcher.run_to_completion();
    results.sort_by_key(|r| r.id);
    (results, batcher.stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Exactly-once + bit-identity under interleaved joins: random
    /// sequences joining mid-stream produce the same streams as solo
    /// runs, each sequence finishing exactly once at full length.
    #[test]
    fn interleaved_continuous_matches_sequential_oracle(
        requests in prop::collection::vec(
            (prop::collection::vec(0u32..VOCAB, 1..24), 1usize..7),
            1..8,
        ),
        max_slots in 1usize..7,
        joins in prop::collection::vec(0usize..3, 0..10),
    ) {
        let expected = sequential_oracle(&requests);
        let config = LlmServeConfig {
            max_slots,
            mode: BatchMode::Continuous,
            ..LlmServeConfig::default()
        };
        let (results, stats) = interleaved_run(config, &requests, &joins);

        prop_assert_eq!(results.len(), requests.len(), "exactly one result per submit");
        let mut generated = 0u64;
        for (i, seq) in results.iter().enumerate() {
            prop_assert_eq!(seq.finish, FinishReason::Length);
            prop_assert_eq!(seq.prompt_len, requests[i].0.len());
            prop_assert_eq!(seq.tokens.len(), requests[i].1, "no lost or duplicated tokens");
            prop_assert_eq!(&seq.tokens, &expected[i], "stream diverged from solo run");
            generated += seq.tokens.len() as u64;
        }
        prop_assert_eq!(stats.generated_tokens, generated);
    }

    /// The legacy pad-to-bucket path must also stay bit-identical: a
    /// static cohort wastes flops on retired rows but never changes the
    /// tokens.
    #[test]
    fn static_cohort_matches_sequential_oracle(
        requests in prop::collection::vec(
            (prop::collection::vec(0u32..VOCAB, 1..16), 1usize..6),
            1..6,
        ),
        max_slots in 1usize..5,
    ) {
        let expected = sequential_oracle(&requests);
        let config = LlmServeConfig {
            max_slots,
            mode: BatchMode::StaticCohort,
            ..LlmServeConfig::default()
        };
        let (results, _) = interleaved_run(config, &requests, &[]);

        prop_assert_eq!(results.len(), requests.len());
        for (i, seq) in results.iter().enumerate() {
            prop_assert_eq!(seq.finish, FinishReason::Length);
            prop_assert_eq!(&seq.tokens, &expected[i]);
        }
    }

    /// ISSUE 10: random tight KV block budgets (down to the one-full-
    /// context floor of 10) force watermark stalls and preemption
    /// replays at random points — and none of it may leak into the
    /// streams. Exactly-once accounting must hold however many times a
    /// sequence was evicted and recomputed.
    #[test]
    fn tight_kv_budgets_preempt_without_changing_streams(
        requests in prop::collection::vec(
            (prop::collection::vec(0u32..VOCAB, 1..24), 1usize..7),
            1..8,
        ),
        max_slots in 2usize..7,
        budget in 10usize..16,
        joins in prop::collection::vec(0usize..3, 0..6),
    ) {
        let expected = sequential_oracle(&requests);
        let config = LlmServeConfig {
            max_slots,
            mode: BatchMode::Continuous,
            kv_budget_blocks: Some(budget),
            ..LlmServeConfig::default()
        };
        let (results, stats) = interleaved_run(config, &requests, &joins);

        prop_assert_eq!(results.len(), requests.len(), "exactly one result per submit");
        let mut generated = 0u64;
        for (i, seq) in results.iter().enumerate() {
            prop_assert_eq!(seq.finish, FinishReason::Length);
            prop_assert_eq!(seq.prompt_len, requests[i].0.len());
            prop_assert_eq!(
                seq.tokens.len(), requests[i].1,
                "no lost or duplicated tokens under preemption"
            );
            prop_assert_eq!(&seq.tokens, &expected[i], "preemption leaked into the stream");
            generated += seq.tokens.len() as u64;
        }
        prop_assert_eq!(stats.generated_tokens, generated);
        prop_assert!(
            stats.preemptions > 0 || stats.recompute_tokens == 0,
            "recompute only ever comes from preemptions"
        );
    }
}
