//! End-to-end acceptance tests for online tuning (ISSUE 4): a server
//! started with **zero** precompiled buckets serves a stream of unseen
//! batch sizes — every request reaches a terminal outcome, the earliest
//! responses ride the fallback path, and once the background tuner
//! catches up identical requests run on tuned engines with strictly
//! lower simulated latency. A restart against the persisted autotune
//! cache then re-creates the same engines without measuring anything
//! (`tuning_seconds == 0`).

use std::sync::Arc;
use std::time::Duration;

use bolt::BoltConfig;
use bolt_models::zoo::sample_inputs;
use bolt_serve::testing::test_arch;
use bolt_serve::{
    BoltServer, EngineRegistry, InferResponse, OnlineConfig, Outcome, RequestHandle, ServeConfig,
};
use bolt_tensor::Tensor;

fn sample(seed: u64) -> Vec<Tensor> {
    sample_inputs("mlp-large", seed).expect("zoo model")
}

fn online_server(registry: &Arc<EngineRegistry>) -> BoltServer {
    BoltServer::start(
        Arc::clone(registry),
        ServeConfig {
            workers: 2,
            max_batch: 8,
            batch_timeout: Duration::from_millis(1),
            online: Some(OnlineConfig::default()),
            ..Default::default()
        },
    )
    .expect("valid serve config")
}

fn completed(outcome: Outcome) -> InferResponse {
    match outcome {
        Outcome::Completed(response) => response,
        other => panic!("request must complete, got {other:?}"),
    }
}

/// The ISSUE acceptance scenario, both halves: cold start converging to
/// tuned engines, then a warm restart off the persisted cache.
#[test]
fn cold_server_serves_unseen_shapes_and_converges_to_tuned_engines() {
    let dir = std::env::temp_dir().join(format!("bolt-online-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache = dir.join("autotune.tune");
    let registry = || {
        let reg = Arc::new(EngineRegistry::new(
            test_arch(),
            BoltConfig {
                cache_path: Some(cache.clone()),
                ..BoltConfig::default()
            },
        ));
        // Zero precompiled buckets: every shape this test serves is
        // unseen by construction.
        reg.register_zoo_dynamic("mlp-large").expect("register");
        reg
    };

    // ---- Phase 1: cold start. ----
    let reg = registry();
    assert_eq!(reg.get("mlp-large").unwrap().max_batch(), 0);
    let server = online_server(&reg);

    // The very first request cannot have a tuned engine; it must still
    // complete — served on the heuristic default-config fallback.
    let first = completed(server.infer("mlp-large", sample(0)).expect("admitted"));
    assert!(first.fallback, "first response rides the fallback path");
    assert_eq!(first.batch_size, 1);
    let outputs = first.outputs.as_ref().expect("mlp-large runs functionally");
    assert_eq!(outputs[0].shape().dims(), &[1, 10]);
    let fallback_kernel_us = first.latency.kernel_us;
    assert!(fallback_kernel_us > 0.0);

    // A stream of unseen batch sizes: waves of concurrent submissions so
    // the batcher forms multi-request batches that miss, split, and pad.
    let mut handles: Vec<RequestHandle> = Vec::new();
    for (wave, count) in [2usize, 3, 5, 8, 3].into_iter().enumerate() {
        for i in 0..count {
            handles.push(
                server
                    .submit("mlp-large", sample((wave * 100 + i) as u64), None)
                    .expect("admitted"),
            );
        }
    }
    for handle in &handles {
        let response = completed(handle.wait());
        let outputs = response.outputs.expect("functional outputs");
        assert_eq!(outputs[0].shape().dims(), &[1, 10]);
        assert!(response.launches >= 1);
        assert!(response.latency.total_us > 0.0);
    }

    // Let the background tuner drain, then replay the first request:
    // identical input, now on a tuned engine, strictly faster.
    assert!(
        server.online().unwrap().wait_idle(Duration::from_secs(120)),
        "background compiles drain"
    );
    let replay = completed(server.infer("mlp-large", sample(0)).expect("admitted"));
    assert!(!replay.fallback, "replay is served by a tuned engine");
    assert_eq!(replay.launches, 1);
    assert!(
        replay.latency.kernel_us < fallback_kernel_us,
        "tuned engine must be strictly faster: tuned {} vs fallback {}",
        replay.latency.kernel_us,
        fallback_kernel_us
    );

    let stats = server.shutdown();
    assert_eq!(stats.resolved(), stats.accepted, "every request terminal");
    assert_eq!(stats.rejected_execution, 0);
    let online = stats.online.expect("online counters present");
    assert!(online.fallback_served >= 1);
    assert!(online.compiles_completed >= 1);
    assert_eq!(online.compiles_failed, 0);
    assert_eq!(online.hot_swaps, online.compiles_completed);
    assert!(
        online.tuning_seconds > 0.0,
        "cold compiles must charge simulated tuning time"
    );
    assert_eq!(online.compile_queue_depth, 0);
    assert!(cache.exists(), "autotune cache persisted after compiles");
    let tuned_buckets = reg.get("mlp-large").unwrap().bucket_sizes();
    assert!(
        tuned_buckets.contains(&1),
        "bucket 1 tuned online: {tuned_buckets:?}"
    );

    // ---- Phase 2: warm restart against the persisted cache. ----
    let reg = registry();
    assert_eq!(
        reg.get("mlp-large").unwrap().max_batch(),
        0,
        "the restart also begins with zero compiled engines"
    );
    let server = online_server(&reg);
    let warm_first = completed(server.infer("mlp-large", sample(0)).expect("admitted"));
    assert!(warm_first.fallback, "engines are still compiled on demand");
    assert!(server.online().unwrap().wait_idle(Duration::from_secs(120)));
    let warm_replay = completed(server.infer("mlp-large", sample(0)).expect("admitted"));
    assert!(!warm_replay.fallback);
    assert_eq!(
        warm_replay.latency.kernel_us, replay.latency.kernel_us,
        "the cache reproduces the same tuned engine"
    );
    let online = server.shutdown().online.expect("online counters");
    assert!(online.compiles_completed >= 1);
    assert_eq!(
        online.tuning_seconds, 0.0,
        "every workload comes warm from the persisted cache: nothing is measured"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: a batch larger than every compiled bucket is split
/// explicitly across repeated launches (never silently truncated), the
/// split is counted in the metrics, and the background tuner compiles
/// the quantized bucket so later batches run in one launch.
#[test]
fn oversized_batches_split_explicitly_and_count_overflow() {
    let reg = Arc::new(EngineRegistry::new(test_arch(), BoltConfig::default()));
    reg.register_zoo("mlp-small", &[2]).expect("register");
    let server = BoltServer::start(
        Arc::clone(&reg),
        ServeConfig {
            workers: 1,
            max_batch: 8,
            // Long enough that all six submissions below join one batch.
            batch_timeout: Duration::from_millis(200),
            online: Some(OnlineConfig::default()),
            ..Default::default()
        },
    )
    .expect("valid serve config");

    let sample = |seed: u64| sample_inputs("mlp-small", seed).expect("zoo model");
    let handles: Vec<RequestHandle> = (0..6)
        .map(|i| {
            server
                .submit("mlp-small", sample(i), None)
                .expect("admitted")
        })
        .collect();
    for handle in &handles {
        let response = completed(handle.wait());
        assert_eq!(response.batch_size, 6, "all six share one batch");
        assert_eq!(response.bucket, 2, "largest compiled bucket");
        assert_eq!(response.launches, 3, "ceil(6/2) explicit launches");
        assert!(response.fallback);
        let outputs = response.outputs.expect("split batches still compute");
        assert_eq!(outputs[0].shape().dims(), &[1, 10]);
    }

    assert!(server.online().unwrap().wait_idle(Duration::from_secs(120)));
    assert!(
        reg.get("mlp-small").unwrap().has_bucket(8),
        "the overflow's quantized bucket is tuned in the background"
    );
    let stats = server.shutdown();
    assert!(stats.batch_overflow >= 1, "split batches are counted");
    assert_eq!(stats.completed, 6);
}

/// A zero-bucket dynamic model with online tuning *disabled* is
/// unservable: every submit is rejected fast with
/// [`bolt_serve::ServeError::NoEngine`], counted in
/// `rejected_no_engine`, and never enters the queues. Enabling online
/// tuning on the identical registry makes the same submit admissible.
#[test]
fn zero_bucket_model_without_online_tuning_rejects_and_counts() {
    let reg = Arc::new(EngineRegistry::new(test_arch(), BoltConfig::default()));
    reg.register_zoo_dynamic("mlp-large").expect("register");

    let server = BoltServer::start(
        Arc::clone(&reg),
        ServeConfig {
            online: None,
            ..ServeConfig::default()
        },
    )
    .expect("valid serve config");
    for seed in 0..3 {
        let err = server.submit("mlp-large", sample(seed), None).unwrap_err();
        assert!(
            matches!(err, bolt_serve::ServeError::NoEngine { .. }),
            "got {err:?}"
        );
    }
    let stats = server.shutdown();
    assert_eq!(stats.submitted, 3);
    assert_eq!(stats.rejected_no_engine, 3);
    assert_eq!(stats.completed, 0);
    assert_eq!(
        stats.resolved(),
        0,
        "rejected-at-admission requests never enter the resolution pipeline"
    );

    // Same registry, online tuning on: the submit is admissible and the
    // request completes on the heuristic fallback path.
    let server = online_server(&reg);
    let outcome = server
        .submit("mlp-large", sample(7), None)
        .expect("admitted with online tuning")
        .wait();
    let response = completed(outcome);
    assert!(response.fallback);
    let stats = server.shutdown();
    assert_eq!(stats.rejected_no_engine, 0);
    assert_eq!(stats.completed, 1);
}
