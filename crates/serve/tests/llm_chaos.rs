//! Chaos tests for the continuous batcher (ISSUE 9, satellite d; KV
//! pressure from ISSUE 10): kill the decode worker mid-step and
//! withhold KV blocks mid-decode on seeded schedules, and assert the
//! transactional step protocol and the KV governor hold — every kill is
//! retried, every preempted sequence replays, no token is lost or
//! duplicated, and the streams stay bit-identical to a fault-free
//! sequential run. Decode steps stage all effects (KV rows uncommitted,
//! tokens unappended, clock uncharged) until the full step computes, so
//! a mid-step panic needs no rollback.
//!
//! Run with: `cargo test -p bolt-serve --features chaos`
#![cfg(feature = "chaos")]

use bolt::faults::{self, ChaosConfig, FaultSite};
use bolt::BoltConfig;
use bolt_models::{sample_prompts, PromptLengths};
use bolt_serve::testing::test_arch;
use bolt_serve::{BatchMode, ContinuousBatcher, FinishReason, LlmServeConfig, SequenceRequest};

fn batcher(max_slots: usize) -> ContinuousBatcher {
    ContinuousBatcher::new(
        test_arch(),
        BoltConfig::default(),
        LlmServeConfig {
            max_slots,
            mode: BatchMode::Continuous,
            ..LlmServeConfig::default()
        },
    )
    .expect("tiny-lm batcher")
}

fn submit_all(batcher: &mut ContinuousBatcher, prompts: &[Vec<u32>], max_new: usize) {
    for prompt in prompts {
        batcher
            .submit(SequenceRequest {
                prompt: prompt.clone(),
                max_new_tokens: max_new,
                deadline_us: None,
            })
            .expect("valid request");
    }
}

/// Mid-step worker kills on a seeded schedule: the killed decode
/// attempts are retried and the batched streams still match a
/// fault-free sequential oracle token for token.
#[test]
fn worker_kills_mid_decode_are_retried_without_losing_tokens() {
    let prompts =
        sample_prompts("tiny-lm", 6, PromptLengths::uniform(2, 12), 77).expect("tiny-lm prompts");
    let max_new = 5;

    // Fault-free oracle first: one sequence at a time, no chaos plan.
    let mut oracle = batcher(1);
    let mut expected = Vec::new();
    for prompt in &prompts {
        submit_all(&mut oracle, std::slice::from_ref(prompt), max_new);
        let mut done = oracle.run_to_completion();
        assert_eq!(done.len(), 1);
        expected.push(done.pop().expect("one result").tokens);
    }

    // Now the chaos run: kill the decode worker at WorkerKill
    // occurrences 1, 3, and 6 (zero-based). The occurrence counter
    // advances on every attempt (retries included), so each kill fires
    // once and the retry of that same step survives.
    let guard = faults::install(ChaosConfig {
        worker_kills: vec![1, 3, 6],
        ..ChaosConfig::default()
    });

    let mut chaotic = batcher(4);
    submit_all(&mut chaotic, &prompts, max_new);
    let mut results = chaotic.run_to_completion();
    results.sort_by_key(|r| r.id);
    let stats = chaotic.stats();
    let kills = guard
        .events()
        .iter()
        .filter(|e| e.site == FaultSite::WorkerKill)
        .count();
    drop(guard);
    assert!(kills >= 3, "expected at least 3 kills to fire, saw {kills}");
    assert!(
        stats.step_retries >= 3,
        "each kill must surface as a retried step, saw {}",
        stats.step_retries
    );

    assert_eq!(
        results.len(),
        prompts.len(),
        "exactly one result per sequence"
    );
    for (i, seq) in results.iter().enumerate() {
        assert_eq!(seq.finish, FinishReason::Length);
        assert_eq!(
            seq.tokens.len(),
            max_new,
            "sequence {i} lost or duplicated tokens under chaos"
        );
        assert_eq!(
            seq.tokens, expected[i],
            "sequence {i} diverged from the fault-free oracle"
        );
    }
    assert_eq!(
        stats.generated_tokens,
        (prompts.len() * max_new) as u64,
        "token conservation under chaos"
    );
}

/// Seeded KV memory-pressure episodes mid-decode: the chaos site
/// transiently withholds most of the block pool, the governor preempts
/// live sequences to fit the remainder, and every preempted sequence
/// replays to exactly the stream a fault-free run produces.
#[test]
fn kv_pressure_mid_decode_preempts_and_recovers_bit_identically() {
    // Prompts of 14 cross into a second 16-row block after a few decode
    // steps — exactly when the pressure episodes land.
    let prompts =
        sample_prompts("tiny-lm", 8, PromptLengths::fixed(14), 31).expect("tiny-lm prompts");
    let max_new = 8;

    // Fault-free oracle: one sequence at a time, roomy default budget.
    let mut oracle = batcher(1);
    let mut expected = Vec::new();
    for prompt in &prompts {
        submit_all(&mut oracle, std::slice::from_ref(prompt), max_new);
        let mut done = oracle.run_to_completion();
        assert_eq!(done.len(), 1);
        expected.push(done.pop().expect("one result").tokens);
    }

    // Two pressure episodes (occurrences are per-step polls): one as the
    // first block crossings queue up, one mid-replay. Each withholds
    // 60% of a 12-block budget for 3 steps.
    let guard = faults::install(ChaosConfig {
        kv_pressure_steps: vec![2, 9],
        kv_pressure_fraction: 0.6,
        kv_pressure_duration_steps: 3,
        ..ChaosConfig::default()
    });

    let mut chaotic = ContinuousBatcher::new(
        test_arch(),
        BoltConfig::default(),
        LlmServeConfig {
            max_slots: 8,
            mode: BatchMode::Continuous,
            kv_budget_blocks: Some(12),
            ..LlmServeConfig::default()
        },
    )
    .expect("tiny-lm batcher");
    submit_all(&mut chaotic, &prompts, max_new);
    let mut results = chaotic.run_to_completion();
    results.sort_by_key(|r| r.id);
    let stats = chaotic.stats();
    let episodes = guard
        .events()
        .iter()
        .filter(|e| e.site == FaultSite::KvPressure)
        .count();
    drop(guard);

    assert_eq!(episodes, 2, "both seeded pressure episodes fired");
    assert_eq!(stats.kv_pressure_events, 2);
    assert!(
        stats.preemptions > 0,
        "withholding 60% of the pool must preempt someone"
    );
    assert!(stats.recompute_tokens > 0, "replays recompute KV state");

    assert_eq!(results.len(), prompts.len(), "exactly one result each");
    for (i, seq) in results.iter().enumerate() {
        assert_eq!(seq.finish, FinishReason::Length);
        assert_eq!(
            seq.tokens.len(),
            max_new,
            "sequence {i} lost or duplicated tokens under pressure"
        );
        assert_eq!(
            seq.tokens, expected[i],
            "sequence {i} diverged from the fault-free oracle"
        );
    }
    assert_eq!(
        stats.generated_tokens,
        (prompts.len() * max_new) as u64,
        "token conservation under pressure"
    );
    let gov = chaotic.kv_governor();
    assert_eq!(gov.kv_blocks_in_use, 0, "drained pool");
    assert_eq!(gov.preemptions, stats.preemptions);
    assert!(
        gov.kv_fresh_allocations <= 12,
        "pressure never pushes the arena past its budget"
    );
}
