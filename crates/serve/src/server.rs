//! The serving front-end: admission control, the batcher thread, and the
//! worker pool of simulated GPU streams.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bolt::{ExecutionPlan, StepTimings};
use bolt_tensor::Tensor;

use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::metrics::{LoadGauges, Metrics, MetricsSnapshot};
use crate::online::{Acquired, OnlineEngineManager};
use crate::registry::EngineRegistry;
use crate::request::{
    InferResponse, LatencyBreakdown, Outcome, QueuedRequest, RequestHandle, ResponseSlot,
};
use crate::scheduler::{BatchJob, Scheduler};
use crate::Result;

/// Shared state between the front-end, the batcher, and the workers.
struct Inner {
    registry: Arc<EngineRegistry>,
    config: ServeConfig,
    /// The online tuning & engine-lifecycle manager, when
    /// [`ServeConfig::online`] is set.
    online: Option<OnlineEngineManager>,
    /// Origin of the server's unified µs timeline.
    epoch: Instant,
    metrics: Metrics,
    sched: Mutex<Scheduler>,
    /// Wakes the batcher on submissions and shutdown.
    sched_cv: Condvar,
    next_id: AtomicU64,
}

impl Inner {
    fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }
}

/// A multi-model dynamic-batching inference server over compiled Bolt
/// engines.
///
/// Lifecycle: build an [`EngineRegistry`], register models, call
/// [`BoltServer::start`], submit from any number of threads, then
/// [`BoltServer::shutdown`] to drain gracefully. Dropping the server also
/// drains it.
pub struct BoltServer {
    inner: Arc<Inner>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for BoltServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoltServer")
            .field("models", &self.inner.registry.names())
            .field("config", &self.inner.config)
            .finish()
    }
}

impl BoltServer {
    /// Starts the batcher and `config.workers` stream workers over the
    /// models already registered in `registry` (models may also be
    /// registered while the server runs).
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] when the configuration violates an
    /// invariant the server depends on ([`ServeConfig::validate`]); no
    /// threads are started in that case.
    pub fn start(registry: Arc<EngineRegistry>, config: ServeConfig) -> Result<Self> {
        config.validate()?;
        let online = config
            .online
            .clone()
            .map(|oc| OnlineEngineManager::new(Arc::clone(&registry), oc));
        let inner = Arc::new(Inner {
            registry,
            config,
            online,
            epoch: Instant::now(),
            metrics: Metrics::default(),
            sched: Mutex::new(Scheduler::new()),
            sched_cv: Condvar::new(),
            next_id: AtomicU64::new(0),
        });

        // Bounded hand-off: at most ~one formed batch per worker may wait
        // in the channel. Any further backlog stays in the scheduler
        // queues, where deadline shedding and queue-capacity backpressure
        // still apply (an unbounded channel would hide overload from
        // admission control).
        let (tx, rx) = mpsc::sync_channel::<BatchJob>(inner.config.workers);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..inner.config.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                let rx = Arc::clone(&rx);
                // Supervisor: per-batch panics are isolated inside the
                // loop; one that still escapes (an injected worker kill,
                // a real bug outside batch scope) restarts the loop in
                // place so the stream pool never shrinks. A clean return
                // means the channel closed: drained.
                std::thread::spawn(move || loop {
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        worker_loop(&inner, &rx)
                    })) {
                        Ok(()) => return,
                        Err(_) => inner.metrics.worker_restarted(),
                    }
                })
            })
            .collect();
        let batcher = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || batcher_loop(&inner, &tx))
        };

        Ok(BoltServer {
            inner,
            batcher: Some(batcher),
            workers,
        })
    }

    /// The registry backing this server.
    pub fn registry(&self) -> &Arc<EngineRegistry> {
        &self.inner.registry
    }

    /// The online engine manager, when [`ServeConfig::online`] is set —
    /// e.g. to inspect [`crate::EngineState`]s or wait for the compile
    /// queue to drain in tests.
    pub fn online(&self) -> Option<&OnlineEngineManager> {
        self.inner.online.as_ref()
    }

    /// Submits one single-sample request. `deadline` (defaulting to
    /// [`ServeConfig::default_deadline`]) bounds how long the request may
    /// wait: if it is still queued past the deadline it is shed with
    /// [`Outcome::DeadlineExceeded`] instead of executed late.
    ///
    /// # Errors
    ///
    /// Admission control rejects fast — [`ServeError::UnknownModel`],
    /// [`ServeError::InvalidInput`], [`ServeError::QueueFull`]
    /// (backpressure), [`ServeError::ShuttingDown`] — and every rejection
    /// is counted in the metrics. An `Ok` handle is a guarantee: the
    /// request will resolve to exactly one terminal [`Outcome`].
    pub fn submit(
        &self,
        model: &str,
        inputs: Vec<Tensor>,
        deadline: Option<Duration>,
    ) -> Result<RequestHandle> {
        self.submit_recoverable(model, inputs, deadline)
            .map_err(|(e, _inputs)| e)
    }

    /// Like [`BoltServer::submit`], but a rejection hands the input
    /// tensors back to the caller alongside the error. Inputs are real
    /// (deep-copying) buffers, so a cluster router that wants to re-route
    /// a backpressured request to another replica must get them back
    /// rather than clone per attempt.
    ///
    /// # Errors
    ///
    /// The same admission errors as [`BoltServer::submit`], paired with
    /// the unconsumed inputs.
    pub fn submit_recoverable(
        &self,
        model: &str,
        inputs: Vec<Tensor>,
        deadline: Option<Duration>,
    ) -> std::result::Result<RequestHandle, (ServeError, Vec<Tensor>)> {
        let inner = &*self.inner;
        inner.metrics.submitted();
        let Some(engines) = inner.registry.get(model) else {
            inner.metrics.rejected_unknown_model();
            return Err((ServeError::UnknownModel { name: model.into() }, inputs));
        };
        if let Err(e) = engines.validate_sample(&inputs) {
            inner.metrics.rejected_invalid_input();
            return Err((e, inputs));
        }
        if engines.max_batch() == 0 && inner.online.is_none() {
            // A zero-bucket dynamic model is only servable when an online
            // tuner can create (or fall back past) the missing engines.
            inner.metrics.rejected_no_engine();
            return Err((
                ServeError::NoEngine {
                    model: model.into(),
                    reason: "model has no compiled buckets and online tuning is disabled".into(),
                },
                inputs,
            ));
        }

        let key = Scheduler::key_for(&engines);
        let mut sched = inner.sched.lock().unwrap_or_else(|e| e.into_inner());
        if !sched.accepting {
            inner.metrics.rejected_shutting_down();
            return Err((ServeError::ShuttingDown, inputs));
        }
        if sched.depth(&key) >= inner.config.queue_capacity {
            inner.metrics.rejected_queue_full();
            return Err((
                ServeError::QueueFull {
                    model: model.into(),
                    capacity: inner.config.queue_capacity,
                },
                inputs,
            ));
        }

        let now_us = inner.now_us();
        let deadline_us = deadline
            .or(inner.config.default_deadline)
            .map(|d| now_us + d.as_secs_f64() * 1e6);
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(ResponseSlot::default());
        sched.enqueue(
            key,
            QueuedRequest {
                model: engines,
                inputs,
                submitted_us: now_us,
                deadline_us,
                slot: Arc::clone(&slot),
            },
        );
        inner.metrics.accepted();
        inner.sched_cv.notify_all();
        Ok(RequestHandle { id, slot })
    }

    /// Blocking convenience: submit and wait for the terminal outcome.
    ///
    /// # Errors
    ///
    /// Same admission errors as [`BoltServer::submit`].
    pub fn infer(&self, model: &str, inputs: Vec<Tensor>) -> Result<Outcome> {
        Ok(self.submit(model, inputs, None)?.wait())
    }

    /// Cheap instantaneous load gauges (queue depth, in-flight count,
    /// recent p99) — what a cluster router polls per placement decision,
    /// without paying for the full snapshot's percentile sorts.
    pub fn load(&self) -> LoadGauges {
        self.inner.metrics.gauges()
    }

    /// A point-in-time metrics snapshot (callable while serving).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot(
            self.inner.now_us(),
            self.inner.registry.workspaces(),
            self.inner
                .online
                .as_ref()
                .map(OnlineEngineManager::snapshot),
        )
    }

    /// Graceful drain: stop accepting, flush every queue (partial batches
    /// dispatch immediately), wait for all in-flight batches, stop the
    /// threads, and return the final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.drain();
        self.metrics()
    }

    /// Abrupt stop (a killed cluster replica): stop accepting and resolve
    /// everything still queued as [`Outcome::Rejected`] instead of
    /// executing it. Batches already on a stream still finish — the
    /// exactly-once guarantee holds: every accepted request resolves,
    /// just mostly as rejections.
    pub fn abort(mut self) -> MetricsSnapshot {
        {
            let mut sched = self.inner.sched.lock().unwrap_or_else(|e| e.into_inner());
            sched.aborting = true;
            self.inner.sched_cv.notify_all();
        }
        self.drain();
        self.metrics()
    }

    fn drain(&mut self) {
        if self.batcher.is_none() {
            return;
        }
        {
            let mut sched = self.inner.sched.lock().unwrap_or_else(|e| e.into_inner());
            sched.accepting = false;
            self.inner.sched_cv.notify_all();
        }
        if let Some(handle) = self.batcher.take() {
            let _ = handle.join();
        }
        // The batcher dropped its sender on exit; workers drain the
        // channel and stop.
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for BoltServer {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Idle re-check interval: bounds how stale the batcher's view can get
/// even if a wakeup is missed.
const IDLE_TICK: Duration = Duration::from_millis(20);

fn batcher_loop(inner: &Inner, tx: &mpsc::SyncSender<BatchJob>) {
    let timeout_us = inner.config.batch_timeout.as_secs_f64() * 1e6;
    let mut sched = inner.sched.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        let now_us = inner.now_us();
        let flush = !sched.accepting;
        let result = sched.form(
            now_us,
            inner.config.max_batch,
            timeout_us,
            flush,
            inner.online.is_some(),
        );
        let idle = result.jobs.is_empty() && result.shed.is_empty();
        if flush && idle && sched.pending() == 0 {
            return; // drained; dropping `tx` stops the workers
        }
        if !idle {
            let abort = sched.aborting;
            // Resolve/dispatch outside the lock so submitters keep moving.
            drop(sched);
            inner
                .metrics
                .dequeued(result.jobs.iter().map(|j| j.requests.len()).sum());
            for request in result.shed {
                inner.metrics.deadline_shed();
                request.slot.resolve(Outcome::DeadlineExceeded {
                    waited_us: now_us - request.submitted_us,
                });
            }
            for job in result.jobs {
                if abort {
                    // Abort drain: terminate queued work fast instead of
                    // executing it. Exactly-once still holds — each
                    // request resolves, as a rejection.
                    for request in job.requests {
                        inner.metrics.rejected_execution();
                        request.slot.try_resolve(Outcome::Rejected {
                            reason: "server aborted".into(),
                        });
                    }
                    continue;
                }
                if let Err(mpsc::SendError(job)) = tx.send(job) {
                    // The worker pool is gone (every receiver dropped).
                    // Admission promised a terminal outcome: reject each
                    // request rather than silently dropping the batch.
                    for request in job.requests {
                        inner.metrics.rejected_execution();
                        request.slot.try_resolve(Outcome::Rejected {
                            reason: "worker pool unavailable".into(),
                        });
                    }
                }
            }
            sched = inner.sched.lock().unwrap_or_else(|e| e.into_inner());
            continue; // re-form: new work may have queued meanwhile
        }
        let wait = result
            .next_wake_us
            .map(|wake| Duration::from_secs_f64(((wake - now_us).max(1.0)) / 1e6))
            .unwrap_or(IDLE_TICK)
            .min(IDLE_TICK);
        let (guard, _) = inner
            .sched_cv
            .wait_timeout(sched, wait)
            .unwrap_or_else(|e| e.into_inner());
        sched = guard;
    }
}

/// One memoized simulator pricing of an engine. The map key is the
/// engine's `Arc` address; holding the `Arc` here pins that address so
/// it cannot be recycled by a later allocation while the entry lives.
struct PricedEngine {
    engine: Arc<ExecutionPlan>,
    total_us: f64,
    timings: StepTimings,
}

/// Per-worker price-cache bound: far above any realistic live engine
/// count, but keeps a hot-swapping online server from growing the map
/// without limit.
const PRICE_CACHE_CAP: usize = 64;

fn worker_loop(inner: &Inner, rx: &Mutex<mpsc::Receiver<BatchJob>>) {
    // This worker's simulated stream: absolute µs (server timeline) until
    // which the stream is busy. Batches dispatched to the same stream
    // queue behind each other, exactly like kernels on a CUDA stream.
    // (Reset on a supervisor restart: a crashed stream loses its backlog.)
    let mut busy_until_us = 0.0f64;
    // Simulator pricing is a pure function of the engine, so each worker
    // prices an engine once and reuses the result — at high offered load
    // the per-batch pricing walk would otherwise dominate real CPU time.
    let mut price_cache: HashMap<usize, PricedEngine> = HashMap::new();
    loop {
        // Chaos: a worker thread may die *between* batches — it holds no
        // job here, so nothing is lost; the supervisor respawns it.
        bolt::faults::panic_if_scheduled(bolt::faults::FaultSite::WorkerKill);
        let job = {
            let receiver = rx.lock().unwrap_or_else(|e| e.into_inner());
            receiver.recv()
        };
        match job {
            Ok(mut job) => {
                // Panic isolation per batch: a panicking kernel (or an
                // injected fault) rejects the batch's own requests and
                // nothing else. `execute_batch` drains requests from the
                // job as it resolves them, so whatever remains after a
                // panic is exactly the unresolved set.
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    execute_batch(inner, &mut job, &mut busy_until_us, &mut price_cache)
                }));
                if let Err(payload) = run {
                    inner.metrics.worker_panic();
                    let reason = ServeError::Panicked {
                        component: "batch execution".into(),
                        message: crate::panic_message(&payload),
                    }
                    .to_string();
                    for request in job.requests.drain(..) {
                        if request.slot.try_resolve(Outcome::Rejected {
                            reason: reason.clone(),
                        }) {
                            inner.metrics.rejected_execution();
                        }
                    }
                }
            }
            Err(_) => return, // channel closed: server drained
        }
    }
}

fn execute_batch(
    inner: &Inner,
    job: &mut BatchJob,
    busy_until_us: &mut f64,
    price_cache: &mut HashMap<usize, PricedEngine>,
) {
    // Deadline enforcement at dequeue time: formation-time shedding
    // cannot see time spent *after* the batch formed — waiting in the
    // hand-off channel behind a slow batch. A request whose deadline has
    // passed by now is shed, not executed late.
    let dequeue_us = inner.now_us();
    job.requests.retain_mut(|request| {
        let expired = request
            .deadline_us
            .is_some_and(|deadline| dequeue_us > deadline);
        if expired {
            inner.metrics.deadline_shed_dequeue();
            request.slot.resolve(Outcome::DeadlineExceeded {
                waited_us: dequeue_us - request.submitted_us,
            });
        }
        !expired
    });
    let batch = job.requests.len();
    if batch == 0 {
        return;
    }
    // Place the batch: through the online manager (fallback + background
    // tune) when configured, else directly on the precompiled buckets.
    let placed = match &inner.online {
        Some(manager) => manager.acquire(&job.model, batch),
        None => job
            .model
            .placement_for(batch)
            .map(|p| Acquired {
                bucket: p.bucket,
                engine: p.engine,
                launches: p.launches,
                fallback: false,
                degraded: false,
            })
            .ok_or_else(|| ServeError::NoEngine {
                model: job.model.name().to_string(),
                reason: "model has no compiled buckets".into(),
            }),
    };
    let placed = match placed {
        Ok(placed) => placed,
        Err(e) => {
            // Admission guarantees a terminal outcome; an unplaceable
            // batch (e.g. the heuristic fallback compile failed) rejects
            // every request in it.
            let reason = e.to_string();
            for request in job.requests.drain(..) {
                inner.metrics.rejected_execution();
                request.slot.resolve(Outcome::Rejected {
                    reason: reason.clone(),
                });
            }
            return;
        }
    };
    if placed.launches > 1 {
        inner.metrics.batch_overflow();
    }

    // Chaos: a slow batch (stalls this stream, so later batches queue
    // behind it and may hit their deadlines at dequeue), then a mid-batch
    // panic (isolated by the worker's per-batch catch_unwind above).
    bolt::faults::stall(bolt::faults::FaultSite::BatchStall);
    bolt::faults::panic_if_scheduled(bolt::faults::FaultSite::BatchPanic);

    // Price the bucket's kernel timeline on the simulator; the real batch
    // of `batch` requests rides the bucket-sized launch (repeated when
    // the batch was split). The step observer attributes the batch's
    // latency per kernel, once per launch — with each launch's compute
    // scaled by its occupancy, so the zero-padded tail rows of a partial
    // final launch are not priced as real per-kernel work. Pricing is a
    // pure function of the engine, so it is memoized per worker.
    let key = Arc::as_ptr(&placed.engine) as usize;
    if price_cache.len() >= PRICE_CACHE_CAP && !price_cache.contains_key(&key) {
        price_cache.clear();
    }
    let priced = price_cache.entry(key).or_insert_with(|| {
        let mut timings = StepTimings::default();
        let report = placed.engine.time_observed(&mut timings);
        PricedEngine {
            engine: Arc::clone(&placed.engine),
            total_us: report.total_us,
            timings,
        }
    });
    debug_assert!(Arc::ptr_eq(&priced.engine, &placed.engine));
    let kernel_us = priced.total_us * placed.launches as f64;
    let images_per_sec = if kernel_us > 0.0 {
        batch as f64 * 1e6 / kernel_us
    } else {
        0.0
    };
    inner.metrics.batch(batch, images_per_sec);
    let bucket = placed.bucket.max(1);
    let plan_flops = placed.engine.flops();
    for launch in 0..placed.launches {
        let rows = (batch - launch * bucket).min(bucket);
        inner
            .metrics
            .launch_flops(plan_flops * rows as f64 / bucket as f64, plan_flops);
        inner
            .metrics
            .kernel_times(&priced.timings.scaled_occupancy(rows, bucket));
    }

    // Really compute the batch when the model allows it, bucket-sized
    // chunks per launch.
    let mut failure: Option<String> = None;
    let mut outputs: Option<Vec<Vec<Tensor>>> = None;
    if inner.config.functional && job.model.functional() {
        let samples: Vec<Vec<Tensor>> = job.requests.iter().map(|r| r.inputs.clone()).collect();
        let mut per_sample = Vec::with_capacity(batch);
        for chunk in samples.chunks(placed.bucket.max(1)) {
            match placed.engine.run_batched(chunk) {
                Ok(outs) => per_sample.extend(outs),
                Err(e) => {
                    failure = Some(e.to_string());
                    break;
                }
            }
        }
        if failure.is_none() {
            outputs = Some(per_sample);
        }
    }

    // Advance this stream's simulated timeline and settle per-request
    // latency: queue wait (real) + stream backlog + batch kernel time
    // (simulated).
    let now_us = inner.now_us();
    let start_us = now_us.max(*busy_until_us);
    let done_us = start_us + kernel_us;
    *busy_until_us = done_us;

    for (index, request) in job.requests.drain(..).enumerate() {
        match &failure {
            Some(reason) => {
                inner.metrics.rejected_execution();
                request.slot.resolve(Outcome::Rejected {
                    reason: reason.clone(),
                });
            }
            None => {
                let latency = LatencyBreakdown {
                    queue_us: start_us - request.submitted_us,
                    kernel_us,
                    total_us: done_us - request.submitted_us,
                };
                inner.metrics.completed(latency.total_us);
                if placed.degraded {
                    inner.metrics.degraded();
                }
                request.slot.resolve(Outcome::Completed(InferResponse {
                    model: job.model.name().to_string(),
                    outputs: outputs.as_mut().map(|o| std::mem::take(&mut o[index])),
                    batch_size: batch,
                    bucket: placed.bucket,
                    launches: placed.launches,
                    fallback: placed.fallback,
                    degraded: placed.degraded,
                    latency,
                }));
            }
        }
    }
}
