//! Server configuration: batching policy, admission control, worker pool.

use std::time::Duration;

use crate::error::ServeError;
use crate::online::OnlineConfig;

/// Tunables for a [`crate::BoltServer`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Number of worker threads, each modelling one GPU stream: batches
    /// dispatched to the same worker serialize on its simulated timeline.
    pub workers: usize,
    /// Largest batch the scheduler forms. A queue is drained as soon as
    /// this many requests are waiting.
    pub max_batch: usize,
    /// How long a partial batch may wait for company before it is
    /// dispatched anyway — the classic dynamic-batching knob trading
    /// per-request latency for batch efficiency.
    pub batch_timeout: Duration,
    /// Bounded per-(model, shape) queue depth. A submit against a full
    /// queue fails fast with [`crate::ServeError::QueueFull`]
    /// (backpressure) instead of growing latency without bound.
    pub queue_capacity: usize,
    /// Deadline applied to requests that do not carry their own. Requests
    /// still queued past their deadline are shed at batch-formation time
    /// ([`crate::Outcome::DeadlineExceeded`]) rather than executed late.
    pub default_deadline: Option<Duration>,
    /// Execute batches functionally (`CompiledModel::run_batched`) when
    /// the model's parameters are materialized. Timing-only models (the
    /// shapes-only zoo CNNs) are always priced on the simulator only.
    pub functional: bool,
    /// Batch-bucket sizes to compile engines for. `None` selects powers
    /// of two up to [`ServeConfig::max_batch`] (always including
    /// `max_batch` itself); a formed batch runs on the smallest bucket
    /// that fits, padded by replicating the last sample.
    pub batch_buckets: Option<Vec<usize>>,
    /// Enables online tuning: unseen batch shapes are served on a
    /// fallback path while a background tuner compiles, hot-swaps, and
    /// (under a memory budget) evicts engines. `None` serves only
    /// precompiled buckets.
    pub online: Option<OnlineConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            max_batch: 8,
            batch_timeout: Duration::from_millis(2),
            queue_capacity: 256,
            default_deadline: None,
            functional: true,
            batch_buckets: None,
            online: None,
        }
    }
}

impl ServeConfig {
    /// Checks the configuration invariants the server depends on. Called
    /// by [`crate::BoltServer::start`]; a violation is a typed
    /// [`ServeError::Config`] instead of a panic (or a silent hang) once
    /// the threads are running.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] when `workers == 0` (no streams to execute
    /// on), `max_batch == 0` (no batch can ever form), `queue_capacity
    /// == 0` (every submit would be backpressured), or `batch_timeout`
    /// is zero with no `default_deadline` (partial batches would flush
    /// in a hot loop with no deadline ever shedding queued work).
    pub fn validate(&self) -> std::result::Result<(), ServeError> {
        let reason = if self.workers == 0 {
            "workers must be >= 1 (each worker is one simulated GPU stream)"
        } else if self.max_batch == 0 {
            "max_batch must be >= 1 (no batch can ever form)"
        } else if self.queue_capacity == 0 {
            "queue_capacity must be >= 1 (every submit would be rejected QueueFull)"
        } else if self.batch_timeout.is_zero() && self.default_deadline.is_none() {
            "batch_timeout of zero requires a default_deadline \
             (otherwise nothing bounds a request's wait)"
        } else {
            return Ok(());
        };
        Err(ServeError::Config {
            reason: reason.to_string(),
        })
    }

    /// The bucket sizes engines are compiled for: the explicit
    /// [`ServeConfig::batch_buckets`] (sorted, deduplicated), or powers
    /// of two `1, 2, 4, …` up to and including [`ServeConfig::max_batch`].
    pub fn buckets(&self) -> Vec<usize> {
        let mut buckets = match &self.batch_buckets {
            Some(b) => b.clone(),
            None => {
                let mut b = Vec::new();
                let mut size = 1usize;
                while size < self.max_batch {
                    b.push(size);
                    size *= 2;
                }
                b.push(self.max_batch);
                b
            }
        };
        buckets.retain(|&b| b > 0);
        buckets.sort_unstable();
        buckets.dedup();
        buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_buckets_are_powers_of_two_up_to_max_batch() {
        let c = ServeConfig::default();
        assert_eq!(c.buckets(), vec![1, 2, 4, 8]);
        let odd = ServeConfig {
            max_batch: 6,
            ..Default::default()
        };
        assert_eq!(odd.buckets(), vec![1, 2, 4, 6]);
    }

    #[test]
    fn explicit_buckets_are_normalized() {
        let c = ServeConfig {
            batch_buckets: Some(vec![4, 1, 4, 0]),
            ..Default::default()
        };
        assert_eq!(c.buckets(), vec![1, 4]);
    }
}
