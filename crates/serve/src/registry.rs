//! The engine registry: compiles each registered model once per batch
//! bucket and shares the immutable engines across server threads.
//!
//! All buckets of all models are compiled through one [`BoltCompiler`],
//! so the profiler's workload cache (and the PR-1 on-disk autotune cache,
//! when `BoltConfig::cache_path` is set) is shared: a GEMM tuned for the
//! batch-8 bucket is not re-tuned for batch-8 of another model, and a
//! warm cache makes registration measure nothing.

use std::collections::HashMap;
use std::sync::Arc;

use bolt::{BoltCompiler, BoltConfig, ExecutionPlan};
use bolt_gpu_sim::GpuArch;
use bolt_graph::{Graph, OpKind};
use bolt_models::try_model_by_name;
use bolt_tensor::Tensor;
use parking_lot::RwLock;

use crate::error::ServeError;
use crate::Result;

/// The compiled engines backing one served model: one immutable
/// [`ExecutionPlan`] per batch bucket — constants already prepacked into
/// kernel-native layouts, buffer slots planned, so workers pay no
/// per-request compile-time work.
#[derive(Debug)]
pub struct ModelEngines {
    name: String,
    /// Logical (NCHW for rank 4) dims of one sample's inputs, batch 1.
    sample_dims: Vec<Vec<usize>>,
    /// `(bucket_size, engine)`, ascending by bucket size.
    buckets: Vec<(usize, Arc<ExecutionPlan>)>,
    /// True when every graph constant carries data, so batches can be
    /// executed functionally, not only priced.
    functional: bool,
}

impl ModelEngines {
    /// Registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True when the model executes functionally (materialized params).
    pub fn functional(&self) -> bool {
        self.functional
    }

    /// The compiled bucket sizes, ascending.
    pub fn bucket_sizes(&self) -> Vec<usize> {
        self.buckets.iter().map(|(b, _)| *b).collect()
    }

    /// The largest compiled bucket — the model's effective max batch.
    pub fn max_batch(&self) -> usize {
        self.buckets.last().map(|(b, _)| *b).unwrap_or(0)
    }

    /// Logical per-sample input shapes (batch dimension 1).
    pub fn sample_dims(&self) -> &[Vec<usize>] {
        &self.sample_dims
    }

    /// The engine a batch of `batch` samples runs on: the smallest bucket
    /// that fits (the batch is padded up to it), or the largest bucket
    /// when `batch` exceeds every bucket (callers cap batches at
    /// [`ModelEngines::max_batch`], so that branch is defensive).
    pub fn engine_for(&self, batch: usize) -> (usize, Arc<ExecutionPlan>) {
        for (size, engine) in &self.buckets {
            if *size >= batch {
                return (*size, Arc::clone(engine));
            }
        }
        let (size, engine) = self
            .buckets
            .last()
            .expect("ModelEngines always has at least one bucket");
        (*size, Arc::clone(engine))
    }

    /// Peak intermediate memory a worker needs for this model: the
    /// largest bucket's planned workspace
    /// ([`ExecutionPlan::workspace_bytes`]).
    pub fn workspace_bytes(&self) -> u64 {
        self.buckets
            .iter()
            .map(|(_, engine)| engine.workspace_bytes())
            .max()
            .unwrap_or(0)
    }

    /// Checks one request's inputs against the sample signature.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidInput`] naming expected vs. got.
    pub fn validate_sample(&self, inputs: &[Tensor]) -> Result<()> {
        if inputs.len() != self.sample_dims.len() {
            return Err(ServeError::InvalidInput {
                model: self.name.clone(),
                reason: format!(
                    "expected {} inputs, got {}",
                    self.sample_dims.len(),
                    inputs.len()
                ),
            });
        }
        for (i, (tensor, want)) in inputs.iter().zip(&self.sample_dims).enumerate() {
            let got = logical_dims(tensor);
            if &got != want {
                return Err(ServeError::InvalidInput {
                    model: self.name.clone(),
                    reason: format!("input {i}: expected shape {want:?}, got {got:?}"),
                });
            }
        }
        Ok(())
    }
}

/// The tensor's dims in the graph's logical convention (NCHW for rank-4
/// activations regardless of storage layout).
fn logical_dims(tensor: &Tensor) -> Vec<usize> {
    if tensor.shape().rank() == 4 {
        let (n, c, h, w) = tensor.dims4();
        vec![n, c, h, w]
    } else {
        tensor.shape().dims().to_vec()
    }
}

/// Compiles and stores engines for every served model.
#[derive(Debug)]
pub struct EngineRegistry {
    compiler: BoltCompiler,
    models: RwLock<HashMap<String, Arc<ModelEngines>>>,
}

impl EngineRegistry {
    /// Creates a registry compiling for `arch` with `config` (set
    /// `config.cache_path` to make registration warm across processes).
    pub fn new(arch: GpuArch, config: BoltConfig) -> Self {
        EngineRegistry {
            compiler: BoltCompiler::new(arch, config),
            models: RwLock::new(HashMap::new()),
        }
    }

    /// The shared compiler (e.g. to inspect profiler statistics).
    pub fn compiler(&self) -> &BoltCompiler {
        &self.compiler
    }

    /// Registers a `bolt-models` zoo model by name, compiling one engine
    /// per bucket size. Re-registering a name replaces its engines.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] for a name the zoo does not know,
    /// [`ServeError::InvalidInput`] for an empty bucket list, or
    /// [`ServeError::Compile`] when a bucket fails to compile.
    pub fn register_zoo(&self, name: &str, buckets: &[usize]) -> Result<Arc<ModelEngines>> {
        if try_model_by_name(name, 1).is_none() {
            return Err(ServeError::UnknownModel { name: name.into() });
        }
        self.register_with(name, buckets, |batch| {
            try_model_by_name(name, batch)
                .expect("existence checked above; zoo lookup is batch-independent")
                .graph
        })
    }

    /// Registers a model from a graph-builder callback (`batch` →
    /// inference graph at that batch size), compiling one engine per
    /// bucket. This is the hook for models outside the zoo.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidInput`] for an empty bucket list, or
    /// [`ServeError::Compile`] when a bucket fails to compile.
    pub fn register_with(
        &self,
        name: &str,
        buckets: &[usize],
        build: impl Fn(usize) -> Graph,
    ) -> Result<Arc<ModelEngines>> {
        let mut sizes: Vec<usize> = buckets.iter().copied().filter(|&b| b > 0).collect();
        sizes.sort_unstable();
        sizes.dedup();
        if sizes.is_empty() {
            return Err(ServeError::InvalidInput {
                model: name.into(),
                reason: "at least one positive batch bucket is required".into(),
            });
        }

        let probe = build(1);
        let sample_dims: Vec<Vec<usize>> = probe
            .input_ids()
            .iter()
            .map(|&id| probe.node(id).shape.dims().to_vec())
            .collect();
        let functional = probe
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, OpKind::Constant { .. }))
            .all(|n| probe.param(n.id).is_some());

        let mut compiled = Vec::with_capacity(sizes.len());
        for &bucket in &sizes {
            let model = self.compiler.compile(&build(bucket))?;
            compiled.push((bucket, Arc::clone(model.plan())));
        }

        let engines = Arc::new(ModelEngines {
            name: name.to_string(),
            sample_dims,
            buckets: compiled,
            functional,
        });
        self.models
            .write()
            .insert(name.to_string(), Arc::clone(&engines));
        Ok(engines)
    }

    /// Looks a registered model up by name.
    pub fn get(&self, name: &str) -> Option<Arc<ModelEngines>> {
        self.models.read().get(name).cloned()
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.models.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// `(model, workspace_bytes)` per registered model, sorted by name —
    /// the peak intermediate memory each model's largest bucket plans.
    pub fn workspaces(&self) -> Vec<(String, u64)> {
        let mut ws: Vec<(String, u64)> = self
            .models
            .read()
            .iter()
            .map(|(name, engines)| (name.clone(), engines.workspace_bytes()))
            .collect();
        ws.sort();
        ws
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_tensor::DType;

    fn registry() -> EngineRegistry {
        EngineRegistry::new(GpuArch::tesla_t4(), BoltConfig::default())
    }

    #[test]
    fn zoo_registration_compiles_every_bucket() {
        let reg = registry();
        let engines = reg.register_zoo("mlp-small", &[1, 2, 4]).expect("register");
        assert_eq!(engines.bucket_sizes(), vec![1, 2, 4]);
        assert_eq!(engines.max_batch(), 4);
        assert!(engines.functional(), "serving MLPs materialize params");
        assert_eq!(engines.sample_dims(), &[vec![1, 128]]);
        assert_eq!(reg.names(), vec!["mlp-small".to_string()]);
    }

    #[test]
    fn unknown_zoo_model_is_a_typed_error() {
        let err = registry().register_zoo("alexnet", &[1]).unwrap_err();
        assert!(matches!(err, ServeError::UnknownModel { .. }));
        assert!(registry().get("alexnet").is_none());
    }

    #[test]
    fn empty_buckets_are_rejected() {
        let err = registry().register_zoo("mlp-small", &[0]).unwrap_err();
        assert!(matches!(err, ServeError::InvalidInput { .. }));
    }

    #[test]
    fn engine_for_picks_smallest_fitting_bucket() {
        let reg = registry();
        let engines = reg.register_zoo("mlp-small", &[1, 4, 8]).expect("register");
        assert_eq!(engines.engine_for(1).0, 1);
        assert_eq!(engines.engine_for(3).0, 4);
        assert_eq!(engines.engine_for(8).0, 8);
        // Oversized batches clamp to the largest bucket (defensive).
        assert_eq!(engines.engine_for(64).0, 8);
    }

    #[test]
    fn validate_sample_names_expected_vs_got() {
        let reg = registry();
        let engines = reg.register_zoo("mlp-small", &[1]).expect("register");
        let ok = Tensor::randn(&[1, 128], DType::F16, 1);
        assert!(engines.validate_sample(std::slice::from_ref(&ok)).is_ok());
        let bad = Tensor::randn(&[1, 64], DType::F16, 1);
        let err = engines.validate_sample(&[bad]).unwrap_err();
        match err {
            ServeError::InvalidInput { reason, .. } => {
                assert!(reason.contains("128") && reason.contains("64"), "{reason}");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(engines.validate_sample(&[]).is_err());
    }
}
