//! The engine registry: compiles each registered model once per batch
//! bucket and shares the immutable engines across server threads.
//!
//! All buckets of all models are compiled through one [`BoltCompiler`],
//! so the profiler's workload cache (and the PR-1 on-disk autotune cache,
//! when `BoltConfig::cache_path` is set) is shared: a GEMM tuned for the
//! batch-8 bucket is not re-tuned for batch-8 of another model, and a
//! warm cache makes registration measure nothing.
//!
//! The registry also keeps each model's graph **builder** (`batch` →
//! graph), which is what lets the online engine manager compile new
//! buckets after registration and hot-swap them in: a swap replaces the
//! whole `Arc<ModelEngines>` under the write lock, so lookups always see
//! a fully-built value — never a half-updated bucket list.

use std::collections::HashMap;
use std::sync::Arc;

use bolt::runtime::TuningSummary;
use bolt::{BoltCompiler, BoltConfig, ExecutionPlan};
use bolt_gpu_sim::GpuArch;
use bolt_graph::{Graph, OpKind};
use bolt_models::try_model_by_name;
use bolt_tensor::Tensor;
use parking_lot::RwLock;

use crate::error::ServeError;
use crate::Result;

/// A stored graph builder: `batch` → inference graph at that batch size.
pub type GraphBuilder = Arc<dyn Fn(usize) -> Graph + Send + Sync>;

/// Where a batch runs: which bucket, on which engine, in how many
/// launches. Produced by [`ModelEngines::placement_for`].
#[derive(Debug, Clone)]
pub struct Placement {
    /// The chosen bucket size.
    pub bucket: usize,
    /// The engine compiled for that bucket.
    pub engine: Arc<ExecutionPlan>,
    /// How many back-to-back launches serve the batch. `1` when the
    /// bucket fits the whole batch (padded up); more when the batch
    /// overflows every compiled bucket and is explicitly split across
    /// repeated launches of the largest one.
    pub launches: usize,
}

/// The compiled engines backing one served model: one immutable
/// [`ExecutionPlan`] per batch bucket — constants already prepacked into
/// kernel-native layouts, buffer slots planned, so workers pay no
/// per-request compile-time work.
///
/// A dynamically-registered model may start with **zero** buckets; the
/// online engine manager fills them in as traffic arrives.
#[derive(Debug)]
pub struct ModelEngines {
    name: String,
    /// Logical (NCHW for rank 4) dims of one sample's inputs, batch 1.
    sample_dims: Vec<Vec<usize>>,
    /// `(bucket_size, engine)`, ascending by bucket size.
    buckets: Vec<(usize, Arc<ExecutionPlan>)>,
    /// True when every graph constant carries data, so batches can be
    /// executed functionally, not only priced.
    functional: bool,
}

impl ModelEngines {
    /// Registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True when the model executes functionally (materialized params).
    pub fn functional(&self) -> bool {
        self.functional
    }

    /// The compiled bucket sizes, ascending.
    pub fn bucket_sizes(&self) -> Vec<usize> {
        self.buckets.iter().map(|(b, _)| *b).collect()
    }

    /// The largest compiled bucket — the model's effective max batch.
    /// Zero for a dynamic model whose first bucket has not compiled yet.
    pub fn max_batch(&self) -> usize {
        self.buckets.last().map(|(b, _)| *b).unwrap_or(0)
    }

    /// Whether an engine exists for exactly this bucket size.
    pub fn has_bucket(&self, bucket: usize) -> bool {
        self.buckets.iter().any(|(b, _)| *b == bucket)
    }

    /// Logical per-sample input shapes (batch dimension 1).
    pub fn sample_dims(&self) -> &[Vec<usize>] {
        &self.sample_dims
    }

    /// The engine a batch of `batch` samples runs on in a single launch:
    /// the smallest bucket that fits (the batch is padded up to it).
    /// `None` when the batch exceeds every compiled bucket or no bucket
    /// exists yet — callers that can split use
    /// [`ModelEngines::placement_for`] instead.
    pub fn engine_for(&self, batch: usize) -> Option<(usize, Arc<ExecutionPlan>)> {
        self.buckets
            .iter()
            .find(|(size, _)| *size >= batch)
            .map(|(size, engine)| (*size, Arc::clone(engine)))
    }

    /// Places a batch on an engine, splitting explicitly on overflow.
    ///
    /// A batch that fits some bucket runs in one launch on the smallest
    /// fitting bucket. A batch larger than every bucket is split into
    /// `ceil(batch / largest)` launches of the largest bucket — reported
    /// in [`Placement::launches`] so callers can count the overflow
    /// instead of silently under-pricing it. `None` only when the model
    /// has no compiled buckets at all.
    pub fn placement_for(&self, batch: usize) -> Option<Placement> {
        if let Some((bucket, engine)) = self.engine_for(batch) {
            return Some(Placement {
                bucket,
                engine,
                launches: 1,
            });
        }
        self.buckets.last().map(|(bucket, engine)| Placement {
            bucket: *bucket,
            engine: Arc::clone(engine),
            launches: batch.div_ceil(*bucket),
        })
    }

    /// Peak intermediate memory a worker needs for this model: the
    /// largest bucket's planned workspace
    /// ([`ExecutionPlan::workspace_bytes`]).
    pub fn workspace_bytes(&self) -> u64 {
        self.buckets
            .iter()
            .map(|(_, engine)| engine.workspace_bytes())
            .max()
            .unwrap_or(0)
    }

    /// Memory the model's engines keep resident: the sum of every
    /// bucket's [`ExecutionPlan::resident_bytes`].
    pub fn resident_bytes(&self) -> u64 {
        self.buckets
            .iter()
            .map(|(_, engine)| engine.resident_bytes())
            .sum()
    }

    /// Checks one request's inputs against the sample signature.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidInput`] naming expected vs. got.
    pub fn validate_sample(&self, inputs: &[Tensor]) -> Result<()> {
        if inputs.len() != self.sample_dims.len() {
            return Err(ServeError::InvalidInput {
                model: self.name.clone(),
                reason: format!(
                    "expected {} inputs, got {}",
                    self.sample_dims.len(),
                    inputs.len()
                ),
            });
        }
        for (i, (tensor, want)) in inputs.iter().zip(&self.sample_dims).enumerate() {
            let got = logical_dims(tensor);
            if &got != want {
                return Err(ServeError::InvalidInput {
                    model: self.name.clone(),
                    reason: format!("input {i}: expected shape {want:?}, got {got:?}"),
                });
            }
        }
        Ok(())
    }

    /// A copy of this value with `engine` present at `bucket` (replacing
    /// any engine already there), bucket order maintained.
    fn with_bucket(&self, bucket: usize, engine: Arc<ExecutionPlan>) -> ModelEngines {
        let mut buckets: Vec<(usize, Arc<ExecutionPlan>)> = self
            .buckets
            .iter()
            .filter(|(b, _)| *b != bucket)
            .cloned()
            .collect();
        buckets.push((bucket, engine));
        buckets.sort_by_key(|(b, _)| *b);
        ModelEngines {
            name: self.name.clone(),
            sample_dims: self.sample_dims.clone(),
            buckets,
            functional: self.functional,
        }
    }

    /// A copy of this value without `bucket`.
    fn without_bucket(&self, bucket: usize) -> ModelEngines {
        ModelEngines {
            name: self.name.clone(),
            sample_dims: self.sample_dims.clone(),
            buckets: self
                .buckets
                .iter()
                .filter(|(b, _)| *b != bucket)
                .cloned()
                .collect(),
            functional: self.functional,
        }
    }
}

/// The tensor's dims in the graph's logical convention (NCHW for rank-4
/// activations regardless of storage layout).
fn logical_dims(tensor: &Tensor) -> Vec<usize> {
    if tensor.shape().rank() == 4 {
        let (n, c, h, w) = tensor.dims4();
        vec![n, c, h, w]
    } else {
        tensor.shape().dims().to_vec()
    }
}

/// Compiles and stores engines for every served model.
pub struct EngineRegistry {
    compiler: BoltCompiler,
    models: RwLock<HashMap<String, Arc<ModelEngines>>>,
    /// Graph builders by model name, kept so new buckets can be compiled
    /// after registration (online tuning, hot-swap).
    builders: RwLock<HashMap<String, GraphBuilder>>,
}

impl std::fmt::Debug for EngineRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineRegistry")
            .field("compiler", &self.compiler)
            .field("models", &self.models)
            .finish_non_exhaustive()
    }
}

impl EngineRegistry {
    /// Creates a registry compiling for `arch` with `config` (set
    /// `config.cache_path` to make registration warm across processes).
    pub fn new(arch: GpuArch, config: BoltConfig) -> Self {
        EngineRegistry {
            compiler: BoltCompiler::new(arch, config),
            models: RwLock::new(HashMap::new()),
            builders: RwLock::new(HashMap::new()),
        }
    }

    /// The shared compiler (e.g. to inspect profiler statistics).
    pub fn compiler(&self) -> &BoltCompiler {
        &self.compiler
    }

    /// The architecture every engine in this registry is compiled for.
    pub fn arch(&self) -> &GpuArch {
        self.compiler.arch()
    }

    /// Registers a `bolt-models` zoo model by name, compiling one engine
    /// per bucket size. Re-registering a name replaces its engines.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] for a name the zoo does not know,
    /// [`ServeError::InvalidInput`] for an empty bucket list, or
    /// [`ServeError::Compile`] when a bucket fails to compile.
    pub fn register_zoo(&self, name: &str, buckets: &[usize]) -> Result<Arc<ModelEngines>> {
        if try_model_by_name(name, 1).is_none() {
            return Err(ServeError::UnknownModel { name: name.into() });
        }
        let owned = name.to_string();
        self.register_with(name, buckets, move |batch| {
            try_model_by_name(&owned, batch)
                .expect("existence checked above; zoo lookup is batch-independent")
                .graph
        })
    }

    /// Registers a `bolt-models` zoo model with **no precompiled
    /// buckets**: engines are compiled on demand by the online engine
    /// manager as unseen batch shapes arrive.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] for a name the zoo does not know.
    pub fn register_zoo_dynamic(&self, name: &str) -> Result<Arc<ModelEngines>> {
        if try_model_by_name(name, 1).is_none() {
            return Err(ServeError::UnknownModel { name: name.into() });
        }
        let owned = name.to_string();
        self.register_dynamic(name, move |batch| {
            try_model_by_name(&owned, batch)
                .expect("existence checked above; zoo lookup is batch-independent")
                .graph
        })
    }

    /// Registers a model from a graph-builder callback (`batch` →
    /// inference graph at that batch size), compiling one engine per
    /// bucket. This is the hook for models outside the zoo.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidInput`] for an empty bucket list, or
    /// [`ServeError::Compile`] when a bucket fails to compile.
    pub fn register_with(
        &self,
        name: &str,
        buckets: &[usize],
        build: impl Fn(usize) -> Graph + Send + Sync + 'static,
    ) -> Result<Arc<ModelEngines>> {
        let mut sizes: Vec<usize> = buckets.iter().copied().filter(|&b| b > 0).collect();
        sizes.sort_unstable();
        sizes.dedup();
        if sizes.is_empty() {
            return Err(ServeError::InvalidInput {
                model: name.into(),
                reason: "at least one positive batch bucket is required".into(),
            });
        }
        self.register_inner(name, &sizes, Arc::new(build))
    }

    /// Registers a model from a graph-builder callback with no
    /// precompiled buckets (see [`EngineRegistry::register_zoo_dynamic`]).
    pub fn register_dynamic(
        &self,
        name: &str,
        build: impl Fn(usize) -> Graph + Send + Sync + 'static,
    ) -> Result<Arc<ModelEngines>> {
        self.register_inner(name, &[], Arc::new(build))
    }

    fn register_inner(
        &self,
        name: &str,
        sizes: &[usize],
        build: GraphBuilder,
    ) -> Result<Arc<ModelEngines>> {
        let probe = build(1);
        let sample_dims: Vec<Vec<usize>> = probe
            .input_ids()
            .iter()
            .map(|&id| probe.node(id).shape.dims().to_vec())
            .collect();
        let functional = probe
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, OpKind::Constant { .. }))
            .all(|n| probe.param(n.id).is_some());

        let mut compiled = Vec::with_capacity(sizes.len());
        for &bucket in sizes {
            let model = self.compiler.compile(&build(bucket))?;
            compiled.push((bucket, Arc::clone(model.plan())));
        }

        let engines = Arc::new(ModelEngines {
            name: name.to_string(),
            sample_dims,
            buckets: compiled,
            functional,
        });
        self.builders.write().insert(name.to_string(), build);
        self.models
            .write()
            .insert(name.to_string(), Arc::clone(&engines));
        Ok(engines)
    }

    /// The stored graph builder for `name`, if registered.
    pub fn builder(&self, name: &str) -> Option<GraphBuilder> {
        self.builders.read().get(name).cloned()
    }

    /// Compiles a fully-profiled engine for one `(model, bucket)` through
    /// the shared compiler (warm autotune cache). Does **not** install
    /// the engine — pair with [`EngineRegistry::insert_bucket`].
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] when no builder is stored for `name`,
    /// [`ServeError::Compile`] on compilation failure.
    pub fn compile_bucket(
        &self,
        name: &str,
        bucket: usize,
    ) -> Result<(Arc<ExecutionPlan>, TuningSummary)> {
        let build = self
            .builder(name)
            .ok_or_else(|| ServeError::UnknownModel { name: name.into() })?;
        let model = self.compiler.compile(&build(bucket))?;
        Ok((Arc::clone(model.plan()), model.tuning))
    }

    /// Compiles a **heuristic default-config** engine for one `(model,
    /// bucket)`: no profiling, zero tuning time, shared autotune cache
    /// untouched. The serving layer's immediate fallback for a shape
    /// that has never been tuned.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] when no builder is stored for `name`,
    /// [`ServeError::Compile`] on compilation failure.
    pub fn compile_heuristic_bucket(
        &self,
        name: &str,
        bucket: usize,
    ) -> Result<Arc<ExecutionPlan>> {
        let build = self
            .builder(name)
            .ok_or_else(|| ServeError::UnknownModel { name: name.into() })?;
        let model = self.compiler.compile_heuristic(&build(bucket))?;
        Ok(Arc::clone(model.plan()))
    }

    /// Hot-swaps `engine` in as `name`'s engine for `bucket` (replacing
    /// any engine already at that bucket). The registry entry is replaced
    /// wholesale — a rebuilt [`ModelEngines`] swapped under the write
    /// lock — so concurrent lookups see either the old or the new value,
    /// both complete.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] when `name` is not registered.
    pub fn insert_bucket(
        &self,
        name: &str,
        bucket: usize,
        engine: Arc<ExecutionPlan>,
    ) -> Result<Arc<ModelEngines>> {
        let mut models = self.models.write();
        let current = models
            .get(name)
            .ok_or_else(|| ServeError::UnknownModel { name: name.into() })?;
        let next = Arc::new(current.with_bucket(bucket, engine));
        models.insert(name.to_string(), Arc::clone(&next));
        Ok(next)
    }

    /// Removes `name`'s engine for `bucket` (eviction), same wholesale
    /// swap as [`EngineRegistry::insert_bucket`]. A no-op when the bucket
    /// does not exist.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] when `name` is not registered.
    pub fn remove_bucket(&self, name: &str, bucket: usize) -> Result<Arc<ModelEngines>> {
        let mut models = self.models.write();
        let current = models
            .get(name)
            .ok_or_else(|| ServeError::UnknownModel { name: name.into() })?;
        let next = Arc::new(current.without_bucket(bucket));
        models.insert(name.to_string(), Arc::clone(&next));
        Ok(next)
    }

    /// Looks a registered model up by name.
    pub fn get(&self, name: &str) -> Option<Arc<ModelEngines>> {
        self.models.read().get(name).cloned()
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.models.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// `(model, workspace_bytes)` per registered model, sorted by name —
    /// the peak intermediate memory each model's largest bucket plans.
    pub fn workspaces(&self) -> Vec<(String, u64)> {
        let mut ws: Vec<(String, u64)> = self
            .models
            .read()
            .iter()
            .map(|(name, engines)| (name.clone(), engines.workspace_bytes()))
            .collect();
        ws.sort();
        ws
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_tensor::DType;

    fn registry() -> EngineRegistry {
        EngineRegistry::new(crate::testing::test_arch(), BoltConfig::default())
    }

    #[test]
    fn zoo_registration_compiles_every_bucket() {
        let reg = registry();
        let engines = reg.register_zoo("mlp-small", &[1, 2, 4]).expect("register");
        assert_eq!(engines.bucket_sizes(), vec![1, 2, 4]);
        assert_eq!(engines.max_batch(), 4);
        assert!(engines.functional(), "serving MLPs materialize params");
        assert_eq!(engines.sample_dims(), &[vec![1, 128]]);
        assert_eq!(reg.names(), vec!["mlp-small".to_string()]);
    }

    #[test]
    fn unknown_zoo_model_is_a_typed_error() {
        let err = registry().register_zoo("alexnet", &[1]).unwrap_err();
        assert!(matches!(err, ServeError::UnknownModel { .. }));
        assert!(registry().get("alexnet").is_none());
        let err = registry().register_zoo_dynamic("alexnet").unwrap_err();
        assert!(matches!(err, ServeError::UnknownModel { .. }));
    }

    #[test]
    fn empty_buckets_are_rejected() {
        let err = registry().register_zoo("mlp-small", &[0]).unwrap_err();
        assert!(matches!(err, ServeError::InvalidInput { .. }));
    }

    #[test]
    fn engine_for_picks_smallest_fitting_bucket() {
        let reg = registry();
        let engines = reg.register_zoo("mlp-small", &[1, 4, 8]).expect("register");
        assert_eq!(engines.engine_for(1).unwrap().0, 1);
        assert_eq!(engines.engine_for(3).unwrap().0, 4);
        assert_eq!(engines.engine_for(8).unwrap().0, 8);
        // Oversized batches no longer clamp silently: single-launch
        // lookup refuses, placement splits explicitly.
        assert!(engines.engine_for(64).is_none());
        let placement = engines.placement_for(64).expect("buckets exist");
        assert_eq!(placement.bucket, 8);
        assert_eq!(placement.launches, 8);
        let fits = engines.placement_for(3).expect("buckets exist");
        assert_eq!((fits.bucket, fits.launches), (4, 1));
    }

    #[test]
    fn dynamic_registration_starts_with_zero_buckets() {
        let reg = registry();
        let engines = reg.register_zoo_dynamic("mlp-small").expect("register");
        assert_eq!(engines.bucket_sizes(), Vec::<usize>::new());
        assert_eq!(engines.max_batch(), 0);
        assert!(engines.engine_for(1).is_none());
        assert!(engines.placement_for(1).is_none());
        assert_eq!(engines.sample_dims(), &[vec![1, 128]]);
        assert!(reg.builder("mlp-small").is_some());
    }

    #[test]
    fn insert_and_remove_bucket_swap_whole_engines() {
        let reg = registry();
        let before = reg.register_zoo_dynamic("mlp-small").expect("register");
        let (plan, tuning) = reg.compile_bucket("mlp-small", 4).expect("compile");
        assert!(tuning.workloads >= 1);
        let after = reg.insert_bucket("mlp-small", 4, plan).expect("insert");
        assert_eq!(after.bucket_sizes(), vec![4]);
        // The pre-swap snapshot is untouched; fresh lookups see the swap.
        assert_eq!(before.bucket_sizes(), Vec::<usize>::new());
        assert_eq!(reg.get("mlp-small").unwrap().bucket_sizes(), vec![4]);

        let removed = reg.remove_bucket("mlp-small", 4).expect("remove");
        assert_eq!(removed.bucket_sizes(), Vec::<usize>::new());
        assert_eq!(
            reg.get("mlp-small").unwrap().bucket_sizes(),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn heuristic_bucket_compiles_without_touching_shared_cache() {
        let reg = registry();
        reg.register_zoo_dynamic("mlp-small").expect("register");
        let before = reg.compiler().profiler().stats();
        let plan = reg
            .compile_heuristic_bucket("mlp-small", 2)
            .expect("heuristic compile");
        assert!(plan.resident_bytes() > 0);
        let after = reg.compiler().profiler().stats();
        assert_eq!(before, after, "heuristic compile must not profile");
    }

    #[test]
    fn bucket_ops_on_unknown_model_are_typed_errors() {
        let reg = registry();
        assert!(matches!(
            reg.compile_bucket("nope", 1),
            Err(ServeError::UnknownModel { .. })
        ));
        let plan = {
            reg.register_zoo("mlp-small", &[1]).expect("register");
            reg.get("mlp-small").unwrap().engine_for(1).unwrap().1
        };
        assert!(matches!(
            reg.insert_bucket("nope", 1, plan),
            Err(ServeError::UnknownModel { .. })
        ));
        assert!(matches!(
            reg.remove_bucket("nope", 1),
            Err(ServeError::UnknownModel { .. })
        ));
    }

    #[test]
    fn validate_sample_names_expected_vs_got() {
        let reg = registry();
        let engines = reg.register_zoo("mlp-small", &[1]).expect("register");
        let ok = Tensor::randn(&[1, 128], DType::F16, 1);
        assert!(engines.validate_sample(std::slice::from_ref(&ok)).is_ok());
        let bad = Tensor::randn(&[1, 64], DType::F16, 1);
        let err = engines.validate_sample(&[bad]).unwrap_err();
        match err {
            ServeError::InvalidInput { reason, .. } => {
                assert!(reason.contains("128") && reason.contains("64"), "{reason}");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(engines.validate_sample(&[]).is_err());
    }
}
