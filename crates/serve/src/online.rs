//! Online tuning and engine lifecycle: serve unseen batch shapes now,
//! tune them in the background, hot-swap the tuned engine in, and evict
//! cold engines under a memory budget.
//!
//! This is the deployment story the paper's "tuning in minutes, not
//! hours" enables: profiling is fast enough to run *while serving*. A
//! request for a `(model, bucket)` that has no compiled engine is never
//! refused and never blocks on the tuner:
//!
//! * **Fallback serve** — the batch runs immediately on the nearest
//!   existing bucket (padded up), split across repeated launches of the
//!   largest bucket when it overflows, or — when the model has no
//!   engines at all — on a **heuristic default-config engine** compiled
//!   without any profiling ([`crate::EngineRegistry::compile_heuristic_bucket`]).
//! * **Background tune** — the missing bucket is enqueued on a bounded
//!   tuner pool. Per-key [`EngineState`] makes concurrent misses
//!   coalesce into exactly one compile. Compiles go through the shared
//!   [`bolt::BoltCompiler`], so the warm autotune cache (and its on-disk
//!   persistence after every compile) applies.
//! * **Hot swap** — the finished engine is installed via
//!   [`crate::EngineRegistry::insert_bucket`], which replaces the whole
//!   `Arc<ModelEngines>` under the registry lock; in-flight lookups see
//!   either the old or the new value, both complete.
//! * **Evict** — engines are accounted by
//!   [`bolt::ExecutionPlan::resident_bytes`] and evicted
//!   least-recently-used when the configured budget is exceeded. An
//!   evicted bucket that sees traffic again recompiles — warm from the
//!   autotune cache, so the second compile measures nothing.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bolt::ExecutionPlan;

use crate::registry::{EngineRegistry, ModelEngines};
use crate::Result;

/// Tunables for the [`OnlineEngineManager`].
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineConfig {
    /// Background tuner threads running profiled compiles.
    pub tuner_threads: usize,
    /// Bounded compile-queue length. A miss whose compile does not fit
    /// is still served on the fallback path; only the background compile
    /// is skipped (and counted in
    /// [`OnlineSnapshot::compile_queue_rejected`]).
    pub queue_capacity: usize,
    /// Total [`bolt::ExecutionPlan::resident_bytes`] the managed tuned
    /// engines may keep resident; least-recently-used buckets are
    /// evicted to stay under it. `None` disables eviction.
    pub memory_budget_bytes: Option<u64>,
    /// Base retry delay after the *first* failed compile of a
    /// `(model, bucket)`. Each further consecutive failure doubles the
    /// delay (capped at [`OnlineConfig::retry_backoff_max`]) and adds a
    /// deterministic jitter of up to 25% so co-failing keys don't retry
    /// in lockstep.
    pub retry_backoff: Duration,
    /// Ceiling of the exponential retry backoff.
    pub retry_backoff_max: Duration,
    /// Consecutive compile failures (across all of a model's buckets)
    /// that trip the per-model circuit breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open before it half-opens and
    /// admits a single probe compile.
    pub breaker_cooldown: Duration,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            tuner_threads: 1,
            queue_capacity: 64,
            memory_budget_bytes: None,
            retry_backoff: Duration::from_millis(250),
            retry_backoff_max: Duration::from_secs(10),
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_secs(2),
        }
    }
}

/// Lifecycle state of one `(model, bucket)` engine key.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineState {
    /// A tuned engine is installed in the registry.
    Ready,
    /// A background compile is queued or running; further misses for the
    /// key serve fallback without enqueueing a second compile.
    Compiling,
    /// The last compile failed; retried on the first miss after
    /// `retry_after` (capped exponential backoff with deterministic
    /// jitter — see [`OnlineConfig::retry_backoff`]).
    Failed {
        /// The compile error, for diagnostics.
        error: String,
        /// Earliest instant a retry may be enqueued.
        retry_after: Instant,
        /// Consecutive failed compiles of this key (drives the backoff).
        attempts: u32,
    },
}

/// Per-model circuit breaker over background compiles. Repeated compile
/// failures across a model's buckets trip it open: while open, no new
/// compiles are enqueued for the model (requests still serve on the
/// fallback path, flagged `degraded`). After
/// [`OnlineConfig::breaker_cooldown`] it half-opens and admits exactly
/// one probe compile — success closes it, failure re-opens it.
#[derive(Debug, Clone, PartialEq)]
enum BreakerState {
    Closed,
    Open { until: Instant },
    HalfOpen,
}

#[derive(Debug)]
struct Breaker {
    state: BreakerState,
    consecutive_failures: u32,
}

impl Default for Breaker {
    fn default() -> Self {
        Breaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
        }
    }
}

/// How the manager placed one batch.
#[derive(Debug, Clone)]
pub struct Acquired {
    /// The bucket the batch executes on.
    pub bucket: usize,
    /// The engine compiled for that bucket.
    pub engine: Arc<ExecutionPlan>,
    /// Back-to-back launches needed (1 unless the batch overflowed every
    /// compiled bucket and was split).
    pub launches: usize,
    /// True when this was a fallback placement (padded to an oversized
    /// bucket, split on overflow, or a heuristic default-config engine)
    /// rather than a tuned engine fitting the batch.
    pub fallback: bool,
    /// True when the model's circuit breaker was open (or probing) at
    /// placement time: the request is served, but on a degraded path
    /// with background tuning suspended for the model.
    pub degraded: bool,
}

/// One failed `(model, bucket)` engine key, as surfaced by
/// [`OnlineSnapshot::failed_buckets`].
#[derive(Debug, Clone, PartialEq)]
pub struct FailedBucket {
    /// Model name.
    pub model: String,
    /// Batch bucket whose compile failed.
    pub bucket: usize,
    /// The last compile error.
    pub error: String,
    /// Consecutive failed compiles of this key.
    pub attempts: u32,
    /// Time until the next retry may be enqueued (zero if already due).
    pub retry_in: Duration,
}

/// Point-in-time view of the online tuning counters.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineSnapshot {
    /// Requests served on a fallback path while their bucket was untuned.
    pub fallback_served: u64,
    /// Background compiles picked up by a tuner thread.
    pub compiles_started: u64,
    /// Background compiles that finished and hot-swapped an engine in.
    pub compiles_completed: u64,
    /// Background compiles that failed.
    pub compiles_failed: u64,
    /// Compile requests dropped because the bounded queue was full.
    pub compile_queue_rejected: u64,
    /// Engines hot-swapped into the registry.
    pub hot_swaps: u64,
    /// Engines evicted under the memory budget.
    pub evictions: u64,
    /// Simulated tuning wall-clock spent by online compiles, seconds
    /// (zero when every workload came warm from the autotune cache).
    pub tuning_seconds: f64,
    /// Compiles currently queued or running.
    pub compile_queue_depth: usize,
    /// Total resident bytes of managed tuned engines plus live heuristic
    /// fallback engines.
    pub resident_bytes: u64,
    /// Externally-owned bytes (the KV block pool) currently charged
    /// against `memory_budget_bytes` ahead of tuned engines.
    pub external_resident_bytes: u64,
    /// Tuner threads respawned by the supervisor after a panic.
    pub tuner_restarts: u64,
    /// Times a per-model circuit breaker tripped open.
    pub breaker_trips: u64,
    /// Requests placed while their model's breaker was open or probing.
    pub degraded_served: u64,
    /// Every key currently in [`EngineState::Failed`], sorted by
    /// `(model, bucket)` for stable output.
    pub failed_buckets: Vec<FailedBucket>,
    /// Models whose circuit breaker is currently open or half-open,
    /// sorted.
    pub tripped_models: Vec<String>,
}

type EngineKey = (String, usize);

#[derive(Debug, Default)]
struct Counters {
    fallback_served: AtomicU64,
    compiles_started: AtomicU64,
    compiles_completed: AtomicU64,
    compiles_failed: AtomicU64,
    compile_queue_rejected: AtomicU64,
    hot_swaps: AtomicU64,
    evictions: AtomicU64,
    /// Simulated tuning time, µs (integer so it can be a plain atomic).
    tuning_us: AtomicU64,
    tuner_restarts: AtomicU64,
    breaker_trips: AtomicU64,
    degraded_served: AtomicU64,
}

#[derive(Debug, Default)]
struct State {
    states: HashMap<EngineKey, EngineState>,
    queue: VecDeque<EngineKey>,
    /// Compiles a tuner thread is currently running.
    inflight: usize,
    /// Resident bytes per tuned key, for budget accounting.
    resident: HashMap<EngineKey, u64>,
    /// LRU stamps: higher = more recently used.
    touched: HashMap<EngineKey, u64>,
    tick: u64,
    /// Heuristic default-config engines serving keys with no tuned
    /// engine yet; dropped when the tuned engine hot-swaps in.
    heuristic: HashMap<EngineKey, Arc<ExecutionPlan>>,
    /// Per-model circuit breakers over background compiles.
    breakers: HashMap<String, Breaker>,
    /// Consecutive failed compiles per key (survives the `Failed` →
    /// `Compiling` transition of a retry; cleared on success/eviction).
    fail_counts: HashMap<EngineKey, u32>,
    shutdown: bool,
}

impl State {
    fn touch(&mut self, key: EngineKey) {
        self.tick += 1;
        let tick = self.tick;
        self.touched.insert(key, tick);
    }
}

/// Everything the tuner threads share with the front-end handle.
struct Shared {
    registry: Arc<EngineRegistry>,
    config: OnlineConfig,
    state: Mutex<State>,
    /// Wakes tuners on new queue entries and shutdown.
    work_cv: Condvar,
    /// Wakes [`OnlineEngineManager::wait_idle`] when the queue drains.
    idle_cv: Condvar,
    counters: Counters,
    /// Bytes of externally-owned accelerator memory (the continuous
    /// batcher's KV block pool) charged against the engine memory
    /// budget; see [`OnlineEngineManager::set_external_resident_bytes`].
    external_bytes: AtomicU64,
}

impl Shared {
    /// The state mutex, poison-tolerant (a panicked tuner must not take
    /// the serving path down with it).
    fn lock_state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues a compile for `key` unless the model's circuit breaker
    /// is open, one is already queued/running, a recent failure is still
    /// cooling down, or the queue is full. Caller holds the state lock.
    ///
    /// Returns `true` when the model is **degraded**: its breaker is
    /// open (no compile enqueued) or half-open (at most a single probe
    /// compile admitted, bypassing the per-key backoff).
    fn maybe_enqueue(&self, st: &mut State, key: EngineKey) -> bool {
        let now = Instant::now();
        // The per-model breaker gates before any per-key state.
        let mut probing = false;
        match st.breakers.get(&key.0).map(|b| b.state.clone()) {
            Some(BreakerState::Open { until }) if now < until => return true,
            Some(BreakerState::Open { .. }) => probing = true, // cooldown over: try one probe
            Some(BreakerState::HalfOpen) => return true,       // probe already in flight
            Some(BreakerState::Closed) | None => {}
        }
        match st.states.get(&key) {
            Some(EngineState::Ready) | Some(EngineState::Compiling) => return probing,
            Some(EngineState::Failed { retry_after, .. }) if !probing && now < *retry_after => {
                return false;
            }
            _ => {}
        }
        if st.queue.len() >= self.config.queue_capacity {
            self.counters
                .compile_queue_rejected
                .fetch_add(1, Ordering::Relaxed);
            // An expired-open breaker stays open: the next miss retries
            // the probe. Never park in HalfOpen without a probe queued.
            return probing;
        }
        if probing {
            // The transition happens only once the probe is actually
            // enqueued, so HalfOpen always has exactly one compile out.
            if let Some(b) = st.breakers.get_mut(&key.0) {
                b.state = BreakerState::HalfOpen;
            }
        }
        st.states.insert(key.clone(), EngineState::Compiling);
        st.queue.push_back(key);
        self.work_cv.notify_one();
        probing
    }
}

/// Capped exponential backoff with deterministic jitter for the
/// `attempts`-th consecutive failure of `key`. Doubling is capped at
/// [`OnlineConfig::retry_backoff_max`]; jitter adds up to 25% more,
/// derived from a hash of the key and attempt count so the schedule is
/// reproducible yet decorrelated across keys.
fn backoff_delay(config: &OnlineConfig, key: &EngineKey, attempts: u32) -> Duration {
    let base = config.retry_backoff.max(Duration::from_millis(1));
    let doublings = attempts.saturating_sub(1).min(16);
    let delay = base
        .saturating_mul(1u32 << doublings)
        .min(config.retry_backoff_max.max(base));
    let span = (delay.as_micros() as u64 / 4).max(1);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key.0.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= (key.1 as u64) << 32 | attempts as u64;
    delay + Duration::from_micros(bolt::faults::mix64(h) % span)
}

/// The online tuning & engine-lifecycle manager (see module docs).
pub struct OnlineEngineManager {
    shared: Arc<Shared>,
    tuners: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for OnlineEngineManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlineEngineManager")
            .field("config", &self.shared.config)
            .field("snapshot", &self.snapshot())
            .finish_non_exhaustive()
    }
}

impl OnlineEngineManager {
    /// Starts `config.tuner_threads` background tuners over `registry`.
    /// Buckets already compiled at construction are seeded as
    /// [`EngineState::Ready`] and accounted against the memory budget.
    pub fn new(registry: Arc<EngineRegistry>, config: OnlineConfig) -> Self {
        let config = OnlineConfig {
            tuner_threads: config.tuner_threads.max(1),
            queue_capacity: config.queue_capacity.max(1),
            ..config
        };
        let threads = config.tuner_threads;
        let shared = Arc::new(Shared {
            registry: Arc::clone(&registry),
            config,
            state: Mutex::new(State::default()),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            counters: Counters::default(),
            external_bytes: AtomicU64::new(0),
        });
        {
            let mut st = shared.lock_state();
            for name in registry.names() {
                let Some(engines) = registry.get(&name) else {
                    continue;
                };
                for bucket in engines.bucket_sizes() {
                    let key = (name.clone(), bucket);
                    if let Some((_, engine)) = engines.engine_for(bucket) {
                        st.resident.insert(key.clone(), engine.resident_bytes());
                    }
                    st.states.insert(key.clone(), EngineState::Ready);
                    st.touch(key);
                }
            }
        }
        let tuners = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                // Supervisor: a panic that escapes the tuner loop (only
                // injected faults or real bugs — per-compile panics are
                // caught inside the loop) restarts it in place, so the
                // tuner pool never shrinks. A clean return is shutdown.
                std::thread::spawn(move || loop {
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        tuner_loop(&shared)
                    })) {
                        Ok(()) => return,
                        Err(_) => {
                            shared
                                .counters
                                .tuner_restarts
                                .fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        OnlineEngineManager {
            shared,
            tuners: Mutex::new(tuners),
        }
    }

    /// The bucket online tuning quantizes `batch` to: the next power of
    /// two ≥ `batch`. Quantizing keeps the set of buckets the tuner can
    /// be asked for small, so a finite stream of distinct batch sizes
    /// converges to a finite set of tuned engines.
    pub fn desired_bucket(batch: usize) -> usize {
        batch.max(1).next_power_of_two()
    }

    /// Places a batch, never blocking on the tuner: a tuned engine that
    /// fits within the quantized bucket serves directly; anything else is
    /// served on a fallback path while the missing bucket's compile is
    /// enqueued. See module docs for the policy.
    ///
    /// # Errors
    ///
    /// Only the zero-engines path can fail, when the heuristic compile
    /// itself errors (e.g. the graph has no legal template config).
    pub fn acquire(&self, model: &Arc<ModelEngines>, batch: usize) -> Result<Acquired> {
        let shared = &*self.shared;
        // Re-read the registry: the batch may have been formed against a
        // snapshot from before a hot-swap.
        let engines = shared
            .registry
            .get(model.name())
            .unwrap_or_else(|| Arc::clone(model));
        let name = engines.name().to_string();
        let desired = Self::desired_bucket(batch);
        let key = (name.clone(), desired);

        if let Some((bucket, engine)) = engines.engine_for(batch) {
            if bucket <= desired {
                // A tuned engine at least as tight as our own quantization
                // would produce: serve it, no compile needed.
                shared.lock_state().touch((name, bucket));
                return Ok(Acquired {
                    bucket,
                    engine,
                    launches: 1,
                    fallback: false,
                    degraded: false,
                });
            }
            // Over-padded: serve the nearest bucket now, tune the right one.
            let degraded = {
                let mut st = shared.lock_state();
                st.touch((name, bucket));
                shared.maybe_enqueue(&mut st, key)
            };
            self.count_fallback(batch, degraded);
            return Ok(Acquired {
                bucket,
                engine,
                launches: 1,
                fallback: true,
                degraded,
            });
        }

        if let Some(placement) = engines.placement_for(batch) {
            // Overflow: explicit split across the largest bucket.
            let degraded = {
                let mut st = shared.lock_state();
                st.touch((name, placement.bucket));
                shared.maybe_enqueue(&mut st, key)
            };
            self.count_fallback(batch, degraded);
            return Ok(Acquired {
                bucket: placement.bucket,
                engine: placement.engine,
                launches: placement.launches,
                fallback: true,
                degraded,
            });
        }

        // No engines at all: heuristic default-config engine.
        let degraded = {
            let mut st = shared.lock_state();
            shared.maybe_enqueue(&mut st, key.clone())
        };
        let engine = self.heuristic_engine(&key)?;
        self.count_fallback(batch, degraded);
        Ok(Acquired {
            bucket: desired,
            engine,
            launches: 1,
            fallback: true,
            degraded,
        })
    }

    fn count_fallback(&self, batch: usize, degraded: bool) {
        let c = &self.shared.counters;
        c.fallback_served.fetch_add(batch as u64, Ordering::Relaxed);
        if degraded {
            c.degraded_served.fetch_add(batch as u64, Ordering::Relaxed);
        }
    }

    /// The cached heuristic engine for `key`, compiling it on first use.
    /// Compilation happens outside the state lock; a racing duplicate
    /// compile is possible but harmless (first insert wins).
    fn heuristic_engine(&self, key: &EngineKey) -> Result<Arc<ExecutionPlan>> {
        if let Some(engine) = self.shared.lock_state().heuristic.get(key) {
            return Ok(Arc::clone(engine));
        }
        let engine = self
            .shared
            .registry
            .compile_heuristic_bucket(&key.0, key.1)?;
        let mut st = self.shared.lock_state();
        Ok(Arc::clone(
            st.heuristic.entry(key.clone()).or_insert(engine),
        ))
    }

    /// The lifecycle state of one `(model, bucket)` key, if tracked.
    pub fn state_of(&self, model: &str, bucket: usize) -> Option<EngineState> {
        self.shared
            .lock_state()
            .states
            .get(&(model.to_string(), bucket))
            .cloned()
    }

    /// Blocks until no compile is queued or running, up to `timeout`.
    /// Returns `false` on timeout.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.lock_state();
        loop {
            if st.queue.is_empty() && st.inflight == 0 {
                return true;
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, _) = self
                .shared
                .idle_cv
                .wait_timeout(st, remaining)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Charges externally-owned accelerator memory — the continuous
    /// batcher's resident KV block pool — against `memory_budget_bytes`.
    /// Tuned engines only get to fill whatever the KV governor left:
    /// eviction planning sees `budget - external`, so a growing KV
    /// footprint squeezes cold engines out first while live engines and
    /// the KV blocks themselves are never touched.
    pub fn set_external_resident_bytes(&self, bytes: u64) {
        self.shared.external_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Point-in-time counters.
    pub fn snapshot(&self) -> OnlineSnapshot {
        let c = &self.shared.counters;
        let st = self.shared.lock_state();
        let resident_bytes = st.resident.values().sum::<u64>()
            + st.heuristic
                .values()
                .map(|engine| engine.resident_bytes())
                .sum::<u64>();
        let now = Instant::now();
        let mut failed_buckets: Vec<FailedBucket> = st
            .states
            .iter()
            .filter_map(|((model, bucket), state)| match state {
                EngineState::Failed {
                    error,
                    retry_after,
                    attempts,
                } => Some(FailedBucket {
                    model: model.clone(),
                    bucket: *bucket,
                    error: error.clone(),
                    attempts: *attempts,
                    retry_in: retry_after.saturating_duration_since(now),
                }),
                _ => None,
            })
            .collect();
        failed_buckets.sort_by(|a, b| (&a.model, a.bucket).cmp(&(&b.model, b.bucket)));
        let mut tripped_models: Vec<String> = st
            .breakers
            .iter()
            .filter(|(_, b)| b.state != BreakerState::Closed)
            .map(|(model, _)| model.clone())
            .collect();
        tripped_models.sort();
        OnlineSnapshot {
            fallback_served: c.fallback_served.load(Ordering::Relaxed),
            compiles_started: c.compiles_started.load(Ordering::Relaxed),
            compiles_completed: c.compiles_completed.load(Ordering::Relaxed),
            compiles_failed: c.compiles_failed.load(Ordering::Relaxed),
            compile_queue_rejected: c.compile_queue_rejected.load(Ordering::Relaxed),
            hot_swaps: c.hot_swaps.load(Ordering::Relaxed),
            evictions: c.evictions.load(Ordering::Relaxed),
            tuning_seconds: c.tuning_us.load(Ordering::Relaxed) as f64 / 1e6,
            compile_queue_depth: st.queue.len() + st.inflight,
            resident_bytes,
            external_resident_bytes: self.shared.external_bytes.load(Ordering::Relaxed),
            tuner_restarts: c.tuner_restarts.load(Ordering::Relaxed),
            breaker_trips: c.breaker_trips.load(Ordering::Relaxed),
            degraded_served: c.degraded_served.load(Ordering::Relaxed),
            failed_buckets,
            tripped_models,
        }
    }
}

impl Drop for OnlineEngineManager {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock_state();
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        let handles: Vec<_> = {
            let mut tuners = self.tuners.lock().unwrap_or_else(|e| e.into_inner());
            tuners.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn tuner_loop(shared: &Shared) {
    loop {
        // Chaos: a tuner thread may die *between* compiles — before it
        // has dequeued anything, so no key is stranded in `Compiling`.
        // The supervisor wrapper respawns the thread.
        bolt::faults::panic_if_scheduled(bolt::faults::FaultSite::TunerKill);
        let key = {
            let mut st = shared.lock_state();
            loop {
                if let Some(key) = st.queue.pop_front() {
                    st.inflight += 1;
                    break key;
                }
                if st.shutdown {
                    return;
                }
                st = shared.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        shared
            .counters
            .compiles_started
            .fetch_add(1, Ordering::Relaxed);

        // The expensive part, outside every lock: a fully-profiled
        // compile through the shared compiler (which also persists the
        // autotune cache on success, when one is configured). A panic in
        // the compile (a buggy model builder, an injected fault) is
        // isolated here and recorded as a failed compile — it must not
        // strand the key in `Compiling` or leak the inflight count.
        let compiled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.registry.compile_bucket(&key.0, key.1)
        }))
        .unwrap_or_else(|payload| {
            Err(crate::ServeError::Panicked {
                component: format!("compile of ({}, {})", key.0, key.1),
                message: crate::panic_message(&payload),
            })
        });

        match compiled {
            Ok((engine, tuning)) => {
                let bytes = engine.resident_bytes();
                match shared.registry.insert_bucket(&key.0, key.1, engine) {
                    Ok(_) => {
                        shared
                            .counters
                            .compiles_completed
                            .fetch_add(1, Ordering::Relaxed);
                        shared.counters.hot_swaps.fetch_add(1, Ordering::Relaxed);
                        shared.counters.tuning_us.fetch_add(
                            (tuning.tuning_seconds * 1e6).round() as u64,
                            Ordering::Relaxed,
                        );
                        let victims = {
                            let mut st = shared.lock_state();
                            st.states.insert(key.clone(), EngineState::Ready);
                            st.heuristic.remove(&key);
                            st.resident.insert(key.clone(), bytes);
                            st.touch(key.clone());
                            st.fail_counts.remove(&key);
                            // A success closes the model's breaker.
                            st.breakers.insert(key.0.clone(), Breaker::default());
                            // KV blocks and tuned engines share the same
                            // accelerator memory: the budget engines may
                            // fill is whatever the KV pool left behind.
                            let external = shared.external_bytes.load(Ordering::Relaxed);
                            let budget = shared
                                .config
                                .memory_budget_bytes
                                .map(|b| b.saturating_sub(external));
                            plan_evictions(&mut st, budget, &key)
                        };
                        // Registry mutations outside the state lock (lock
                        // order: never hold both).
                        for victim in victims {
                            let _ = shared.registry.remove_bucket(&victim.0, victim.1);
                            shared.counters.evictions.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Err(e) => {
                        // Model was unregistered while compiling.
                        record_failure(shared, &key, &e.to_string());
                    }
                }
            }
            Err(e) => record_failure(shared, &key, &e.to_string()),
        }

        let mut st = shared.lock_state();
        st.inflight -= 1;
        if st.queue.is_empty() && st.inflight == 0 {
            shared.idle_cv.notify_all();
        }
    }
}

/// Marks `key` failed with exponential-backoff retry and advances the
/// model's circuit breaker.
fn record_failure(shared: &Shared, key: &EngineKey, error: &str) {
    shared
        .counters
        .compiles_failed
        .fetch_add(1, Ordering::Relaxed);
    let mut st = shared.lock_state();
    let counter = st.fail_counts.entry(key.clone()).or_insert(0);
    *counter += 1;
    let attempts = *counter;
    let retry_after = Instant::now() + backoff_delay(&shared.config, key, attempts);
    st.states.insert(
        key.clone(),
        EngineState::Failed {
            error: error.to_string(),
            retry_after,
            attempts,
        },
    );
    let threshold = shared.config.breaker_threshold.max(1);
    let cooldown = shared.config.breaker_cooldown;
    let breaker = st.breakers.entry(key.0.clone()).or_default();
    breaker.consecutive_failures += 1;
    let trips = match breaker.state {
        // The half-open probe failed: straight back to open.
        BreakerState::HalfOpen => true,
        BreakerState::Closed => breaker.consecutive_failures >= threshold,
        // Already open (a compile enqueued before the trip finished
        // late); don't re-trip or extend the cooldown.
        BreakerState::Open { .. } => false,
    };
    if trips {
        breaker.state = BreakerState::Open {
            until: Instant::now() + cooldown,
        };
        shared
            .counters
            .breaker_trips
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// LRU victims to evict so total resident bytes fit the budget. The
/// just-installed `keep` key is never chosen, so a single over-budget
/// engine cannot evict itself in a loop. Victim state entries are
/// removed entirely: the next miss re-enqueues a (cache-warm) compile.
fn plan_evictions(st: &mut State, budget: Option<u64>, keep: &EngineKey) -> Vec<EngineKey> {
    let Some(budget) = budget else {
        return Vec::new();
    };
    let mut victims = Vec::new();
    let mut total: u64 = st.resident.values().sum();
    while total > budget {
        let Some(victim) = st
            .resident
            .keys()
            .filter(|k| *k != keep)
            .min_by_key(|k| st.touched.get(*k).copied().unwrap_or(0))
            .cloned()
        else {
            break;
        };
        total -= st.resident.remove(&victim).unwrap_or(0);
        st.touched.remove(&victim);
        st.states.remove(&victim);
        st.fail_counts.remove(&victim);
        victims.push(victim);
    }
    victims
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::test_arch;
    use bolt::BoltConfig;

    fn registry() -> Arc<EngineRegistry> {
        Arc::new(EngineRegistry::new(test_arch(), BoltConfig::default()))
    }

    #[test]
    fn desired_bucket_is_next_power_of_two() {
        assert_eq!(OnlineEngineManager::desired_bucket(0), 1);
        assert_eq!(OnlineEngineManager::desired_bucket(1), 1);
        assert_eq!(OnlineEngineManager::desired_bucket(3), 4);
        assert_eq!(OnlineEngineManager::desired_bucket(8), 8);
        assert_eq!(OnlineEngineManager::desired_bucket(9), 16);
    }

    #[test]
    fn backoff_delay_is_deterministic_capped_and_jittered() {
        let config = OnlineConfig {
            retry_backoff: Duration::from_millis(100),
            retry_backoff_max: Duration::from_secs(2),
            ..OnlineConfig::default()
        };
        let key = ("mlp-small".to_string(), 4);
        // Reproducible: same inputs, same delay, bit for bit.
        assert_eq!(
            backoff_delay(&config, &key, 1),
            backoff_delay(&config, &key, 1)
        );
        // First failure waits at least the base, at most base + 25%.
        let first = backoff_delay(&config, &key, 1);
        assert!(first >= Duration::from_millis(100), "{first:?}");
        assert!(first <= Duration::from_millis(125), "{first:?}");
        // Doubling grows the floor until the cap.
        let fourth = backoff_delay(&config, &key, 4);
        assert!(fourth >= Duration::from_millis(800), "{fourth:?}");
        // Far past the cap: never exceeds max + 25% jitter, and never
        // overflows even at absurd attempt counts.
        let huge = backoff_delay(&config, &key, u32::MAX);
        assert!(huge <= Duration::from_millis(2500), "{huge:?}");
        // Jitter decorrelates keys: two keys at the same attempt almost
        // surely differ (equal only on a 1-in-span hash collision; these
        // two were checked not to collide).
        let other = ("cnn-small".to_string(), 4);
        assert_ne!(
            backoff_delay(&config, &key, 3),
            backoff_delay(&config, &other, 3)
        );
    }

    #[test]
    fn miss_serves_heuristic_fallback_then_hot_swaps_tuned_engine() {
        let reg = registry();
        let engines = reg.register_zoo_dynamic("mlp-small").expect("register");
        let manager = OnlineEngineManager::new(Arc::clone(&reg), OnlineConfig::default());

        let first = manager.acquire(&engines, 2).expect("fallback placement");
        assert!(first.fallback, "no tuned engine yet");
        assert_eq!(first.bucket, 2);
        assert_eq!(first.launches, 1);
        // The compile is either still in flight or (simulated compiles
        // are fast) already done — never absent, never failed.
        assert!(matches!(
            manager.state_of("mlp-small", 2),
            Some(EngineState::Compiling) | Some(EngineState::Ready)
        ));

        assert!(manager.wait_idle(Duration::from_secs(60)), "tuner drains");
        assert_eq!(manager.state_of("mlp-small", 2), Some(EngineState::Ready));
        assert_eq!(reg.get("mlp-small").unwrap().bucket_sizes(), vec![2]);

        let second = manager.acquire(&engines, 2).expect("tuned placement");
        assert!(!second.fallback, "tuned engine serves after hot-swap");
        assert_eq!(second.bucket, 2);
        // The tuned engine never prices worse than the heuristic default.
        assert!(second.engine.time().total_us <= first.engine.time().total_us + 1e-9);

        let snap = manager.snapshot();
        assert_eq!(snap.compiles_completed, 1);
        assert_eq!(snap.hot_swaps, 1);
        assert_eq!(snap.compiles_failed, 0);
        assert_eq!(snap.fallback_served, 2, "two fallback requests (batch=2)");
        assert_eq!(snap.compile_queue_depth, 0);
        assert!(snap.tuning_seconds > 0.0, "cold compile must charge time");
        assert!(snap.resident_bytes > 0);
    }

    #[test]
    fn concurrent_misses_coalesce_into_one_compile() {
        let reg = registry();
        let engines = reg.register_zoo_dynamic("mlp-small").expect("register");
        let manager = OnlineEngineManager::new(Arc::clone(&reg), OnlineConfig::default());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let manager = &manager;
                let engines = &engines;
                scope.spawn(move || {
                    manager.acquire(engines, 4).expect("acquire");
                });
            }
        });
        assert!(manager.wait_idle(Duration::from_secs(60)));
        let snap = manager.snapshot();
        assert_eq!(
            snap.compiles_completed, 1,
            "eight racing misses must coalesce into exactly one compile"
        );
        assert_eq!(reg.get("mlp-small").unwrap().bucket_sizes(), vec![4]);
    }

    #[test]
    fn lru_eviction_keeps_resident_bytes_under_budget() {
        let reg = registry();
        let engines = reg.register_zoo_dynamic("mlp-small").expect("register");
        // A budget no engine fits: every hot-swap evicts all other buckets.
        let manager = OnlineEngineManager::new(
            Arc::clone(&reg),
            OnlineConfig {
                memory_budget_bytes: Some(1),
                ..OnlineConfig::default()
            },
        );

        manager.acquire(&engines, 1).expect("miss 1");
        assert!(manager.wait_idle(Duration::from_secs(60)));
        assert_eq!(reg.get("mlp-small").unwrap().bucket_sizes(), vec![1]);

        manager.acquire(&engines, 2).expect("miss 2");
        assert!(manager.wait_idle(Duration::from_secs(60)));
        let snap = manager.snapshot();
        assert_eq!(snap.evictions, 1, "bucket 1 evicted when 2 swapped in");
        assert_eq!(
            reg.get("mlp-small").unwrap().bucket_sizes(),
            vec![2],
            "only the newest engine stays resident"
        );
        assert_eq!(
            manager.state_of("mlp-small", 1),
            None,
            "evicted keys are forgotten so a new miss recompiles"
        );
    }

    #[test]
    fn external_kv_bytes_tighten_the_engine_memory_budget() {
        let reg = registry();
        let engines = reg.register_zoo_dynamic("mlp-small").expect("register");
        // Roomy budget: absent external pressure every engine coexists.
        let manager = OnlineEngineManager::new(
            Arc::clone(&reg),
            OnlineConfig {
                memory_budget_bytes: Some(1 << 40),
                ..OnlineConfig::default()
            },
        );

        manager.acquire(&engines, 1).expect("miss 1");
        assert!(manager.wait_idle(Duration::from_secs(60)));
        manager
            .acquire(&reg.get("mlp-small").unwrap(), 2)
            .expect("miss 2");
        assert!(manager.wait_idle(Duration::from_secs(60)));
        assert_eq!(reg.get("mlp-small").unwrap().bucket_sizes(), vec![1, 2]);
        assert_eq!(manager.snapshot().evictions, 0, "no pressure yet");

        // The KV pool claims nearly the whole device: the next hot-swap
        // plans evictions against `budget - external` and squeezes both
        // cold engines out, keeping only the engine it just swapped in.
        manager.set_external_resident_bytes((1 << 40) - 1);
        manager
            .acquire(&reg.get("mlp-small").unwrap(), 4)
            .expect("miss 4");
        assert!(manager.wait_idle(Duration::from_secs(60)));
        let snap = manager.snapshot();
        assert_eq!(snap.external_resident_bytes, (1 << 40) - 1);
        assert_eq!(snap.evictions, 2, "both cold engines squeezed out");
        assert_eq!(reg.get("mlp-small").unwrap().bucket_sizes(), vec![4]);
    }

    /// The eviction/readmission race the LRU must survive: while bucket
    /// 2's compile is in flight (its hot-swap will evict bucket 1), the
    /// evicted-bucket-to-be is requested again. Whichever side of the
    /// swap the re-request lands on, nothing errors and the system
    /// converges to exactly one resident engine — the re-requested one.
    #[test]
    fn evicted_bucket_rerequested_mid_eviction_recompiles_cleanly() {
        let reg = registry();
        let engines = reg.register_zoo_dynamic("mlp-small").expect("register");
        let manager = OnlineEngineManager::new(
            Arc::clone(&reg),
            OnlineConfig {
                memory_budget_bytes: Some(1),
                ..OnlineConfig::default()
            },
        );

        manager.acquire(&engines, 1).expect("miss 1");
        assert!(manager.wait_idle(Duration::from_secs(60)));
        assert_eq!(reg.get("mlp-small").unwrap().bucket_sizes(), vec![1]);

        // Enqueue bucket 2's compile, then immediately re-request bucket
        // 1 while that compile (and the eviction it triggers) races.
        manager.acquire(&engines, 2).expect("miss 2");
        let fresh = reg.get("mlp-small").unwrap();
        manager.acquire(&fresh, 1).expect("re-request mid-eviction");
        assert!(manager.wait_idle(Duration::from_secs(60)));

        // Either ordering needs one more round trip to converge: if the
        // re-request beat the swap it served the still-resident engine
        // (and bucket 1 was evicted after), if it lost it re-enqueued
        // bucket 1's compile (evicting bucket 2 in turn).
        manager
            .acquire(&reg.get("mlp-small").unwrap(), 1)
            .expect("settle");
        assert!(manager.wait_idle(Duration::from_secs(60)));

        let placed = manager
            .acquire(&reg.get("mlp-small").unwrap(), 1)
            .expect("tuned placement");
        assert!(
            !placed.fallback,
            "bucket 1 is tuned again after readmission"
        );
        assert_eq!(
            reg.get("mlp-small").unwrap().bucket_sizes(),
            vec![1],
            "exactly one engine stays resident under the 1-byte budget"
        );
        let snap = manager.snapshot();
        assert_eq!(snap.evictions, 2, "1 evicted by 2, then 2 evicted by 1");
        assert_eq!(snap.compiles_failed, 0);
        assert!(snap.failed_buckets.is_empty());
    }

    #[test]
    fn oversized_bucket_serves_fallback_and_tunes_the_right_one() {
        let reg = registry();
        let engines = reg.register_zoo("mlp-small", &[8]).expect("register");
        let manager = OnlineEngineManager::new(Arc::clone(&reg), OnlineConfig::default());

        let first = manager.acquire(&engines, 2).expect("padded placement");
        assert!(first.fallback, "padding 2 onto bucket 8 is a fallback");
        assert_eq!(first.bucket, 8);
        assert!(manager.wait_idle(Duration::from_secs(60)));
        assert_eq!(reg.get("mlp-small").unwrap().bucket_sizes(), vec![2, 8]);

        let fresh = reg.get("mlp-small").unwrap();
        let second = manager.acquire(&fresh, 2).expect("tuned placement");
        assert!(!second.fallback);
        assert_eq!(second.bucket, 2);
    }

    #[test]
    fn overflow_splits_and_tunes_missing_bucket() {
        let reg = registry();
        let engines = reg.register_zoo("mlp-small", &[2]).expect("register");
        let manager = OnlineEngineManager::new(Arc::clone(&reg), OnlineConfig::default());
        let placed = manager.acquire(&engines, 5).expect("split placement");
        assert!(placed.fallback);
        assert_eq!(placed.bucket, 2);
        assert_eq!(placed.launches, 3, "ceil(5/2) launches");
        assert!(manager.wait_idle(Duration::from_secs(60)));
        assert_eq!(
            reg.get("mlp-small").unwrap().bucket_sizes(),
            vec![2, 8],
            "the quantized bucket for batch 5 is 8"
        );
    }
}
