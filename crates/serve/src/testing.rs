//! Test support shared by the serving and cluster test suites.
//!
//! Tests and benches that don't care *which* architecture they run on
//! should build their registries from [`test_arch`] instead of
//! hardcoding a preset, so the whole suite can be re-pointed at another
//! simulated GPU (`BOLT_TEST_ARCH=a100 cargo test`) to shake out
//! arch-dependent assumptions.

use bolt_gpu_sim::GpuArch;

/// The architecture the test suite compiles for: the `BOLT_TEST_ARCH`
/// environment variable resolved through [`GpuArch::preset`] (`t4`,
/// `v100`, or `a100`), defaulting to Tesla T4.
///
/// # Panics
///
/// Panics when `BOLT_TEST_ARCH` is set to a name no preset matches —
/// silently falling back would run the suite on the wrong hardware
/// model.
pub fn test_arch() -> GpuArch {
    match std::env::var("BOLT_TEST_ARCH") {
        Ok(name) => GpuArch::preset(&name).unwrap_or_else(|| {
            panic!(
                "BOLT_TEST_ARCH={name:?} matches no preset (known: {})",
                GpuArch::PRESET_NAMES.join(", ")
            )
        }),
        Err(_) => GpuArch::tesla_t4(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_t4() {
        // The suite never sets BOLT_TEST_ARCH from inside a test (env
        // vars are process-global); this only checks the default path.
        if std::env::var_os("BOLT_TEST_ARCH").is_none() {
            assert_eq!(test_arch().name, "Tesla T4");
        }
    }
}
