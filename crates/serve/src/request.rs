//! Requests, responses, and the exactly-once completion slot.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use bolt_tensor::Tensor;

use crate::registry::ModelEngines;

/// Where a request's latency went (all values in microseconds of the
/// server's unified timeline; see DESIGN.md §7 for the mapping).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyBreakdown {
    /// Wall time from submission until the executing stream picked the
    /// batch up: queue wait + batch formation + stream backlog.
    pub queue_us: f64,
    /// Simulated kernel time of the batch this request rode in.
    pub kernel_us: f64,
    /// End-to-end: `queue_us + kernel_us`.
    pub total_us: f64,
}

/// A completed inference.
#[derive(Debug, Clone)]
pub struct InferResponse {
    /// The model that served the request.
    pub model: String,
    /// Outputs for this sample, in `Graph::outputs` order. `None` when
    /// the engine is timing-only (shapes-only parameters) or functional
    /// execution is disabled.
    pub outputs: Option<Vec<Tensor>>,
    /// How many real requests shared the batch.
    pub batch_size: usize,
    /// The engine bucket the batch executed on (≥ `batch_size`, except
    /// when the batch overflowed every bucket and was split).
    pub bucket: usize,
    /// Back-to-back engine launches that served the batch (1 unless the
    /// batch overflowed every compiled bucket and was split).
    pub launches: usize,
    /// True when the request was served on an online-tuning fallback
    /// path (over-padded bucket, overflow split, or heuristic
    /// default-config engine) instead of a tuned engine fitting the
    /// batch.
    pub fallback: bool,
    /// True when the model's circuit breaker was open at placement time:
    /// the request still completed, but on a degraded path with
    /// background tuning suspended (see
    /// [`crate::OnlineConfig::breaker_threshold`]).
    pub degraded: bool,
    /// Latency breakdown.
    pub latency: LatencyBreakdown,
}

/// The terminal state of an accepted request. Every accepted request
/// resolves to exactly one `Outcome`.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The request executed.
    Completed(InferResponse),
    /// The request was accepted but could not be executed (e.g. the
    /// kernel failed); `reason` explains why.
    Rejected {
        /// Human-readable failure description.
        reason: String,
    },
    /// The request was still queued past its deadline and was shed at
    /// batch-formation time instead of executed late.
    DeadlineExceeded {
        /// How long it had waited when it was shed, in microseconds.
        waited_us: f64,
    },
}

impl Outcome {
    /// True for [`Outcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, Outcome::Completed(_))
    }
}

/// One-shot, exactly-once completion slot shared between the client's
/// [`RequestHandle`] and the scheduler/worker that resolves it.
#[derive(Debug, Default)]
pub(crate) struct ResponseSlot {
    state: Mutex<Option<Outcome>>,
    cv: Condvar,
}

impl ResponseSlot {
    /// Resolves the slot. Panics if it was already resolved — the
    /// scheduler guarantees exactly-once completion, and a double resolve
    /// is a serving-layer bug worth crashing loudly over in tests.
    pub(crate) fn resolve(&self, outcome: Outcome) {
        assert!(
            self.try_resolve(outcome),
            "request resolved twice (second resolve on an already-terminal slot)"
        );
    }

    /// Resolves the slot if it is still pending; returns whether this
    /// call won. The panic-recovery path uses this instead of
    /// [`ResponseSlot::resolve`]: after a worker panic it cannot know
    /// which requests of the batch were already resolved.
    pub(crate) fn try_resolve(&self, outcome: Outcome) -> bool {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.is_some() {
            return false;
        }
        *state = Some(outcome);
        self.cv.notify_all();
        true
    }

    fn wait(&self) -> Outcome {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(outcome) = state.as_ref() {
                return outcome.clone();
            }
            state = self.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn wait_timeout(&self, timeout: Duration) -> Option<Outcome> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(outcome) = state.as_ref() {
                return Some(outcome.clone());
            }
            let remaining = deadline.checked_duration_since(std::time::Instant::now())?;
            let (guard, _) = self
                .cv
                .wait_timeout(state, remaining)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
    }

    fn try_get(&self) -> Option<Outcome> {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

/// Client-side handle to an accepted request.
#[derive(Debug, Clone)]
pub struct RequestHandle {
    /// Server-assigned request id (unique per server).
    pub id: u64,
    pub(crate) slot: Arc<ResponseSlot>,
}

impl RequestHandle {
    /// Blocks until the request reaches its terminal outcome.
    pub fn wait(&self) -> Outcome {
        self.slot.wait()
    }

    /// Blocks up to `timeout`; `None` if the request is still in flight.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Outcome> {
        self.slot.wait_timeout(timeout)
    }

    /// Non-blocking poll.
    pub fn try_wait(&self) -> Option<Outcome> {
        self.slot.try_get()
    }
}

/// An accepted request queued for batching (scheduler-internal).
#[derive(Debug)]
pub(crate) struct QueuedRequest {
    pub model: Arc<ModelEngines>,
    pub inputs: Vec<Tensor>,
    /// Submission instant on the server timeline, µs.
    pub submitted_us: f64,
    /// Absolute deadline on the server timeline, µs.
    pub deadline_us: Option<f64>,
    pub slot: Arc<ResponseSlot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_resolves_exactly_once_and_wakes_waiters() {
        let slot = Arc::new(ResponseSlot::default());
        let waiter = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || slot.wait())
        };
        assert!(slot.try_get().is_none());
        slot.resolve(Outcome::Rejected {
            reason: "test".into(),
        });
        match waiter.join().expect("waiter") {
            Outcome::Rejected { reason } => assert_eq!(reason, "test"),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "resolved twice")]
    fn double_resolve_panics() {
        let slot = ResponseSlot::default();
        slot.resolve(Outcome::DeadlineExceeded { waited_us: 1.0 });
        slot.resolve(Outcome::DeadlineExceeded { waited_us: 2.0 });
    }

    #[test]
    fn wait_timeout_returns_none_while_pending() {
        let slot = ResponseSlot::default();
        assert!(slot.wait_timeout(Duration::from_millis(5)).is_none());
    }
}
