//! Serving metrics: counters, latency percentiles, batch-size histogram,
//! and per-kernel attribution from the execution plan's step observer.

use std::collections::{BTreeMap, VecDeque};

use bolt::StepTimings;
use parking_lot::Mutex;

use crate::online::OnlineSnapshot;

/// How many of the most recent completions feed the windowed
/// [`MetricsSnapshot::latency_recent_p99_us`] estimate. Cumulative
/// percentiles cannot move once thousands of samples accumulate; an
/// autoscaler needs a signal that tracks *current* load.
const RECENT_WINDOW: usize = 256;

/// Shared mutable metrics store (internal; readers take
/// [`MetricsSnapshot`]s).
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    submitted: u64,
    accepted: u64,
    completed: u64,
    rejected_unknown_model: u64,
    rejected_invalid_input: u64,
    rejected_queue_full: u64,
    rejected_shutting_down: u64,
    rejected_no_engine: u64,
    rejected_execution: u64,
    deadline_shed: u64,
    deadline_shed_dequeue: u64,
    worker_panics: u64,
    worker_restarts: u64,
    degraded: u64,
    batches: u64,
    batch_overflow: u64,
    /// Live gauge: requests sitting in scheduler queues right now.
    queue_depth: u64,
    /// Live gauge: requests inside formed batches (dispatched, not yet
    /// resolved).
    inflight: u64,
    latencies_us: Vec<f64>,
    /// Ring of the last [`RECENT_WINDOW`] completion latencies.
    recent_latencies_us: VecDeque<f64>,
    batch_sizes: BTreeMap<usize, u64>,
    images_per_sec: Vec<f64>,
    /// FLOPs spent on real request rows across every launch.
    real_flops: f64,
    /// FLOPs the launches actually issued (bucket-sized, pad rows
    /// included).
    launched_flops: f64,
    /// Step name → (launches, total simulated µs) across every batch.
    kernel_us: BTreeMap<String, (u64, f64)>,
}

impl Metrics {
    pub(crate) fn submitted(&self) {
        self.inner.lock().submitted += 1;
    }

    pub(crate) fn accepted(&self) {
        let mut inner = self.inner.lock();
        inner.accepted += 1;
        inner.queue_depth += 1;
    }

    /// Moves `n` requests from the queued gauge to the in-flight gauge:
    /// the batcher formed them into batches.
    pub(crate) fn dequeued(&self, n: usize) {
        let mut inner = self.inner.lock();
        inner.queue_depth = inner.queue_depth.saturating_sub(n as u64);
        inner.inflight += n as u64;
    }

    /// Moves one request back from the in-flight gauge to the queued
    /// gauge: the KV governor preempted a live sequence (or bounced an
    /// admission) back into the queue for a later retry.
    pub(crate) fn requeued(&self) {
        let mut inner = self.inner.lock();
        inner.inflight = inner.inflight.saturating_sub(1);
        inner.queue_depth += 1;
    }

    /// Cheap live load gauges, read without snapshotting the histograms.
    pub(crate) fn gauges(&self) -> LoadGauges {
        let inner = self.inner.lock();
        LoadGauges {
            queue_depth: inner.queue_depth,
            inflight: inner.inflight,
            accepted: inner.accepted,
            completed: inner.completed,
            recent_p99_us: recent_p99(&inner.recent_latencies_us),
        }
    }

    pub(crate) fn rejected_unknown_model(&self) {
        self.inner.lock().rejected_unknown_model += 1;
    }

    pub(crate) fn rejected_invalid_input(&self) {
        self.inner.lock().rejected_invalid_input += 1;
    }

    pub(crate) fn rejected_queue_full(&self) {
        self.inner.lock().rejected_queue_full += 1;
    }

    pub(crate) fn rejected_shutting_down(&self) {
        self.inner.lock().rejected_shutting_down += 1;
    }

    pub(crate) fn rejected_no_engine(&self) {
        self.inner.lock().rejected_no_engine += 1;
    }

    pub(crate) fn rejected_execution(&self) {
        let mut inner = self.inner.lock();
        inner.rejected_execution += 1;
        inner.inflight = inner.inflight.saturating_sub(1);
    }

    /// Records one batch that exceeded every compiled bucket and was
    /// explicitly split across repeated launches.
    pub(crate) fn batch_overflow(&self) {
        self.inner.lock().batch_overflow += 1;
    }

    pub(crate) fn deadline_shed(&self) {
        let mut inner = self.inner.lock();
        inner.deadline_shed += 1;
        // Shed at formation: the request left its queue without ever
        // becoming in-flight.
        inner.queue_depth = inner.queue_depth.saturating_sub(1);
    }

    /// Records a request whose deadline had passed by the time a worker
    /// dequeued its batch (formation-time shedding missed it).
    pub(crate) fn deadline_shed_dequeue(&self) {
        let mut inner = self.inner.lock();
        inner.deadline_shed_dequeue += 1;
        inner.inflight = inner.inflight.saturating_sub(1);
    }

    /// Records a panic isolated inside per-batch execution.
    pub(crate) fn worker_panic(&self) {
        self.inner.lock().worker_panics += 1;
    }

    /// Records a worker thread respawned by the supervisor.
    pub(crate) fn worker_restarted(&self) {
        self.inner.lock().worker_restarts += 1;
    }

    /// Records a request completed while its model's circuit breaker was
    /// open (degraded response).
    pub(crate) fn degraded(&self) {
        self.inner.lock().degraded += 1;
    }

    /// Records one launch's FLOP accounting: `real` FLOPs went to actual
    /// request rows, `launched` FLOPs were issued by the bucket-sized
    /// kernel (pad rows included). The running totals feed
    /// [`MetricsSnapshot::padding_fraction`]. Both the legacy
    /// pad-to-bucket batcher and the continuous batcher report here, so
    /// the two paths' padding waste is directly comparable.
    pub(crate) fn launch_flops(&self, real: f64, launched: f64) {
        debug_assert!(real <= launched + 1e-6, "{real} real > {launched} launched");
        let mut inner = self.inner.lock();
        inner.real_flops += real.max(0.0);
        inner.launched_flops += launched.max(0.0);
    }

    /// Records one dispatched batch: `size` real requests, achieved
    /// simulated throughput from `TimingReport::images_per_sec`.
    pub(crate) fn batch(&self, size: usize, images_per_sec: f64) {
        let mut inner = self.inner.lock();
        inner.batches += 1;
        *inner.batch_sizes.entry(size).or_insert(0) += 1;
        inner.images_per_sec.push(images_per_sec);
    }

    pub(crate) fn completed(&self, latency_us: f64) {
        let mut inner = self.inner.lock();
        inner.completed += 1;
        inner.inflight = inner.inflight.saturating_sub(1);
        inner.latencies_us.push(latency_us);
        if inner.recent_latencies_us.len() == RECENT_WINDOW {
            inner.recent_latencies_us.pop_front();
        }
        inner.recent_latencies_us.push_back(latency_us);
    }

    /// Folds one batch's per-step timings (from the plan's
    /// [`bolt::StepObserver`] hook) into the per-kernel totals.
    pub(crate) fn kernel_times(&self, timings: &StepTimings) {
        let mut inner = self.inner.lock();
        for step in &timings.steps {
            let entry = inner.kernel_us.entry(step.name.clone()).or_insert((0, 0.0));
            entry.0 += 1;
            entry.1 += step.total_us;
        }
    }

    pub(crate) fn snapshot(
        &self,
        wall_elapsed_us: f64,
        model_workspace: Vec<(String, u64)>,
        online: Option<OnlineSnapshot>,
    ) -> MetricsSnapshot {
        let inner = self.inner.lock();
        let mut sorted = inner.latencies_us.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let total_batched: u64 = inner
            .batch_sizes
            .iter()
            .map(|(size, count)| *size as u64 * count)
            .sum();
        let mean_batch = if inner.batches > 0 {
            total_batched as f64 / inner.batches as f64
        } else {
            0.0
        };
        let mean_images_per_sec = if inner.images_per_sec.is_empty() {
            0.0
        } else {
            inner.images_per_sec.iter().sum::<f64>() / inner.images_per_sec.len() as f64
        };
        let mut kernel_stats: Vec<KernelStat> = inner
            .kernel_us
            .iter()
            .map(|(name, &(launches, total_us))| KernelStat {
                name: name.clone(),
                launches,
                total_us,
                mean_us: total_us / launches.max(1) as f64,
            })
            .collect();
        kernel_stats.sort_by(|a, b| {
            b.total_us
                .partial_cmp(&a.total_us)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        MetricsSnapshot {
            queue_depth: inner.queue_depth,
            inflight: inner.inflight,
            submitted: inner.submitted,
            accepted: inner.accepted,
            completed: inner.completed,
            rejected: inner.rejected_unknown_model
                + inner.rejected_invalid_input
                + inner.rejected_queue_full
                + inner.rejected_shutting_down
                + inner.rejected_no_engine
                + inner.rejected_execution,
            rejected_unknown_model: inner.rejected_unknown_model,
            rejected_invalid_input: inner.rejected_invalid_input,
            rejected_queue_full: inner.rejected_queue_full,
            rejected_shutting_down: inner.rejected_shutting_down,
            rejected_no_engine: inner.rejected_no_engine,
            rejected_execution: inner.rejected_execution,
            deadline_shed: inner.deadline_shed,
            deadline_shed_dequeue: inner.deadline_shed_dequeue,
            worker_panics: inner.worker_panics,
            worker_restarts: inner.worker_restarts,
            degraded: inner.degraded,
            batches: inner.batches,
            batch_overflow: inner.batch_overflow,
            padding_fraction: if inner.launched_flops > 0.0 {
                ((inner.launched_flops - inner.real_flops) / inner.launched_flops).max(0.0)
            } else {
                0.0
            },
            real_flops: inner.real_flops,
            launched_flops: inner.launched_flops,
            mean_batch,
            batch_hist: inner
                .batch_sizes
                .iter()
                .map(|(&size, &count)| (size, count))
                .collect(),
            latency_mean_us: if sorted.is_empty() {
                0.0
            } else {
                sorted.iter().sum::<f64>() / sorted.len() as f64
            },
            latency_p50_us: percentile(&sorted, 0.50),
            latency_p95_us: percentile(&sorted, 0.95),
            latency_p99_us: percentile(&sorted, 0.99),
            latency_recent_p99_us: recent_p99(&inner.recent_latencies_us),
            latency_max_us: sorted.last().copied().unwrap_or(0.0),
            sim_images_per_sec: mean_images_per_sec,
            wall_elapsed_us,
            throughput_rps: if wall_elapsed_us > 0.0 {
                inner.completed as f64 / (wall_elapsed_us / 1e6)
            } else {
                0.0
            },
            kernel_stats,
            model_workspace,
            online,
            // Filled in by the continuous batcher after the generic
            // snapshot: only it owns a KV arena.
            kv_governor: None,
        }
    }
}

/// Point-in-time view of the KV memory governor: the paged block pool's
/// occupancy plus the admission/preemption counters that show how hard
/// the budget is squeezing the batcher.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KvGovernorSnapshot {
    /// Blocks currently attached to live sequences.
    pub kv_blocks_in_use: usize,
    /// Blocks currently available to admissions and decode growth
    /// (`budget - in_use - withheld`).
    pub kv_blocks_free: usize,
    /// The hard pool ceiling the governor enforces.
    pub kv_budget_blocks: usize,
    /// KV rows per block (the paging granularity).
    pub kv_block_rows: usize,
    /// Bytes of every materialized block, leased or pooled — what the
    /// arena actually holds resident on the accelerator.
    pub kv_resident_bytes: u64,
    /// Sequences evicted mid-decode to free blocks for others; each one
    /// re-queues and replays its tokens through prefill.
    pub preemptions: u64,
    /// Tokens recomputed by those replays (the recompute cost of
    /// preempt-and-recompute, in tokens).
    pub recompute_tokens: u64,
    /// Fresh tensor allocations the arena ever made; flat in steady
    /// state once the pool is warm.
    pub kv_fresh_allocations: u64,
    /// Chaos-injected memory-pressure episodes observed
    /// ([`bolt::FaultSite::KvPressure`]).
    pub kv_pressure_events: u64,
}

/// Aggregated simulated time of one kernel (step name) across every
/// dispatched batch, from the execution plan's per-step observer.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStat {
    /// The step's display name (e.g. `serve.fc0+bias+relu`).
    pub name: String,
    /// How many batches launched this kernel.
    pub launches: u64,
    /// Total simulated time across launches, µs.
    pub total_us: f64,
    /// Mean simulated time per launch, µs.
    pub mean_us: f64,
}

/// p99 over the bounded recent-completion window (unsorted ring).
fn recent_p99(ring: &VecDeque<f64>) -> f64 {
    if ring.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = ring.iter().copied().collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    percentile(&sorted, 0.99)
}

/// Instantaneous load gauges, readable without the full snapshot's
/// histogram work — what a cluster router polls on every placement
/// decision ([`crate::BoltServer::load`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LoadGauges {
    /// Requests sitting in scheduler queues right now.
    pub queue_depth: u64,
    /// Requests inside formed batches (dispatched, not yet resolved).
    pub inflight: u64,
    /// Cumulative accepted counter (monotonic).
    pub accepted: u64,
    /// Cumulative completed counter (monotonic).
    pub completed: u64,
    /// p99 latency over the last few hundred completions, µs — tracks
    /// *current* load where the cumulative p99 cannot move.
    pub recent_p99_us: f64,
}

impl LoadGauges {
    /// Requests the server has admitted but not yet resolved: the load
    /// a router should balance on.
    pub fn outstanding(&self) -> u64 {
        self.queue_depth + self.inflight
    }
}

/// Percentile over a **sorted** slice (nearest-rank); 0 when empty.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A consistent point-in-time view of the server's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Live gauge: requests sitting in scheduler queues at snapshot
    /// time. Returns to zero after a drain.
    pub queue_depth: u64,
    /// Live gauge: requests inside formed batches (dispatched to a
    /// worker, not yet resolved) at snapshot time. Returns to zero after
    /// a drain.
    pub inflight: u64,
    /// Submit attempts, including rejected ones.
    pub submitted: u64,
    /// Requests admitted to a queue (each resolves to exactly one
    /// terminal [`crate::Outcome`]).
    pub accepted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Total rejections, at admission (unknown model, invalid input,
    /// queue full, shutting down) plus post-admission execution failures.
    pub rejected: u64,
    /// Admission rejections: unknown model name.
    pub rejected_unknown_model: u64,
    /// Admission rejections: input shape/arity mismatch.
    pub rejected_invalid_input: u64,
    /// Admission rejections: bounded queue was full (backpressure).
    pub rejected_queue_full: u64,
    /// Admission rejections: server was draining.
    pub rejected_shutting_down: u64,
    /// Admission rejections: the model has no compiled engine and no
    /// online tuning path exists to create one.
    pub rejected_no_engine: u64,
    /// Accepted requests whose batch failed to execute.
    pub rejected_execution: u64,
    /// Accepted requests shed at batch formation because their deadline
    /// had already passed.
    pub deadline_shed: u64,
    /// Accepted requests shed at worker dequeue time: their deadline
    /// passed after batch formation, while the batch waited for a
    /// stream (e.g. behind a slow batch).
    pub deadline_shed_dequeue: u64,
    /// Panics isolated inside per-batch execution (every request of the
    /// affected batch resolves [`crate::Outcome::Rejected`]).
    pub worker_panics: u64,
    /// Worker threads respawned by the supervisor after a panic escaped
    /// the batch loop; the pool never shrinks.
    pub worker_restarts: u64,
    /// Requests completed while their model's circuit breaker was open
    /// (`degraded: true` in the response).
    pub degraded: u64,
    /// Batches dispatched to workers.
    pub batches: u64,
    /// Batches that exceeded every compiled bucket and were explicitly
    /// split across repeated launches of the largest bucket.
    pub batch_overflow: u64,
    /// Fraction of launched FLOPs wasted on pad rows: batches run on
    /// bucket-sized kernels, and every row past the real batch (or, for
    /// the continuous LLM batcher, past the live sequences) is padding.
    /// `(launched - real) / launched` over all launches; 0 before any
    /// launch.
    pub padding_fraction: f64,
    /// Cumulative useful FLOPs across all launches (real rows only).
    pub real_flops: f64,
    /// Cumulative launched FLOPs across all launches (bucket-sized).
    pub launched_flops: f64,
    /// Mean real requests per dispatched batch.
    pub mean_batch: f64,
    /// `(batch_size, count)` pairs, ascending by size.
    pub batch_hist: Vec<(usize, u64)>,
    /// Mean end-to-end latency, µs.
    pub latency_mean_us: f64,
    /// Median end-to-end latency, µs.
    pub latency_p50_us: f64,
    /// 95th-percentile latency, µs.
    pub latency_p95_us: f64,
    /// 99th-percentile latency, µs.
    pub latency_p99_us: f64,
    /// p99 latency over the most recent completions only (bounded
    /// window) — the autoscaler's signal, since the cumulative p99
    /// barely moves once enough history accumulates.
    pub latency_recent_p99_us: f64,
    /// Worst observed latency, µs.
    pub latency_max_us: f64,
    /// Mean per-batch simulated throughput
    /// (`TimingReport::images_per_sec` over real batch size).
    pub sim_images_per_sec: f64,
    /// Wall-clock time the snapshot covers, µs.
    pub wall_elapsed_us: f64,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
    /// Per-kernel simulated time attribution, descending by total time —
    /// where batches actually spend their latency.
    pub kernel_stats: Vec<KernelStat>,
    /// `(model, workspace_bytes)` per registered model: the peak
    /// intermediate memory its largest bucket's plan needs.
    pub model_workspace: Vec<(String, u64)>,
    /// Online tuning counters, when the server runs with
    /// [`crate::OnlineConfig`] set.
    pub online: Option<OnlineSnapshot>,
    /// KV memory-governor gauges, when the snapshot comes from the
    /// continuous LLM batcher (`None` for the request/response paths,
    /// which hold no KV state).
    pub kv_governor: Option<KvGovernorSnapshot>,
}

impl MetricsSnapshot {
    /// Requests with a terminal outcome: completed + shed (at formation
    /// or dequeue) + execution failures. Equals
    /// [`MetricsSnapshot::accepted`] once the server has drained.
    pub fn resolved(&self) -> u64 {
        self.completed + self.deadline_shed + self.deadline_shed_dequeue + self.rejected_execution
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile(&sorted, 0.50), 50.0);
        assert_eq!(percentile(&sorted, 0.95), 95.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&[], 0.99), 0.0);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
    }

    #[test]
    fn snapshot_aggregates_batches_and_latencies() {
        let m = Metrics::default();
        for _ in 0..3 {
            m.submitted();
            m.accepted();
        }
        m.batch(2, 1000.0);
        m.batch(1, 500.0);
        m.completed(10.0);
        m.completed(20.0);
        m.completed(30.0);
        let s = m.snapshot(1e6, vec![("mlp-small".into(), 4096)], None);
        assert_eq!(s.accepted, 3);
        assert_eq!(s.completed, 3);
        assert_eq!(s.batches, 2);
        assert!((s.mean_batch - 1.5).abs() < 1e-9);
        assert_eq!(s.batch_hist, vec![(1, 1), (2, 1)]);
        assert_eq!(s.latency_p50_us, 20.0);
        assert_eq!(s.latency_max_us, 30.0);
        assert!((s.throughput_rps - 3.0).abs() < 1e-9);
        assert_eq!(s.resolved(), 3);
        assert_eq!(s.model_workspace, vec![("mlp-small".to_string(), 4096)]);
    }

    #[test]
    fn gauges_track_queue_and_inflight_lifecycle() {
        let m = Metrics::default();
        for _ in 0..4 {
            m.submitted();
            m.accepted();
        }
        let g = m.gauges();
        assert_eq!((g.queue_depth, g.inflight), (4, 0));
        assert_eq!(g.outstanding(), 4);

        // One request shed while still queued.
        m.deadline_shed();
        // The other three form a batch.
        m.dequeued(3);
        let g = m.gauges();
        assert_eq!((g.queue_depth, g.inflight), (0, 3));

        // One shed at dequeue, one completes, one fails in execution.
        m.deadline_shed_dequeue();
        m.completed(42.0);
        m.rejected_execution();
        let g = m.gauges();
        assert_eq!((g.queue_depth, g.inflight), (0, 0));
        assert_eq!(g.outstanding(), 0);
        assert_eq!(g.recent_p99_us, 42.0);

        let s = m.snapshot(1e6, vec![], None);
        assert_eq!((s.queue_depth, s.inflight), (0, 0));
        assert_eq!(s.latency_recent_p99_us, 42.0);
        assert_eq!(s.resolved(), s.accepted);
    }

    #[test]
    fn recent_p99_windows_out_old_latencies() {
        let m = Metrics::default();
        // Fill the window with slow completions, then overwrite it with
        // fast ones: the cumulative p99 stays slow, the recent p99 drops.
        for _ in 0..RECENT_WINDOW {
            m.accepted();
            m.dequeued(1);
            m.completed(10_000.0);
        }
        for _ in 0..RECENT_WINDOW {
            m.accepted();
            m.dequeued(1);
            m.completed(10.0);
        }
        let s = m.snapshot(1e6, vec![], None);
        assert_eq!(s.latency_recent_p99_us, 10.0);
        assert_eq!(s.latency_p99_us, 10_000.0);
    }

    #[test]
    fn padding_fraction_weights_pad_rows_by_flops() {
        let m = Metrics::default();
        let s = m.snapshot(1e6, vec![], None);
        assert_eq!(s.padding_fraction, 0.0, "no launches, no padding");

        // 3 real rows on a bucket of 4, then a full bucket of 4: 8 rows
        // launched for 7 real. With 100 FLOPs/row: 100 of 800 wasted.
        m.launch_flops(300.0, 400.0);
        m.launch_flops(400.0, 400.0);
        let s = m.snapshot(1e6, vec![], None);
        assert!((s.padding_fraction - 100.0 / 800.0).abs() < 1e-12);
    }

    #[test]
    fn kernel_times_aggregate_across_batches() {
        use bolt::StepTiming;
        let m = Metrics::default();
        let timings = StepTimings {
            steps: vec![
                StepTiming {
                    index: 0,
                    name: "fc0".into(),
                    total_us: 10.0,
                    launch_us: 1.0,
                },
                StepTiming {
                    index: 1,
                    name: "fc1".into(),
                    total_us: 30.0,
                    launch_us: 1.0,
                },
            ],
        };
        m.kernel_times(&timings);
        m.kernel_times(&timings);
        let s = m.snapshot(1e6, vec![], None);
        assert_eq!(s.kernel_stats.len(), 2);
        // Descending by total time.
        assert_eq!(s.kernel_stats[0].name, "fc1");
        assert_eq!(s.kernel_stats[0].launches, 2);
        assert!((s.kernel_stats[0].total_us - 60.0).abs() < 1e-9);
        assert!((s.kernel_stats[0].mean_us - 30.0).abs() < 1e-9);
    }
}
