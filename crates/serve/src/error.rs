//! Error type for the serving layer.

use std::fmt;

use bolt::BoltError;

/// Errors surfaced to serving clients at registration or admission time.
///
/// A request that is *accepted* (its [`crate::BoltServer::submit`] call
/// returned a handle) never produces a `ServeError` afterwards: every
/// accepted request resolves to exactly one terminal
/// [`crate::Outcome`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The server configuration is unusable ([`crate::ServeConfig`]
    /// validation at construction): zero workers, zero max batch, zero
    /// queue capacity, or a zero batch timeout with no default deadline
    /// (partial batches would flush in a hot loop with nothing shedding
    /// them). Rejected at [`crate::BoltServer::start`] instead of
    /// panicking or hanging downstream.
    Config {
        /// Which invariant the configuration violates.
        reason: String,
    },
    /// The named model was never registered.
    UnknownModel {
        /// The requested model name.
        name: String,
    },
    /// The request's inputs do not match the model's sample signature.
    InvalidInput {
        /// Target model.
        model: String,
        /// Expected vs. got description.
        reason: String,
    },
    /// The model's bounded request queue is full (backpressure): retry
    /// later or slow down.
    QueueFull {
        /// Target model.
        model: String,
        /// The configured per-queue capacity that was hit.
        capacity: usize,
    },
    /// No compiled engine can serve the model and the server has no
    /// online tuning path to create one (the model was registered
    /// dynamically with zero buckets but [`crate::OnlineConfig`] is not
    /// set).
    NoEngine {
        /// Target model.
        model: String,
        /// Why no engine is available.
        reason: String,
    },
    /// The server is draining and no longer accepts new work.
    ShuttingDown,
    /// Compiling an engine for a registered model failed.
    Compile(BoltError),
    /// A panic was caught and isolated inside a serving component (a
    /// batch worker or a background compile); the work it was carrying
    /// is reported failed instead of crashing the thread pool.
    Panicked {
        /// What was executing when the panic fired.
        component: String,
        /// The panic payload's message, when it carried one.
        message: String,
    },
}

/// Best-effort extraction of a panic payload's message (`&str` and
/// `String` payloads; anything else is opaque).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config { reason } => {
                write!(f, "invalid serve configuration: {reason}")
            }
            ServeError::UnknownModel { name } => write!(f, "unknown model {name:?}"),
            ServeError::InvalidInput { model, reason } => {
                write!(f, "invalid input for model {model:?}: {reason}")
            }
            ServeError::QueueFull { model, capacity } => {
                write!(f, "queue for model {model:?} is full (capacity {capacity})")
            }
            ServeError::NoEngine { model, reason } => {
                write!(f, "no engine for model {model:?}: {reason}")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Compile(e) => write!(f, "engine compilation failed: {e}"),
            ServeError::Panicked { component, message } => {
                write!(f, "panic isolated in {component}: {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Compile(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BoltError> for ServeError {
    fn from(e: BoltError) -> Self {
        ServeError::Compile(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_model() {
        let e = ServeError::QueueFull {
            model: "mlp-small".into(),
            capacity: 4,
        };
        assert!(e.to_string().contains("mlp-small"));
        assert!(e.to_string().contains('4'));
        let c: ServeError = BoltError::BadInput { reason: "x".into() }.into();
        assert!(c.to_string().contains("compilation failed"));
    }
}
