#![warn(missing_docs)]
//! # bolt-serve
//!
//! A multi-model, dynamic-batching inference server layered on compiled
//! Bolt engines — the deployment tier the paper's "auto-tuning fast
//! enough to use as a JIT" pitch feeds into.
//!
//! The subsystem has five moving parts:
//!
//! 1. **Engine registry** ([`EngineRegistry`]) — compiles each model once
//!    per batch bucket through one shared [`bolt::BoltCompiler`] (hitting
//!    the profiler and on-disk autotune caches) and shares the immutable
//!    `Arc<CompiledModel>` engines across threads.
//! 2. **Dynamic-batching scheduler** — single-sample requests queue per
//!    (model, shape); a batch dispatches when `max_batch` requests wait
//!    or the oldest has waited `batch_timeout`.
//! 3. **Worker pool** — each worker models one GPU stream: it executes
//!    the batch functionally (`CompiledModel::run_batched`, when the
//!    model's parameters are materialized) and prices it on the
//!    `bolt-gpu-sim` timeline, yielding per-request latency = queue wait
//!    + stream backlog + simulated kernel time.
//! 4. **Admission control & metrics** — bounded queues reject with
//!    backpressure, late requests are shed at batch formation, shutdown
//!    drains gracefully, and [`BoltServer::metrics`] snapshots counters,
//!    latency percentiles, and the achieved batch-size histogram.
//! 5. **Online tuning & engine lifecycle** ([`OnlineEngineManager`],
//!    enabled by [`ServeConfig::online`]) — unseen batch shapes are
//!    served immediately on a fallback path (nearest bucket, explicit
//!    split, or a heuristic default-config engine) while a background
//!    tuner pool compiles the missing bucket through the shared,
//!    cache-warm compiler and hot-swaps it in; engines are evicted
//!    least-recently-used under a memory budget.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use bolt::BoltConfig;
//! use bolt_gpu_sim::GpuArch;
//! use bolt_serve::{BoltServer, EngineRegistry, Outcome, ServeConfig};
//! use bolt_tensor::{DType, Tensor};
//!
//! let registry = Arc::new(EngineRegistry::new(GpuArch::tesla_t4(), BoltConfig::default()));
//! registry.register_zoo("mlp-small", &[1, 2]).unwrap();
//!
//! let server = BoltServer::start(registry, ServeConfig::default()).unwrap();
//! let outcome = server
//!     .infer("mlp-small", vec![Tensor::randn(&[1, 128], DType::F16, 1)])
//!     .unwrap();
//! assert!(matches!(outcome, Outcome::Completed(_)));
//! let stats = server.shutdown();
//! assert_eq!(stats.completed, 1);
//! ```

pub mod config;
pub mod continuous;
pub mod error;
pub mod metrics;
pub mod online;
pub mod registry;
pub mod request;
mod scheduler;
pub mod server;
pub mod testing;

pub use config::ServeConfig;
pub use continuous::{
    BatchMode, ContinuousBatcher, FinishReason, LlmServeConfig, LlmStats, SequenceRequest,
    SequenceResult, StepReport,
};
pub use error::{panic_message, ServeError};
pub use metrics::{KernelStat, KvGovernorSnapshot, LoadGauges, MetricsSnapshot};
pub use online::{
    Acquired, EngineState, FailedBucket, OnlineConfig, OnlineEngineManager, OnlineSnapshot,
};
pub use registry::{EngineRegistry, ModelEngines, Placement};
pub use request::{InferResponse, LatencyBreakdown, Outcome, RequestHandle};
pub use server::BoltServer;

/// Result alias for serving operations.
pub type Result<T> = std::result::Result<T, ServeError>;
