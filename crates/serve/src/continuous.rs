//! Continuous batching for autoregressive LLM serving (ISSUE 9
//! tentpole): per-step slot admission and retirement over a decode-step
//! transformer, replacing pad-to-bucket batching for the autoregressive
//! path while the existing [`crate::BoltServer`] batcher keeps serving
//! fixed-shape models.
//!
//! # Why the fixed-shape batcher cannot serve an LLM
//!
//! The legacy scheduler forms a batch once and runs it to completion on
//! a bucket-sized engine. An autoregressive sequence instead needs one
//! skinny GEMM launch *per generated token*, and different sequences
//! finish at different times: under pad-to-bucket semantics a cohort of
//! 8 sequences keeps launching 8-row kernels until the *last* one
//! finishes, burning pad-row FLOPs on every finished slot and making
//! queued prompts wait for the whole cohort to drain.
//!
//! The [`ContinuousBatcher`] instead re-forms the batch **every decode
//! step**:
//!
//! * **Admission** — free slots are filled from the queue at each step;
//!   a prompt runs its prefill (wide GEMM, M = prompt length)
//!   immediately and joins the next decode step. Step-level deadline
//!   accounting sheds queued sequences whose deadline already passed and
//!   evicts live sequences mid-generation.
//! * **Decode** — all live sequences advance together through skinny
//!   GEMMs whose M is the *live* count, shifting every step as
//!   sequences join and finish. Unseen `(sub-model, M)` buckets are
//!   served through the [`OnlineEngineManager`] heuristic fallback and
//!   hot-swap to tuned engines mid-stream.
//! * **Retirement** — finished sequences leave their slot at the end of
//!   the step (mid-batch eviction); their KV workspace returns to the
//!   [`bolt::KvArena`] for allocation-free re-admission.
//!
//! # Bit-identity
//!
//! Token streams are **bit-identical** to sequential per-sequence
//! execution, whatever the interleaving: GEMM rows are independent and
//! f32 accumulation order per output element never depends on M (or on
//! the tile config a hot-swapped engine picked), sub-model weights are
//! reseeded by name so every M bucket carries identical parameters, and
//! attention is per-sequence host math against the sequence's own KV
//! rows. The decode step is **transactional**: KV rows are written in
//! place but published only by `commit`, and tokens append only after
//! the whole step's compute succeeded — a mid-step worker kill (chaos
//! [`bolt::FaultSite::WorkerKill`]) retries the step with no rollback
//! logic and no lost or duplicated tokens.
//!
//! # The KV memory governor
//!
//! KV memory is paged: sequences hold fixed-size blocks
//! ([`bolt::KvSpec::block_rows`] positions each) from a budgeted
//! [`bolt::KvArena`] pool, growing their block table one block at a
//! time as decode advances. Because real accelerator memory is finite,
//! the batcher governs the pool with two policies:
//!
//! * **Watermark admission** — a prompt is admitted only when its
//!   prefill blocks *plus* a configurable reserve
//!   ([`LlmServeConfig::kv_reserve_blocks`], headroom for the live
//!   batch's decode growth) fit in the free pool; otherwise it waits at
//!   the head of the queue.
//! * **Preempt-and-recompute** — when decode growth itself runs out of
//!   blocks (admitted optimistically, or squeezed by a chaos
//!   [`bolt::FaultSite::KvPressure`] episode withholding part of the
//!   pool), the governor evicts the victim with the fewest generated
//!   tokens (ties: youngest), releases its blocks, and re-queues it at
//!   the front. The victim replays prompt + generated tokens through a
//!   later prefill — recompute instead of swap, exactly like the
//!   recomputation path of vLLM-style paged attention.
//!
//! Preemption preserves every guarantee above: argmax decoding is
//! deterministic and attention visits positions in order across block
//! boundaries, so a replayed prefill reproduces the victim's KV state
//! bit for bit and its continuation is the stream it would have
//! generated unpreempted. Replayed tokens are counted once (the replay
//! prefill's "first token" is genuinely new output); the recompute cost
//! is visible in [`LlmStats::recompute_tokens`].

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use bolt::{BoltConfig, BoltError, KvArena, KvSpec};
use bolt_gpu_sim::GpuArch;
use bolt_models::llm::{
    lm_head_graph, lm_head_name, post_graph, post_name, qkv_graph, qkv_name, DecoderModel,
};
use bolt_models::llm_by_name;
use bolt_tensor::{DType, Tensor};

use crate::metrics::{KvGovernorSnapshot, Metrics, MetricsSnapshot};
use crate::online::{OnlineConfig, OnlineEngineManager};
use crate::registry::{EngineRegistry, ModelEngines};
use crate::{Result, ServeError};

/// Memoized engine prices the batcher keeps (same bound as the server's
/// per-worker price cache).
const PRICE_CACHE_CAP: usize = 64;

/// How the batcher re-forms batches across decode steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchMode {
    /// Per-step join/leave: finished sequences are evicted mid-batch and
    /// free slots refill from the queue every step.
    Continuous,
    /// The pad-to-bucket baseline: a cohort is admitted only when all
    /// slots are free, and finished sequences keep occupying their rows
    /// as padding until the whole cohort drains.
    StaticCohort,
}

/// One autoregressive generation request.
#[derive(Debug, Clone)]
pub struct SequenceRequest {
    /// Prompt token ids, each `< vocab`; non-empty, shorter than the
    /// model's context window.
    pub prompt: Vec<u32>,
    /// Tokens to generate (≥ 1); generation may stop earlier on context
    /// exhaustion or deadline.
    pub max_new_tokens: usize,
    /// Absolute simulated-clock deadline, µs. Queued sequences past it
    /// are shed unstarted; live sequences are evicted mid-generation.
    pub deadline_us: Option<f64>,
}

/// Why a sequence left its slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishReason {
    /// Generated `max_new_tokens`.
    Length,
    /// The KV workspace reached the model's context window.
    ContextFull,
    /// Shed before starting or evicted mid-generation past its deadline.
    DeadlineExceeded,
    /// The step's compute failed (engine error); partial tokens stand.
    Failed,
}

/// A retired sequence.
#[derive(Debug, Clone)]
pub struct SequenceResult {
    /// Id assigned at [`ContinuousBatcher::submit`], in submission order.
    pub id: u64,
    /// Prompt length, tokens.
    pub prompt_len: usize,
    /// Generated tokens (prompt excluded), in order.
    pub tokens: Vec<u32>,
    /// Simulated time from submission to the first generated token;
    /// `None` when shed before prefill.
    pub ttft_us: Option<f64>,
    /// Simulated submission timestamp, µs.
    pub submitted_us: f64,
    /// Simulated retirement timestamp, µs.
    pub finished_us: f64,
    /// Why the sequence retired.
    pub finish: FinishReason,
}

/// What one [`ContinuousBatcher::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepReport {
    /// Sequences admitted (prefilled) this step.
    pub admitted: usize,
    /// Tokens decoded this step (one per live sequence).
    pub decoded: usize,
    /// Sequences retired this step (finished, evicted, or shed).
    pub retired: usize,
    /// Live slots after the step.
    pub live: usize,
    /// Queued sequences after the step.
    pub queued: usize,
    /// Simulated time the step consumed, µs.
    pub sim_us: f64,
}

/// Cumulative batcher counters (see [`ContinuousBatcher::metrics`] for
/// the full serving-metrics view including `padding_fraction`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LlmStats {
    /// Decode steps executed (committed, not counting chaos retries).
    pub steps: u64,
    /// Prefills run (sequences admitted to a slot).
    pub prefills: u64,
    /// Tokens generated across all sequences (prefill first tokens plus
    /// decode tokens).
    pub generated_tokens: u64,
    /// Decode attempts retried after a mid-step worker kill.
    pub step_retries: u64,
    /// Kernel launches issued (prefill + decode, all sub-models).
    pub launches: u64,
    /// Launches served on an online-tuning fallback engine (heuristic or
    /// over-padded) before the tuned bucket hot-swapped in.
    pub fallback_launches: u64,
    /// Live sequences evicted by the KV governor to free blocks; each
    /// re-queues and replays through prefill.
    pub preemptions: u64,
    /// Tokens replayed by preempted sequences' recovery prefills (the
    /// recompute cost of preempt-and-recompute).
    pub recompute_tokens: u64,
    /// Chaos-injected KV memory-pressure episodes observed
    /// ([`bolt::FaultSite::KvPressure`]).
    pub kv_pressure_events: u64,
    /// Simulated clock, µs.
    pub sim_us: f64,
}

/// Configuration for [`ContinuousBatcher::new`].
#[derive(Debug, Clone)]
pub struct LlmServeConfig {
    /// LLM zoo model name (see [`bolt_models::LLM_MODELS`]).
    pub model: String,
    /// Parameter salt shared by every sub-model and the host embedding.
    pub salt: u64,
    /// Concurrent sequence slots.
    pub max_slots: usize,
    /// Continuous vs. pad-to-bucket batching.
    pub mode: BatchMode,
    /// Online tuning over the per-M sub-model buckets.
    pub online: OnlineConfig,
    /// Hard ceiling on KV blocks the arena may materialize — the
    /// governor's memory budget. `None` sizes the pool so every slot
    /// can hold a full-context sequence (no preemption ever needed);
    /// tighter budgets trade preemption-and-recompute for memory.
    pub kv_budget_blocks: Option<usize>,
    /// Free blocks the watermark admission keeps in reserve for the
    /// live batch's decode growth before admitting another prompt.
    pub kv_reserve_blocks: usize,
    /// KV rows per block (the paging granularity).
    pub kv_block_rows: usize,
}

impl Default for LlmServeConfig {
    fn default() -> Self {
        LlmServeConfig {
            model: "tiny-lm".into(),
            salt: 9,
            max_slots: 8,
            mode: BatchMode::Continuous,
            online: OnlineConfig::default(),
            kv_budget_blocks: None,
            kv_reserve_blocks: 1,
            kv_block_rows: 16,
        }
    }
}

/// A queued, not-yet-admitted sequence. A fresh submission and a
/// preempted sequence awaiting its recompute replay share this shape:
/// for a replay, `prompt` is the original prompt *plus* every token
/// already generated, `prompt_len` still marks the original prompt
/// boundary, and `ttft_us` carries the first-token latency already
/// observed (replays must not reset TTFT).
#[derive(Debug)]
struct Pending {
    id: u64,
    prompt: Vec<u32>,
    /// Original prompt length; `< prompt.len()` for a preemption replay.
    prompt_len: usize,
    max_new: usize,
    deadline_us: Option<f64>,
    submitted_us: f64,
    /// `Some` once the sequence has produced its first token (set when a
    /// live sequence is preempted back into the queue).
    ttft_us: Option<f64>,
}

/// A live slot.
#[derive(Debug)]
struct Slot {
    id: u64,
    /// Prompt followed by generated tokens.
    tokens: Vec<u32>,
    prompt_len: usize,
    max_new: usize,
    deadline_us: Option<f64>,
    submitted_us: f64,
    ttft_us: f64,
    kv: bolt::KvWorkspace,
    /// `Some` once finished; in [`BatchMode::StaticCohort`] the slot
    /// stays resident as padding until the whole cohort drains.
    done: Option<FinishReason>,
}

#[derive(Debug, Clone, Copy)]
struct Priced {
    us: f64,
    flops: f64,
}

/// Per-attempt launch accounting, folded into the batcher only at the
/// step's commit point (so a retried attempt charges nothing twice —
/// except wall-clock the retry really spent, tracked separately).
#[derive(Debug, Clone, Copy, Default)]
struct StagedLaunches {
    real_flops: f64,
    launched_flops: f64,
    sim_us: f64,
    launches: u64,
    fallback_launches: u64,
}

/// A decode attempt's result: tokens staged per slot index, not yet
/// committed.
struct StagedStep {
    tokens: Vec<(usize, u32)>,
    launches: StagedLaunches,
}

/// The GEMM-execution side of the batcher, split out so decode can
/// borrow it mutably while iterating slots.
struct ExecCtx {
    registry: Arc<EngineRegistry>,
    online: OnlineEngineManager,
    handles: HashMap<String, Arc<ModelEngines>>,
    prices: HashMap<usize, Priced>,
}

impl ExecCtx {
    /// Runs one sub-model over `m` ragged rows (one sample per row,
    /// `cols` holding each input's rows), placing the batch through the
    /// online manager — bucket-padded, split on overflow — and returns
    /// the output rows. `real_rows` of the `m` are genuinely live (the
    /// rest are resident padding in static-cohort mode); accounting
    /// charges pad rows to `staged.launched_flops` only.
    fn run_rows(
        &mut self,
        name: &str,
        cols: &[&[Vec<f32>]],
        real_rows: usize,
        staged: &mut StagedLaunches,
    ) -> Result<Vec<Vec<f32>>> {
        let m = cols[0].len();
        debug_assert!(cols.iter().all(|c| c.len() == m), "ragged input columns");
        if m == 0 {
            return Ok(Vec::new());
        }
        let engines = self
            .handles
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownModel { name: name.into() })?;
        let placed = self.online.acquire(&engines, m)?;
        let bucket = placed.bucket.max(1);
        let key = Arc::as_ptr(&placed.engine) as usize;
        if self.prices.len() >= PRICE_CACHE_CAP && !self.prices.contains_key(&key) {
            self.prices.clear();
        }
        let priced = *self.prices.entry(key).or_insert_with(|| Priced {
            us: placed.engine.time().total_us,
            flops: placed.engine.flops(),
        });

        let samples: Vec<Vec<Tensor>> = (0..m)
            .map(|i| {
                cols.iter()
                    .map(|c| {
                        let row = &c[i];
                        Tensor::from_vec(&[1, row.len()], DType::F16, row.clone())
                            .expect("row length matches dims")
                    })
                    .collect()
            })
            .collect();
        let mut rows = Vec::with_capacity(m);
        let mut launches = 0u64;
        for chunk in samples.chunks(bucket) {
            let outs = placed.engine.run_batched(chunk)?;
            for mut out in outs {
                rows.push(out.swap_remove(0).data().to_vec());
            }
            launches += 1;
        }
        staged.real_flops += priced.flops * real_rows as f64 / bucket as f64;
        staged.launched_flops += priced.flops * launches as f64;
        staged.sim_us += priced.us * launches as f64;
        staged.launches += launches;
        if placed.fallback {
            staged.fallback_launches += launches;
        }
        Ok(rows)
    }
}

/// Registry names of the model's compilable sub-models.
struct SubModelNames {
    qkv: Vec<String>,
    post: Vec<String>,
    lm_head: String,
}

/// The continuous-batching LLM scheduler (see module docs).
pub struct ContinuousBatcher {
    model: DecoderModel,
    names: SubModelNames,
    exec: ExecCtx,
    arena: KvArena,
    mode: BatchMode,
    max_slots: usize,
    /// Watermark: free blocks admission keeps back for decode growth.
    kv_reserve_blocks: usize,
    /// Steps left in the current chaos memory-pressure episode; the
    /// arena's withheld count resets to zero when it expires.
    pressure_steps_left: u64,
    queue: VecDeque<Pending>,
    slots: Vec<Slot>,
    finished: Vec<SequenceResult>,
    metrics: Metrics,
    stats: LlmStats,
    sim_now_us: f64,
    next_id: u64,
}

impl std::fmt::Debug for ContinuousBatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContinuousBatcher")
            .field("mode", &self.mode)
            .field("max_slots", &self.max_slots)
            .field("live", &self.slots.len())
            .field("queued", &self.queue.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl ContinuousBatcher {
    /// Builds a batcher for one LLM zoo model on `arch`: registers every
    /// per-layer sub-model dynamically (zero precompiled buckets — the
    /// online manager fills them in as the live-row count shifts) and
    /// sizes the KV block pool from the governor budget.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] when `config.model` is not an LLM
    /// zoo entry, [`ServeError::Config`] for a zero slot count, zero
    /// `kv_block_rows`, or a block budget too small to ever hold one
    /// full-context sequence (such a budget could deadlock: a lone
    /// sequence would exhaust the pool with no victim to preempt).
    pub fn new(arch: GpuArch, bolt_config: BoltConfig, config: LlmServeConfig) -> Result<Self> {
        let spec = llm_by_name(&config.model).ok_or_else(|| ServeError::UnknownModel {
            name: config.model.clone(),
        })?;
        if config.max_slots == 0 {
            return Err(ServeError::Config {
                reason: "max_slots must be at least 1".into(),
            });
        }
        if config.kv_block_rows == 0 {
            return Err(ServeError::Config {
                reason: "kv_block_rows must be at least 1".into(),
            });
        }
        let registry = Arc::new(EngineRegistry::new(arch, bolt_config));
        let salt = config.salt;
        let mut names = SubModelNames {
            qkv: Vec::with_capacity(spec.layers),
            post: Vec::with_capacity(spec.layers),
            lm_head: lm_head_name(&config.model),
        };
        let mut handles = HashMap::new();
        for layer in 0..spec.layers {
            let name = qkv_name(&config.model, layer);
            let h = registry
                .register_dynamic(&name, move |rows| qkv_graph(&spec, salt, layer, rows))?;
            handles.insert(name.clone(), h);
            names.qkv.push(name);

            let name = post_name(&config.model, layer);
            let h = registry
                .register_dynamic(&name, move |rows| post_graph(&spec, salt, layer, rows))?;
            handles.insert(name.clone(), h);
            names.post.push(name);
        }
        let h = registry
            .register_dynamic(&names.lm_head, move |rows| lm_head_graph(&spec, salt, rows))?;
        handles.insert(names.lm_head.clone(), h);

        let online = OnlineEngineManager::new(Arc::clone(&registry), config.online.clone());
        let kv_spec = KvSpec {
            layers: spec.layers,
            kv_dim: spec.kv_dim(),
            max_seq: spec.max_seq,
            block_rows: config.kv_block_rows,
        };
        let full_seq = kv_spec.blocks_for(spec.max_seq);
        let budget = config
            .kv_budget_blocks
            .unwrap_or(config.max_slots * full_seq);
        if budget < full_seq {
            return Err(ServeError::Config {
                reason: format!(
                    "kv_budget_blocks {budget} cannot hold one full-context sequence \
                     ({full_seq} blocks of {} rows)",
                    kv_spec.block_rows
                ),
            });
        }
        Ok(ContinuousBatcher {
            model: DecoderModel::new(spec, salt),
            names,
            exec: ExecCtx {
                registry,
                online,
                handles,
                prices: HashMap::new(),
            },
            arena: KvArena::new(kv_spec, budget),
            mode: config.mode,
            max_slots: config.max_slots,
            kv_reserve_blocks: config.kv_reserve_blocks,
            pressure_steps_left: 0,
            queue: VecDeque::new(),
            slots: Vec::new(),
            finished: Vec::new(),
            metrics: Metrics::default(),
            stats: LlmStats::default(),
            sim_now_us: 0.0,
            next_id: 0,
        })
    }

    /// Queues a sequence; ids are assigned in submission order.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidInput`] for an empty prompt, a prompt that
    /// leaves no room to generate inside the context window, an
    /// out-of-vocabulary token, or `max_new_tokens == 0`.
    pub fn submit(&mut self, request: SequenceRequest) -> Result<u64> {
        self.metrics.submitted();
        let spec = self.model.spec();
        let model = self.names.lm_head.clone();
        let reject = |reason: String| ServeError::InvalidInput {
            model: model.clone(),
            reason,
        };
        if request.prompt.is_empty() {
            self.metrics.rejected_invalid_input();
            return Err(reject("prompt must be non-empty".into()));
        }
        if request.prompt.len() >= spec.max_seq {
            self.metrics.rejected_invalid_input();
            return Err(reject(format!(
                "prompt of {} tokens leaves no room in the {}-token context",
                request.prompt.len(),
                spec.max_seq
            )));
        }
        if let Some(&t) = request.prompt.iter().find(|&&t| t as usize >= spec.vocab) {
            self.metrics.rejected_invalid_input();
            return Err(reject(format!("token {t} outside vocab {}", spec.vocab)));
        }
        if request.max_new_tokens == 0 {
            self.metrics.rejected_invalid_input();
            return Err(reject("max_new_tokens must be at least 1".into()));
        }
        self.metrics.accepted();
        let id = self.next_id;
        self.next_id += 1;
        let prompt_len = request.prompt.len();
        self.queue.push_back(Pending {
            id,
            prompt: request.prompt,
            prompt_len,
            max_new: request.max_new_tokens,
            deadline_us: request.deadline_us,
            submitted_us: self.sim_now_us,
            ttft_us: None,
        });
        Ok(id)
    }

    /// Runs one serving step: poll chaos memory pressure, admit
    /// (prefill) into free slots under the watermark, reserve every live
    /// sequence's next KV row (preempting victims if the pool is dry),
    /// decode one token for every live sequence, retire finished ones.
    /// A mid-step worker kill (chaos) retries the decode attempt; the
    /// commit discipline makes the retry exactly-once.
    pub fn step(&mut self) -> StepReport {
        let sim_before = self.sim_now_us;
        self.poll_pressure();
        let admitted = self.admit();
        // Sequences already finished at prefill (max_new_tokens == 1, or
        // a prompt that filled the context window) must retire before
        // the decode GEMM, or they would over-generate by one token.
        let mut retired = self.retire();
        // Every surviving live sequence holds a reservation for its next
        // KV row before the decode GEMM launches: decode itself can then
        // never hit pool exhaustion mid-step.
        self.reserve_for_decode();
        let mut decoded = 0;
        if !self.slots.is_empty() {
            loop {
                match catch_unwind(AssertUnwindSafe(|| self.decode_once())) {
                    Err(_) => {
                        // Mid-step worker kill: uncommitted KV rows are
                        // invisible, no token was appended — retry.
                        self.stats.step_retries += 1;
                    }
                    Ok(Err(e)) => {
                        self.fail_all_live(&e.to_string());
                        break;
                    }
                    Ok(Ok(staged)) => {
                        decoded = staged.tokens.len();
                        self.commit_step(staged);
                        break;
                    }
                }
            }
        }
        retired += self.retire();
        // Engines and KV blocks share accelerator memory: charge the
        // pool's resident footprint against the online tuner's budget so
        // eviction pressure sees the governor's growth.
        self.exec
            .online
            .set_external_resident_bytes(self.arena.resident_bytes());
        StepReport {
            admitted,
            decoded,
            retired,
            live: self.slots.len(),
            queued: self.queue.len(),
            sim_us: self.sim_now_us - sim_before,
        }
    }

    /// Steps until the queue and every slot drain, then returns all
    /// finished sequences (ascending by id).
    pub fn run_to_completion(&mut self) -> Vec<SequenceResult> {
        while !self.queue.is_empty() || !self.slots.is_empty() {
            self.step();
        }
        self.take_finished()
    }

    /// Drains the finished-sequence buffer, ascending by id.
    pub fn take_finished(&mut self) -> Vec<SequenceResult> {
        let mut out = std::mem::take(&mut self.finished);
        out.sort_by_key(|r| r.id);
        out
    }

    /// Live slot count.
    pub fn live(&self) -> usize {
        self.slots.len()
    }

    /// Queued (not yet admitted) sequence count.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// The simulated clock, µs: every kernel launch advances it by the
    /// engine's priced time.
    pub fn sim_now_us(&self) -> f64 {
        self.sim_now_us
    }

    /// Cumulative batcher counters.
    pub fn stats(&self) -> LlmStats {
        self.stats
    }

    /// The KV arena, for liveness assertions (fresh allocations vs.
    /// recycled workspaces).
    pub fn kv_arena(&self) -> &KvArena {
        &self.arena
    }

    /// The sub-model engine registry, for inspecting which per-M buckets
    /// the online tuner has hot-swapped in.
    pub fn registry(&self) -> &Arc<EngineRegistry> {
        &self.exec.registry
    }

    /// Full serving-metrics snapshot — including `padding_fraction` over
    /// every launch, the online-tuning counters, and the KV governor
    /// gauges — directly comparable with [`crate::BoltServer::metrics`].
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot(
            self.sim_now_us.max(1.0),
            Vec::new(),
            Some(self.exec.online.snapshot()),
        );
        snap.kv_governor = Some(self.kv_governor());
        snap
    }

    /// Point-in-time KV governor gauges: block-pool occupancy plus the
    /// admission/preemption counters.
    pub fn kv_governor(&self) -> KvGovernorSnapshot {
        KvGovernorSnapshot {
            kv_blocks_in_use: self.arena.in_use_blocks(),
            kv_blocks_free: self.arena.free_blocks(),
            kv_budget_blocks: self.arena.budget_blocks(),
            kv_block_rows: self.arena.spec().block_rows,
            kv_resident_bytes: self.arena.resident_bytes(),
            preemptions: self.stats.preemptions,
            recompute_tokens: self.stats.recompute_tokens,
            kv_fresh_allocations: self.arena.fresh_allocations(),
            kv_pressure_events: self.stats.kv_pressure_events,
        }
    }

    /// Blocks until no background sub-model compile is queued or
    /// running, up to `timeout` (`false` on timeout). Useful to pin down
    /// hot-swap timing in tests; never required for correctness.
    pub fn wait_tuned(&self, timeout: Duration) -> bool {
        self.exec.online.wait_idle(timeout)
    }

    /// Polls the chaos memory-pressure site and ticks the running
    /// episode: while one is active, a fraction of the block budget is
    /// withheld from the pool — pure accounting, live blocks are never
    /// touched — stalling admission and forcing decode growth to
    /// preempt exactly as a real co-tenant's allocation would. The
    /// withholding lifts when the episode's step count expires.
    fn poll_pressure(&mut self) {
        if self.pressure_steps_left > 0 {
            self.pressure_steps_left -= 1;
            if self.pressure_steps_left == 0 {
                self.arena.set_withheld(0);
            }
        }
        if let Some((fraction, steps)) = bolt::faults::kv_pressure() {
            let withheld = (self.arena.budget_blocks() as f64 * fraction).round() as usize;
            self.arena.set_withheld(withheld);
            self.pressure_steps_left = steps;
            self.stats.kv_pressure_events += 1;
        }
    }

    /// Reserves the next KV row for every live slot before the decode
    /// GEMM launches, so decode itself can never hit pool exhaustion
    /// mid-step. When the pool runs dry, the governor preempts victims
    /// (fewest generated tokens, ties youngest) until the reservation
    /// fits; preempting the requester itself also counts as progress —
    /// its blocks go back to the pool for the sequences kept.
    fn reserve_for_decode(&mut self) {
        let mut i = 0;
        while i < self.slots.len() {
            if self.slots[i].done.is_some() {
                i += 1;
                continue;
            }
            let rows = self.slots[i].kv.len() + 1;
            match self.arena.reserve(&mut self.slots[i].kv, rows) {
                Ok(()) => i += 1,
                Err(_) => {
                    let Some(victim) = self.pick_victim() else {
                        break;
                    };
                    self.preempt(victim);
                    if victim < i {
                        i -= 1;
                    }
                    // victim == i retries the slot now sitting at i;
                    // victim > i retries slot i itself, one block richer.
                }
            }
        }
    }

    /// The preemption victim among live slots: fewest generated tokens
    /// (cheapest recompute), ties broken by youngest (largest id — the
    /// governor protects the progress of the oldest work first).
    fn pick_victim(&self) -> Option<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.done.is_none())
            .min_by_key(|(_, slot)| {
                (
                    slot.tokens.len() - slot.prompt_len,
                    std::cmp::Reverse(slot.id),
                )
            })
            .map(|(i, _)| i)
    }

    /// Evicts slot `idx` back to the head of the queue: its blocks
    /// return to the pool and its prompt *plus generated tokens* replay
    /// through a later prefill (recompute, not swap). The replay's
    /// "first token" is the next genuinely new token, so token
    /// accounting stays exactly-once; TTFT keeps its original value.
    fn preempt(&mut self, idx: usize) {
        let slot = self.slots.remove(idx);
        self.stats.preemptions += 1;
        self.stats.recompute_tokens += slot.kv.len() as u64;
        self.metrics.requeued();
        self.arena.release(slot.kv);
        self.queue.push_front(Pending {
            id: slot.id,
            prompt: slot.tokens,
            prompt_len: slot.prompt_len,
            max_new: slot.max_new,
            deadline_us: slot.deadline_us,
            submitted_us: slot.submitted_us,
            ttft_us: Some(slot.ttft_us),
        });
    }

    /// Terminal result for a sequence leaving the queue without
    /// (re)entering a slot. A preemption replay keeps the tokens it
    /// already generated and its observed TTFT; a fresh submission has
    /// neither.
    fn queue_result(pending: &Pending, now: f64, finish: FinishReason) -> SequenceResult {
        SequenceResult {
            id: pending.id,
            prompt_len: pending.prompt_len,
            tokens: pending.prompt[pending.prompt_len..].to_vec(),
            ttft_us: pending.ttft_us,
            submitted_us: pending.submitted_us,
            finished_us: now,
            finish,
        }
    }

    /// Admits queued sequences into free slots (all slots must be free
    /// first in static-cohort mode), shedding those past their deadline,
    /// and prefills each admission. Admission is watermark-gated: the
    /// prompt's prefill blocks plus a decode-growth reserve must fit in
    /// the free pool, or the prompt waits at the head of the queue (the
    /// reserve is waived when no sequence is live — a lone admission can
    /// never be starved by headroom for nobody). Returns the number
    /// admitted.
    fn admit(&mut self) -> usize {
        if self.mode == BatchMode::StaticCohort && !self.slots.is_empty() {
            return 0;
        }
        let kv_spec = self.arena.spec();
        let mut admitted = 0;
        while self.slots.len() < self.max_slots {
            let Some(pending) = self.queue.pop_front() else {
                break;
            };
            if pending
                .deadline_us
                .is_some_and(|deadline| self.sim_now_us > deadline)
            {
                self.metrics.deadline_shed();
                self.finished.push(Self::queue_result(
                    &pending,
                    self.sim_now_us,
                    FinishReason::DeadlineExceeded,
                ));
                continue;
            }
            let needed = kv_spec.blocks_for(pending.prompt.len());
            let reserve = if self.slots.is_empty() {
                0
            } else {
                self.kv_reserve_blocks
            };
            if self.arena.free_blocks() < needed + reserve {
                self.queue.push_front(pending);
                break;
            }
            self.metrics.dequeued(1);
            match self.prefill(&pending) {
                Ok(slot) => {
                    self.slots.push(slot);
                    self.stats.prefills += 1;
                    self.stats.generated_tokens += 1;
                    admitted += 1;
                }
                // Lost the blocks race despite the watermark: bounce
                // back to the queue head — transient pressure must never
                // fail a request.
                Err(ServeError::Compile(
                    BoltError::KvExhausted { .. } | BoltError::KvCapacity { .. },
                )) => {
                    self.metrics.requeued();
                    self.queue.push_front(pending);
                    break;
                }
                Err(e) => {
                    self.metrics.rejected_execution();
                    self.finished.push(Self::queue_result(
                        &pending,
                        self.sim_now_us,
                        FinishReason::Failed,
                    ));
                    let _ = e;
                }
            }
        }
        admitted
    }

    /// Runs one prompt's prefill: the whole prompt as a wide GEMM
    /// through every layer, KV rows written per position, first token
    /// from the last position's logits. Reserves the prompt's blocks up
    /// front; commits the KV transaction and the simulated time only on
    /// success, releasing every block back to the pool on failure. For a
    /// preemption replay, `pending.prompt` already includes the
    /// generated tokens, so this same path rebuilds the victim's KV
    /// state bit for bit.
    fn prefill(&mut self, pending: &Pending) -> Result<Slot> {
        let spec = *self.model.spec();
        let n = pending.prompt.len();
        let mut staged = StagedLaunches::default();
        let mut kv = self.arena.lease();
        let mut x: Vec<Vec<f32>> = pending
            .prompt
            .iter()
            .map(|&t| self.model.embed_token(t).to_vec())
            .collect();
        let result = (|| -> Result<u32> {
            self.arena.reserve(&mut kv, n)?;
            for layer in 0..spec.layers {
                let qkv = self
                    .exec
                    .run_rows(&self.names.qkv[layer], &[&x], n, &mut staged)?;
                let mut attn = Vec::with_capacity(n);
                for (t, row) in qkv.iter().enumerate() {
                    let (q, rest) = row.split_at(spec.hidden);
                    let (k, v) = rest.split_at(spec.hidden);
                    kv.write_row(layer, t, k, v)?;
                    let keys = kv.key_chunks(layer, t + 1)?;
                    let values = kv.value_chunks(layer, t + 1)?;
                    attn.push(self.model.attention(q, &keys, &values, t + 1));
                }
                x = self
                    .exec
                    .run_rows(&self.names.post[layer], &[&attn, &x], n, &mut staged)?;
            }
            // Only the last position's logits matter for the first token.
            let last = vec![x.pop().expect("non-empty prompt")];
            let logits = self
                .exec
                .run_rows(&self.names.lm_head, &[&last], 1, &mut staged)?;
            kv.commit(n)?;
            Ok(self.model.argmax(&logits[0]))
        })();
        match result {
            Ok(first) => {
                self.charge(staged);
                let mut tokens = pending.prompt.clone();
                tokens.push(first);
                Ok(Slot {
                    id: pending.id,
                    tokens,
                    prompt_len: pending.prompt_len,
                    max_new: pending.max_new,
                    deadline_us: pending.deadline_us,
                    submitted_us: pending.submitted_us,
                    ttft_us: pending
                        .ttft_us
                        .unwrap_or(self.sim_now_us - pending.submitted_us),
                    kv,
                    done: None,
                })
            }
            Err(e) => {
                self.arena.release(kv);
                Err(e)
            }
        }
    }

    /// One decode attempt over every resident slot: embed each slot's
    /// last token, run the layer stack at M = resident rows, stage one
    /// token per *live* slot. Mutates only uncommitted KV rows — safe to
    /// retry after a mid-step panic.
    fn decode_once(&mut self) -> Result<StagedStep> {
        bolt::faults::panic_if_scheduled(bolt::faults::FaultSite::WorkerKill);
        let spec = *self.model.spec();
        let mut staged = StagedLaunches::default();
        let live: Vec<bool> = self.slots.iter().map(|s| s.done.is_none()).collect();
        let real_rows = live.iter().filter(|&&l| l).count();
        let mut x: Vec<Vec<f32>> = self
            .slots
            .iter()
            .map(|s| {
                self.model
                    .embed_token(*s.tokens.last().expect("slots hold ≥ 1 token"))
                    .to_vec()
            })
            .collect();
        for layer in 0..spec.layers {
            let qkv = self
                .exec
                .run_rows(&self.names.qkv[layer], &[&x], real_rows, &mut staged)?;
            let mut attn = vec![vec![0.0f32; spec.hidden]; x.len()];
            for (i, slot) in self.slots.iter_mut().enumerate() {
                if !live[i] {
                    continue; // dead cohort rows are pure padding
                }
                let (q, rest) = qkv[i].split_at(spec.hidden);
                let (k, v) = rest.split_at(spec.hidden);
                let pos = slot.kv.len();
                slot.kv.write_row(layer, pos, k, v)?;
                let keys = slot.kv.key_chunks(layer, pos + 1)?;
                let values = slot.kv.value_chunks(layer, pos + 1)?;
                attn[i] = self.model.attention(q, &keys, &values, pos + 1);
            }
            x = self.exec.run_rows(
                &self.names.post[layer],
                &[&attn, &x],
                real_rows,
                &mut staged,
            )?;
        }
        let logits = self
            .exec
            .run_rows(&self.names.lm_head, &[&x], real_rows, &mut staged)?;
        let tokens = live
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l)
            .map(|(i, _)| (i, self.model.argmax(&logits[i])))
            .collect();
        Ok(StagedStep {
            tokens,
            launches: staged,
        })
    }

    /// The step's transaction point: publish every live slot's KV row
    /// and append its token, then charge the attempt's time and FLOPs.
    fn commit_step(&mut self, staged: StagedStep) {
        let live = staged.tokens.len();
        for (i, token) in staged.tokens {
            let slot = &mut self.slots[i];
            slot.kv
                .commit(slot.tokens.len())
                .expect("decode rows were reserved before the step");
            slot.tokens.push(token);
            self.stats.generated_tokens += 1;
        }
        let sim_us = staged.launches.sim_us;
        self.charge(staged.launches);
        self.stats.steps += 1;
        let tokens_per_sec = if sim_us > 0.0 {
            live as f64 * 1e6 / sim_us
        } else {
            0.0
        };
        self.metrics.batch(live, tokens_per_sec);
    }

    /// Folds one attempt's launch accounting into the clock and metrics.
    fn charge(&mut self, launches: StagedLaunches) {
        self.sim_now_us += launches.sim_us;
        self.stats.sim_us = self.sim_now_us;
        self.stats.launches += launches.launches;
        self.stats.fallback_launches += launches.fallback_launches;
        self.metrics
            .launch_flops(launches.real_flops, launches.launched_flops);
    }

    /// A failed decode attempt fails every live sequence (partial tokens
    /// stand); cohort padding rows retire with their original reason.
    fn fail_all_live(&mut self, _reason: &str) {
        for slot in &mut self.slots {
            if slot.done.is_none() {
                slot.done = Some(FinishReason::Failed);
                self.metrics.rejected_execution();
            }
        }
    }

    /// Marks finished sequences and evicts them: immediately in
    /// continuous mode (mid-batch), only when the whole cohort drained
    /// in static-cohort mode. Returns the number retired.
    fn retire(&mut self) -> usize {
        let max_seq = self.model.spec().max_seq;
        for slot in &mut self.slots {
            if slot.done.is_some() {
                continue;
            }
            let generated = slot.tokens.len() - slot.prompt_len;
            slot.done = if generated >= slot.max_new {
                Some(FinishReason::Length)
            } else if slot.tokens.len() >= max_seq {
                Some(FinishReason::ContextFull)
            } else if slot
                .deadline_us
                .is_some_and(|deadline| self.sim_now_us > deadline)
            {
                Some(FinishReason::DeadlineExceeded)
            } else {
                None
            };
        }
        let drain_cohort =
            self.mode == BatchMode::StaticCohort && self.slots.iter().all(|s| s.done.is_some());
        let mut retired = 0;
        let mut i = 0;
        while i < self.slots.len() {
            let evict = match self.mode {
                BatchMode::Continuous => self.slots[i].done.is_some(),
                BatchMode::StaticCohort => drain_cohort,
            };
            if !evict {
                i += 1;
                continue;
            }
            let slot = self.slots.remove(i);
            let finish = slot.done.expect("evicted slots are finished");
            if finish != FinishReason::Failed {
                self.metrics.completed(self.sim_now_us - slot.submitted_us);
            }
            self.finished.push(SequenceResult {
                id: slot.id,
                prompt_len: slot.prompt_len,
                tokens: slot.tokens[slot.prompt_len..].to_vec(),
                ttft_us: Some(slot.ttft_us),
                submitted_us: slot.submitted_us,
                finished_us: self.sim_now_us,
                finish,
            });
            self.arena.release(slot.kv);
            retired += 1;
        }
        retired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::test_arch;
    use bolt_models::{sample_prompts, PromptLengths};

    fn batcher(config: LlmServeConfig) -> ContinuousBatcher {
        ContinuousBatcher::new(test_arch(), BoltConfig::default(), config).expect("tiny-lm builds")
    }

    fn submit_prompts(
        engine: &mut ContinuousBatcher,
        prompts: &[Vec<u32>],
        max_new: usize,
    ) -> Vec<u64> {
        prompts
            .iter()
            .map(|p| {
                engine
                    .submit(SequenceRequest {
                        prompt: p.clone(),
                        max_new_tokens: max_new,
                        deadline_us: None,
                    })
                    .expect("valid prompt")
            })
            .collect()
    }

    /// The sequential oracle: one slot, sequences run start-to-finish
    /// one at a time — continuous batching must match it bit for bit.
    fn sequential_tokens(prompts: &[Vec<u32>], max_new: usize) -> Vec<Vec<u32>> {
        let mut engine = batcher(LlmServeConfig {
            max_slots: 1,
            ..LlmServeConfig::default()
        });
        submit_prompts(&mut engine, prompts, max_new);
        let results = engine.run_to_completion();
        results.into_iter().map(|r| r.tokens).collect()
    }

    #[test]
    fn generates_exactly_once_and_in_submission_order() {
        let prompts = sample_prompts("tiny-lm", 6, PromptLengths::uniform(2, 9), 42).unwrap();
        let mut engine = batcher(LlmServeConfig::default());
        let ids = submit_prompts(&mut engine, &prompts, 4);
        let results = engine.run_to_completion();
        assert_eq!(results.len(), 6, "every sequence retires exactly once");
        for (result, (id, prompt)) in results.iter().zip(ids.iter().zip(&prompts)) {
            assert_eq!(result.id, *id);
            assert_eq!(result.prompt_len, prompt.len());
            assert_eq!(result.tokens.len(), 4);
            assert_eq!(result.finish, FinishReason::Length);
            assert!(result.ttft_us.is_some());
            assert!(result.finished_us >= result.submitted_us);
        }
        let stats = engine.stats();
        assert_eq!(stats.generated_tokens, 24);
        assert_eq!(stats.prefills, 6);
        assert!(stats.sim_us > 0.0);
        let m = engine.metrics();
        assert_eq!(m.completed, 6);
        assert_eq!((m.queue_depth, m.inflight), (0, 0), "gauges drained");
    }

    #[test]
    fn continuous_matches_sequential_bit_for_bit() {
        let prompts = sample_prompts("tiny-lm", 8, PromptLengths::uniform(1, 12), 7).unwrap();
        let oracle = sequential_tokens(&prompts, 5);

        let mut engine = batcher(LlmServeConfig {
            max_slots: 8,
            ..LlmServeConfig::default()
        });
        submit_prompts(&mut engine, &prompts, 5);
        let results = engine.run_to_completion();
        for (result, want) in results.iter().zip(&oracle) {
            assert_eq!(
                &result.tokens, want,
                "sequence {} diverged from sequential execution",
                result.id
            );
        }
    }

    #[test]
    fn static_cohort_matches_sequential_and_wastes_more_flops() {
        // Ragged max_new: in the cohort, early finishers become padding.
        let prompts = sample_prompts("tiny-lm", 4, PromptLengths::uniform(2, 6), 3).unwrap();
        // Strongly ragged lengths (2, 8, 14, 20): the early finishers sit
        // dead in the cohort for most of its lifetime, so the structural
        // waste dwarfs any bucket-placement noise from tuner timing.
        let max_new = |i: usize| 2 + i * 6;
        let oracle: Vec<Vec<u32>> = prompts
            .iter()
            .enumerate()
            .map(|(i, p)| sequential_tokens(std::slice::from_ref(p), max_new(i)).remove(0))
            .collect();

        let run = |mode: BatchMode| {
            let mut engine = batcher(LlmServeConfig {
                max_slots: 4,
                mode,
                ..LlmServeConfig::default()
            });
            for (i, p) in prompts.iter().enumerate() {
                engine
                    .submit(SequenceRequest {
                        prompt: p.clone(),
                        max_new_tokens: max_new(i),
                        deadline_us: None,
                    })
                    .expect("valid");
            }
            let results = engine.run_to_completion();
            let padding = engine.metrics().padding_fraction;
            (results, padding)
        };
        let (cont, cont_padding) = run(BatchMode::Continuous);
        let (stat, stat_padding) = run(BatchMode::StaticCohort);
        for ((c, s), want) in cont.iter().zip(&stat).zip(&oracle) {
            let n = c.tokens.len();
            assert_eq!(c.tokens, s.tokens, "modes agree");
            assert_eq!(c.tokens[..], want[..n], "prefix of the oracle stream");
        }
        assert!(
            stat_padding > cont_padding,
            "pad-to-bucket wastes more: static {stat_padding:.3} vs continuous {cont_padding:.3}"
        );
    }

    #[test]
    fn interleaved_joins_match_sequential() {
        let prompts = sample_prompts("tiny-lm", 6, PromptLengths::uniform(1, 8), 99).unwrap();
        let oracle = sequential_tokens(&prompts, 4);

        // Join mid-stream: two up front, then one more after every step.
        let mut engine = batcher(LlmServeConfig {
            max_slots: 4,
            ..LlmServeConfig::default()
        });
        submit_prompts(&mut engine, &prompts[..2], 4);
        let mut next = 2;
        while engine.live() > 0 || engine.queued() > 0 || next < prompts.len() {
            if next < prompts.len() {
                submit_prompts(&mut engine, &prompts[next..next + 1], 4);
                next += 1;
            }
            engine.step();
        }
        let mut results = engine.take_finished();
        results.sort_by_key(|r| r.id);
        assert_eq!(results.len(), 6);
        for (result, want) in results.iter().zip(&oracle) {
            assert_eq!(&result.tokens, want, "sequence {}", result.id);
        }
    }

    #[test]
    fn hot_swapped_engines_keep_streams_bit_identical() {
        let prompts = sample_prompts("tiny-lm", 4, PromptLengths::uniform(2, 7), 5).unwrap();
        // Run A drains compiles after every step (maximum hot-swapping
        // mid-stream); run B never waits (mostly heuristic fallbacks).
        let mut waits = batcher(LlmServeConfig::default());
        submit_prompts(&mut waits, &prompts, 4);
        while waits.live() > 0 || waits.queued() > 0 {
            waits.step();
            assert!(waits.wait_tuned(Duration::from_secs(120)));
        }
        let swapped = waits.take_finished();
        assert!(
            !waits
                .registry()
                .get(&qkv_name("tiny-lm", 0))
                .unwrap()
                .bucket_sizes()
                .is_empty(),
            "tuned buckets hot-swapped in"
        );

        let mut cold = batcher(LlmServeConfig::default());
        submit_prompts(&mut cold, &prompts, 4);
        let unswapped = cold.run_to_completion();
        for (a, b) in swapped.iter().zip(&unswapped) {
            assert_eq!(a.tokens, b.tokens, "engine hot-swap changed tokens");
        }
    }

    #[test]
    fn deadlines_shed_queued_and_evict_live_sequences() {
        let mut engine = batcher(LlmServeConfig {
            max_slots: 1,
            ..LlmServeConfig::default()
        });
        // First sequence: generous deadline; runs long enough that the
        // queued second sequence's tight deadline expires before a slot
        // frees up.
        engine
            .submit(SequenceRequest {
                prompt: vec![1, 2, 3],
                max_new_tokens: 20,
                deadline_us: None,
            })
            .expect("valid");
        engine
            .submit(SequenceRequest {
                prompt: vec![4, 5],
                max_new_tokens: 4,
                deadline_us: Some(1e-3),
            })
            .expect("valid");
        // Run the first sequence out, then calibrate the third
        // sequence's deadline from this engine's own observed per-step
        // cost — a separate cold probe would race the online tuner
        // (tuned engines can be several times faster than the
        // fallbacks a fresh batcher starts on).
        while engine.live() > 0 || engine.stats().steps == 0 {
            engine.step();
        }
        let warm = engine.stats();
        let per_step_us = engine.sim_now_us() / warm.steps.max(1) as f64;
        // Deadline a handful of steps out: far more than admission +
        // prefill + one decode, far less than 140 tokens' worth even if
        // every remaining launch sped up by an order of magnitude.
        engine
            .submit(SequenceRequest {
                prompt: vec![6],
                max_new_tokens: 140,
                deadline_us: Some(engine.sim_now_us() + 6.0 * per_step_us),
            })
            .expect("valid");
        let results = engine.run_to_completion();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].finish, FinishReason::Length);
        assert_eq!(results[0].tokens.len(), 20);
        assert_eq!(results[1].finish, FinishReason::DeadlineExceeded);
        assert!(results[1].tokens.is_empty(), "shed before prefill");
        assert_eq!(results[2].finish, FinishReason::DeadlineExceeded);
        assert!(
            !results[2].tokens.is_empty() && results[2].tokens.len() < 140,
            "evicted mid-generation with partial output, got {}",
            results[2].tokens.len()
        );
        let m = engine.metrics();
        assert_eq!(m.deadline_shed, 1);
        assert_eq!(m.completed, 2, "shed sequences are not completions");
    }

    #[test]
    fn context_window_exhaustion_retires_with_context_full() {
        let spec = llm_by_name("tiny-lm").unwrap();
        let mut engine = batcher(LlmServeConfig::default());
        let prompt: Vec<u32> = (0..(spec.max_seq - 3) as u32).map(|t| t % 64).collect();
        engine
            .submit(SequenceRequest {
                prompt,
                max_new_tokens: 50,
                deadline_us: None,
            })
            .expect("valid");
        let results = engine.run_to_completion();
        assert_eq!(results[0].finish, FinishReason::ContextFull);
        assert_eq!(results[0].tokens.len(), 3, "prompt + 3 fills the window");
    }

    #[test]
    fn kv_workspaces_recycle_across_admissions() {
        let prompts = sample_prompts("tiny-lm", 6, PromptLengths::fixed(3), 1).unwrap();
        let mut engine = batcher(LlmServeConfig {
            max_slots: 2,
            ..LlmServeConfig::default()
        });
        submit_prompts(&mut engine, &prompts, 3);
        engine.run_to_completion();
        let arena = engine.kv_arena();
        assert!(
            arena.fresh_allocations() <= 2,
            "at most one workspace per slot is ever allocated, got {}",
            arena.fresh_allocations()
        );
        assert!(arena.reuses() >= 4, "later admissions reuse retired KV");
    }

    /// The governor's acceptance gate: a budget at the floor (one
    /// full-context sequence) with 8 competing sequences forces real
    /// preemptions, and every stream must still match the sequential
    /// oracle bit for bit with exactly-once token accounting.
    #[test]
    fn tight_kv_budget_preempts_and_recomputes_bit_identically() {
        let spec = llm_by_name("tiny-lm").unwrap();
        // Geometry the squeeze relies on: 10 blocks of 16 rows, prompts
        // of 14 that cross into a second block mid-decode.
        assert_eq!(spec.max_seq, 160);
        let prompts = sample_prompts("tiny-lm", 8, PromptLengths::fixed(14), 11).unwrap();
        let oracle = sequential_tokens(&prompts, 8);

        let mut engine = batcher(LlmServeConfig {
            max_slots: 8,
            kv_budget_blocks: Some(10),
            ..LlmServeConfig::default()
        });
        submit_prompts(&mut engine, &prompts, 8);
        let results = engine.run_to_completion();

        let stats = engine.stats();
        assert!(stats.preemptions > 0, "the budget must actually squeeze");
        assert!(stats.recompute_tokens > 0, "replays recompute KV state");
        assert_eq!(results.len(), 8, "every sequence retires exactly once");
        for (result, want) in results.iter().zip(&oracle) {
            assert_eq!(result.finish, FinishReason::Length);
            assert_eq!(
                &result.tokens, want,
                "sequence {} diverged under preemption",
                result.id
            );
        }
        // Exactly-once accounting: 8 sequences × 8 tokens, however many
        // replays happened — replayed positions count only as recompute.
        assert_eq!(stats.generated_tokens, 64);
        let gov = engine.kv_governor();
        assert_eq!(gov.kv_blocks_in_use, 0, "drained pool");
        assert_eq!(gov.kv_budget_blocks, 10);
        assert!(
            gov.kv_fresh_allocations <= 10,
            "the arena never materializes past its budget, got {}",
            gov.kv_fresh_allocations
        );
        assert_eq!(gov.preemptions, stats.preemptions);
        assert_eq!(gov.recompute_tokens, stats.recompute_tokens);
        let m = engine.metrics();
        assert_eq!(m.completed, 8);
        assert_eq!((m.queue_depth, m.inflight), (0, 0), "gauges drained");
        assert_eq!(m.kv_governor, Some(gov));
    }

    /// Victim policy, pinned deterministically: under a squeeze the
    /// governor evicts the live sequence with the fewest generated
    /// tokens, breaking ties toward the youngest — never the elder
    /// that has the most progress to lose.
    #[test]
    fn preemption_victims_are_fewest_generated_then_youngest() {
        let prompts = sample_prompts("tiny-lm", 3, PromptLengths::fixed(14), 4).unwrap();
        let oracle = sequential_tokens(&prompts, 10);
        let mut engine = batcher(LlmServeConfig {
            max_slots: 3,
            kv_budget_blocks: Some(10),
            ..LlmServeConfig::default()
        });
        // The elder runs two steps ahead; the juniors join together, so
        // they tie on generated tokens and only age can split them.
        let elder = submit_prompts(&mut engine, &prompts[..1], 10);
        engine.step();
        engine.step();
        let juniors = submit_prompts(&mut engine, &prompts[1..], 10);
        engine.step();
        assert_eq!(engine.live(), 3);

        // Withhold every block the three live sequences are not already
        // holding: the next block-table growth must preempt someone.
        engine.arena.set_withheld(10 - engine.arena.in_use_blocks());
        let before = engine.stats().preemptions;
        for _ in 0..20 {
            if engine.stats().preemptions > before {
                break;
            }
            engine.step();
            assert!(engine.live() > 0, "the squeeze must preempt, not wedge");
        }
        assert_eq!(
            engine.stats().preemptions,
            before + 1,
            "freeing one victim's blocks unblocks the step"
        );
        assert_eq!(
            engine.queue.front().expect("victim re-queued").id,
            juniors[1],
            "victim is the youngest of the tied juniors"
        );
        assert!(
            engine.slots.iter().any(|s| s.id == elder[0]),
            "the elder's progress is protected"
        );

        // Pressure lifts; the victim replays and every stream still
        // matches the oracle.
        engine.arena.set_withheld(0);
        let results = engine.run_to_completion();
        assert_eq!(results.len(), 3);
        for (result, want) in results.iter().zip(&oracle) {
            assert_eq!(&result.tokens, want, "sequence {} diverged", result.id);
        }
    }

    /// A budget below one full-context sequence could deadlock (a lone
    /// sequence exhausts the pool with nobody to preempt) and must be
    /// rejected at construction.
    #[test]
    fn sub_context_budgets_are_rejected() {
        for (budget, block_rows) in [(Some(9), 16), (Some(0), 16), (Some(39), 4)] {
            assert!(matches!(
                ContinuousBatcher::new(
                    test_arch(),
                    BoltConfig::default(),
                    LlmServeConfig {
                        kv_budget_blocks: budget,
                        kv_block_rows: block_rows,
                        ..LlmServeConfig::default()
                    }
                )
                .err(),
                Some(ServeError::Config { .. })
            ));
        }
        assert!(matches!(
            ContinuousBatcher::new(
                test_arch(),
                BoltConfig::default(),
                LlmServeConfig {
                    kv_block_rows: 0,
                    ..LlmServeConfig::default()
                }
            )
            .err(),
            Some(ServeError::Config { .. })
        ));
    }

    #[test]
    fn submit_validation_rejects_bad_requests() {
        let spec = llm_by_name("tiny-lm").unwrap();
        let mut engine = batcher(LlmServeConfig::default());
        let bad = [
            SequenceRequest {
                prompt: vec![],
                max_new_tokens: 1,
                deadline_us: None,
            },
            SequenceRequest {
                prompt: vec![0; spec.max_seq],
                max_new_tokens: 1,
                deadline_us: None,
            },
            SequenceRequest {
                prompt: vec![spec.vocab as u32],
                max_new_tokens: 1,
                deadline_us: None,
            },
            SequenceRequest {
                prompt: vec![1],
                max_new_tokens: 0,
                deadline_us: None,
            },
        ];
        for request in bad {
            assert!(matches!(
                engine.submit(request),
                Err(ServeError::InvalidInput { .. })
            ));
        }
        assert_eq!(engine.metrics().rejected_invalid_input, 4);
        assert!(matches!(
            ContinuousBatcher::new(
                test_arch(),
                BoltConfig::default(),
                LlmServeConfig {
                    model: "mlp-small".into(),
                    ..LlmServeConfig::default()
                }
            )
            .err(),
            Some(ServeError::UnknownModel { .. })
        ));
        assert!(matches!(
            ContinuousBatcher::new(
                test_arch(),
                BoltConfig::default(),
                LlmServeConfig {
                    max_slots: 0,
                    ..LlmServeConfig::default()
                }
            )
            .err(),
            Some(ServeError::Config { .. })
        ));
    }
}
