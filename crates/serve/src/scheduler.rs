//! The dynamic-batching scheduler: per-(model, shape) queues and the
//! batch-formation policy.
//!
//! Policy (DESIGN.md §7): a queue drains into a full batch the moment
//! `max_batch` requests wait; a partial batch is dispatched when its
//! oldest request has waited `batch_timeout`, or immediately when the
//! server is draining. Requests whose deadline has already passed are
//! shed at formation time — executing them would waste a stream on work
//! nobody is waiting for.
//!
//! The scheduler is a plain data structure driven under the server's
//! lock, which keeps the policy deterministic and directly unit-testable.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crate::registry::ModelEngines;
use crate::request::QueuedRequest;

/// A formed batch handed to the worker pool.
#[derive(Debug)]
pub(crate) struct BatchJob {
    pub model: Arc<ModelEngines>,
    /// 1 ≤ `requests.len()` ≤ min(`max_batch`, model max bucket).
    pub requests: Vec<QueuedRequest>,
}

/// What one scheduling pass decided.
#[derive(Debug, Default)]
pub(crate) struct FormResult {
    /// Batches to dispatch, in formation order.
    pub jobs: Vec<BatchJob>,
    /// Requests shed because their deadline passed while queued.
    pub shed: Vec<QueuedRequest>,
    /// Absolute time (µs) of the next timeout/deadline edge, if any
    /// request is still waiting.
    pub next_wake_us: Option<f64>,
}

/// Per-(model, shape-bucket) FIFO queues plus the admission flag.
#[derive(Debug)]
pub(crate) struct Scheduler {
    queues: HashMap<String, VecDeque<QueuedRequest>>,
    /// False once draining begins: no new admissions, partial batches
    /// flush immediately.
    pub accepting: bool,
    /// True for an abort drain (a killed cluster replica): formed
    /// batches are resolved `Rejected` by the batcher instead of
    /// dispatched, so queued work terminates fast without executing.
    pub aborting: bool,
}

impl Scheduler {
    pub(crate) fn new() -> Self {
        Scheduler {
            queues: HashMap::new(),
            accepting: true,
            aborting: false,
        }
    }

    /// Queue key: model name plus the sample-shape signature fixed at
    /// registration (one shape bucket per model today, but the key keeps
    /// distinct shapes in distinct queues if that ever changes).
    pub(crate) fn key_for(model: &ModelEngines) -> String {
        format!("{}@{:?}", model.name(), model.sample_dims())
    }

    /// Depth of the queue `key`, for admission control.
    pub(crate) fn depth(&self, key: &str) -> usize {
        self.queues.get(key).map_or(0, VecDeque::len)
    }

    /// Total queued requests across all queues.
    pub(crate) fn pending(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }

    pub(crate) fn enqueue(&mut self, key: String, request: QueuedRequest) {
        self.queues.entry(key).or_default().push_back(request);
    }

    /// One scheduling pass at `now_us`. `flush` dispatches partial
    /// batches immediately (draining) instead of waiting out the timeout.
    /// `online` ignores each model's compiled max bucket when capping
    /// batches: with an online tuner behind the workers, a batch larger
    /// than every compiled bucket is served by split/fallback and tunes
    /// its own bucket, whereas a zero-bucket dynamic model would
    /// otherwise be capped to batches of 1 forever.
    pub(crate) fn form(
        &mut self,
        now_us: f64,
        max_batch: usize,
        timeout_us: f64,
        flush: bool,
        online: bool,
    ) -> FormResult {
        let mut result = FormResult::default();
        for queue in self.queues.values_mut() {
            // Shed already-late work first so it neither occupies batch
            // slots nor delays punctual requests.
            let mut kept = VecDeque::with_capacity(queue.len());
            for request in queue.drain(..) {
                match request.deadline_us {
                    Some(deadline) if now_us > deadline => result.shed.push(request),
                    _ => kept.push_back(request),
                }
            }
            *queue = kept;

            let Some(front) = queue.front() else { continue };
            let model_cap = if online {
                usize::MAX
            } else {
                front.model.max_batch()
            };
            let cap = max_batch.min(model_cap).max(1);
            let due_us = front.submitted_us + timeout_us;
            let drain_all = flush || now_us >= due_us;

            while queue.len() >= cap || (drain_all && !queue.is_empty()) {
                let take = queue.len().min(cap);
                let requests: Vec<QueuedRequest> = queue.drain(..take).collect();
                result.jobs.push(BatchJob {
                    model: Arc::clone(&requests[0].model),
                    requests,
                });
            }

            if let Some(front) = queue.front() {
                let mut wake = front.submitted_us + timeout_us;
                for request in queue.iter() {
                    if let Some(deadline) = request.deadline_us {
                        wake = wake.min(deadline);
                    }
                }
                result.next_wake_us = Some(match result.next_wake_us {
                    Some(prev) => prev.min(wake),
                    None => wake,
                });
            }
        }
        self.queues.retain(|_, q| !q.is_empty());
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ResponseSlot;
    use crate::testing::test_arch;
    use crate::{EngineRegistry, ServeConfig};
    use bolt::BoltConfig;
    use bolt_tensor::{DType, Tensor};

    fn engines() -> Arc<ModelEngines> {
        let registry = EngineRegistry::new(test_arch(), BoltConfig::default());
        registry
            .register_zoo("mlp-small", &ServeConfig::default().buckets())
            .expect("register")
    }

    fn request(
        model: &Arc<ModelEngines>,
        submitted_us: f64,
        deadline_us: Option<f64>,
    ) -> QueuedRequest {
        QueuedRequest {
            model: Arc::clone(model),
            inputs: vec![Tensor::randn(&[1, 128], DType::F16, 1)],
            submitted_us,
            deadline_us,
            slot: Arc::new(ResponseSlot::default()),
        }
    }

    #[test]
    fn full_batches_form_immediately_and_respect_max_batch() {
        let model = engines();
        let mut sched = Scheduler::new();
        let key = Scheduler::key_for(&model);
        for _ in 0..19 {
            sched.enqueue(key.clone(), request(&model, 0.0, None));
        }
        // Before the timeout, only complete batches of 8 may form.
        let result = sched.form(10.0, 8, 1_000.0, false, false);
        assert_eq!(result.jobs.len(), 2);
        assert!(result.jobs.iter().all(|j| j.requests.len() == 8));
        assert_eq!(sched.pending(), 3, "partial batch keeps waiting");
        assert!(result.next_wake_us.is_some());

        // Past the timeout the remainder flushes as one partial batch.
        let result = sched.form(2_000.0, 8, 1_000.0, false, false);
        assert_eq!(result.jobs.len(), 1);
        assert_eq!(result.jobs[0].requests.len(), 3);
        assert_eq!(sched.pending(), 0);
        assert!(result.next_wake_us.is_none());
    }

    #[test]
    fn partial_batch_waits_for_timeout_then_flushes() {
        let model = engines();
        let mut sched = Scheduler::new();
        let key = Scheduler::key_for(&model);
        for _ in 0..3 {
            sched.enqueue(key.clone(), request(&model, 100.0, None));
        }
        let early = sched.form(500.0, 8, 1_000.0, false, false);
        assert!(early.jobs.is_empty(), "timeout not reached");
        assert_eq!(early.next_wake_us, Some(1_100.0));
        let due = sched.form(1_100.0, 8, 1_000.0, false, false);
        assert_eq!(due.jobs.len(), 1);
        assert_eq!(due.jobs[0].requests.len(), 3);
    }

    #[test]
    fn flush_drains_partials_immediately() {
        let model = engines();
        let mut sched = Scheduler::new();
        sched.enqueue(Scheduler::key_for(&model), request(&model, 0.0, None));
        let result = sched.form(1.0, 8, 1_000_000.0, true, false);
        assert_eq!(result.jobs.len(), 1);
        assert_eq!(sched.pending(), 0);
    }

    #[test]
    fn expired_deadlines_are_shed_not_batched() {
        let model = engines();
        let mut sched = Scheduler::new();
        let key = Scheduler::key_for(&model);
        sched.enqueue(key.clone(), request(&model, 0.0, Some(50.0)));
        sched.enqueue(key.clone(), request(&model, 0.0, None));
        let result = sched.form(100.0, 8, 10.0, false, false);
        assert_eq!(result.shed.len(), 1);
        assert_eq!(result.jobs.len(), 1, "survivor still batches");
        assert_eq!(result.jobs[0].requests.len(), 1);
    }

    #[test]
    fn batch_cap_respects_model_max_bucket() {
        let registry = EngineRegistry::new(test_arch(), BoltConfig::default());
        let model = registry
            .register_zoo("mlp-small", &[1, 2])
            .expect("register");
        let mut sched = Scheduler::new();
        let key = Scheduler::key_for(&model);
        for _ in 0..5 {
            sched.enqueue(key.clone(), request(&model, 0.0, None));
        }
        // Global max_batch 8, but the model only has buckets up to 2.
        let result = sched.form(10.0, 8, 0.0, false, false);
        assert!(result.jobs.iter().all(|j| j.requests.len() <= 2));
        assert_eq!(
            result.jobs.iter().map(|j| j.requests.len()).sum::<usize>(),
            5
        );
    }

    #[test]
    fn online_mode_ignores_model_max_bucket() {
        let registry = EngineRegistry::new(test_arch(), BoltConfig::default());
        let model = registry
            .register_zoo_dynamic("mlp-small")
            .expect("register");
        let mut sched = Scheduler::new();
        let key = Scheduler::key_for(&model);
        for _ in 0..5 {
            sched.enqueue(key.clone(), request(&model, 0.0, None));
        }
        // A zero-bucket dynamic model would cap at 1 offline; with an
        // online tuner behind the workers the global max_batch governs.
        let result = sched.form(10.0, 8, 0.0, false, true);
        assert_eq!(result.jobs.len(), 1);
        assert_eq!(result.jobs[0].requests.len(), 5);
    }
}
