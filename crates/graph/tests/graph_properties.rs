//! Property tests over randomly generated graphs: structural invariants
//! that every pass and the partitioner must preserve regardless of
//! topology.

use proptest::prelude::*;

use bolt_graph::passes::{DeadCodeElimination, Pass, PassManager};
use bolt_graph::{extract_workloads, partition, Graph, GraphBuilder, NodeId, OpKind};
use bolt_tensor::{Activation, DType};

/// Instruction stream for building a random (but always valid) CNN-ish
/// graph: each step appends one operator wired to a random previous
/// rank-4 value.
#[derive(Debug, Clone, Copy)]
enum BuildStep {
    Conv { out_ch_idx: usize, stride1: bool },
    Act(usize),
    AddWithEarlier(usize),
    Pool,
    Dead(usize),
}

fn build_steps() -> impl Strategy<Value = Vec<BuildStep>> {
    let step = prop_oneof![
        (0usize..4, any::<bool>()).prop_map(|(o, s)| BuildStep::Conv {
            out_ch_idx: o,
            stride1: s
        }),
        (0usize..4).prop_map(BuildStep::Act),
        (0usize..8).prop_map(BuildStep::AddWithEarlier),
        Just(BuildStep::Pool),
        (0usize..4).prop_map(BuildStep::Dead),
    ];
    prop::collection::vec(step, 1..12)
}

const CHANNELS: [usize; 4] = [4, 8, 12, 16];
const ACTS: [Activation; 4] = [
    Activation::ReLU,
    Activation::Gelu,
    Activation::Hardswish,
    Activation::Softplus,
];

/// Materializes the instruction stream into a graph, tracking rank-4
/// values so every reference is valid by construction.
fn build(steps: &[BuildStep]) -> Graph {
    let mut b = GraphBuilder::shapes_only(DType::F16);
    let x = b.input(&[2, 4, 16, 16]);
    let mut values: Vec<NodeId> = vec![x];
    let mut cur = x;
    for (i, step) in steps.iter().enumerate() {
        cur = match *step {
            BuildStep::Conv {
                out_ch_idx,
                stride1,
            } => {
                let stride = if stride1 { (1, 1) } else { (2, 2) };
                // Guard: don't stride below 4x4 spatial.
                let shape = b.graph().node(cur).shape.clone();
                let stride = if shape.dim(2) < 8 { (1, 1) } else { stride };
                b.conv2d_bias(
                    cur,
                    CHANNELS[out_ch_idx],
                    3,
                    stride,
                    (1, 1),
                    &format!("conv{i}"),
                )
            }
            BuildStep::Act(a) => b.activation(cur, ACTS[a], &format!("act{i}")),
            BuildStep::AddWithEarlier(pick) => {
                // Find an earlier value with an identical shape, if any.
                let shape = b.graph().node(cur).shape.clone();
                let candidates: Vec<NodeId> = values
                    .iter()
                    .copied()
                    .filter(|&v| v != cur && b.graph().node(v).shape == shape)
                    .collect();
                if candidates.is_empty() {
                    b.activation(cur, Activation::ReLU, &format!("act_fallback{i}"))
                } else {
                    let other = candidates[pick % candidates.len()];
                    b.add(cur, other, &format!("add{i}"))
                }
            }
            BuildStep::Pool => {
                let shape = b.graph().node(cur).shape.clone();
                if shape.dim(2) >= 4 {
                    b.max_pool(cur, 2, 2, &format!("pool{i}"))
                } else {
                    b.activation(cur, Activation::ReLU, &format!("act_small{i}"))
                }
            }
            BuildStep::Dead(a) => {
                // A dead branch: computed but never consumed.
                let _ = b.activation(cur, ACTS[a], &format!("dead{i}"));
                cur
            }
        };
        values.push(cur);
    }
    b.finish(&[cur])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dce_preserves_outputs_and_removes_garbage(steps in build_steps()) {
        let g = build(&steps);
        let clean = DeadCodeElimination.run(&g).unwrap();
        // Outputs preserved with identical shapes.
        prop_assert_eq!(g.outputs().len(), clean.outputs().len());
        for (a, b) in g.outputs().iter().zip(clean.outputs()) {
            prop_assert_eq!(&g.node(*a).shape, &clean.node(*b).shape);
        }
        // Idempotent.
        let twice = DeadCodeElimination.run(&clean).unwrap();
        prop_assert_eq!(clean.len(), twice.len());
        // Everything remaining is reachable (no dead nodes named dead*
        // unless they became load-bearing, which build() never does).
        prop_assert!(clean.nodes().iter().all(|n| !n.name.starts_with("dead")));
    }

    #[test]
    fn deployment_passes_preserve_output_shapes(steps in build_steps()) {
        let g = build(&steps);
        let deployed = PassManager::deployment().run(&g).unwrap();
        for (a, b) in g.outputs().iter().zip(deployed.outputs()) {
            prop_assert_eq!(&g.node(*a).shape, &deployed.node(*b).shape);
            prop_assert_eq!(g.node(*a).dtype, deployed.node(*b).dtype);
        }
    }

    #[test]
    fn partition_covers_every_non_data_node_exactly_once(steps in build_steps()) {
        let g = build(&steps);
        let part = partition(&g, |graph, id| {
            matches!(
                graph.node(id).kind,
                OpKind::Dense | OpKind::Conv2d { .. } | OpKind::BiasAdd
                    | OpKind::Activation(_) | OpKind::Add
            )
        });
        let mut seen = std::collections::HashSet::new();
        for region in &part.regions {
            for &n in &region.nodes {
                prop_assert!(seen.insert(n), "node {n} in two regions");
            }
        }
        for &n in &part.fallback {
            prop_assert!(seen.insert(n), "fallback node {n} also in a region");
        }
        for node in g.nodes() {
            if !node.kind.is_data() {
                prop_assert!(seen.contains(&node.id), "node {} uncovered", node.id);
            }
        }
        // Regions are topologically ordered internally.
        for region in &part.regions {
            for pair in region.nodes.windows(2) {
                prop_assert!(pair[0] < pair[1]);
            }
        }
    }

    #[test]
    fn workload_extraction_counts_match_anchor_nodes(steps in build_steps()) {
        let g = build(&steps);
        let anchors = g.nodes().iter().filter(|n| n.kind.is_anchor()).count();
        let total: usize = extract_workloads(&g).iter().map(|(_, count)| count).sum();
        prop_assert_eq!(anchors, total);
    }

    #[test]
    fn topological_invariant_holds(steps in build_steps()) {
        let g = build(&steps);
        for node in g.nodes() {
            for &input in &node.inputs {
                prop_assert!(input < node.id, "edge {input} -> {} breaks topo order", node.id);
            }
        }
    }
}
