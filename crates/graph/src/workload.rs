//! Task extraction: the tunable workloads of a graph.
//!
//! Both the Ansor baseline and Bolt's profiler tune *per workload* — a
//! (operator kind, concrete shape) pair — and reuse results across
//! repeated layers. This module walks a graph and returns its unique
//! GEMM/Conv2D workloads, which is also how Figure 10b's tuning-time
//! comparison counts tasks.

use std::collections::BTreeMap;

use bolt_tensor::conv_ref::Conv2dProblem;
use bolt_tensor::DType;

use crate::graph::{Graph, NodeId};
use crate::op::OpKind;

/// A tunable workload extracted from a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Workload {
    /// A dense layer lowered to GEMM: `(m, n, k)`.
    Gemm {
        /// Rows (batch).
        m: usize,
        /// Output features.
        n: usize,
        /// Input features.
        k: usize,
    },
    /// A strided-batched GEMM (e.g. per-head attention matmuls): `batch`
    /// independent `(m, n, k)` products in one kernel.
    BatchedGemm {
        /// Independent GEMM count.
        batch: usize,
        /// Rows per batch entry.
        m: usize,
        /// Columns per batch entry.
        n: usize,
        /// Reduction depth per batch entry.
        k: usize,
    },
    /// A 2-D convolution.
    Conv2d {
        /// Batch.
        n: usize,
        /// Input height/width.
        h: usize,
        /// Input width.
        w: usize,
        /// Input channels.
        c: usize,
        /// Output channels.
        k: usize,
        /// Filter size (r, s).
        kernel: (usize, usize),
        /// Stride.
        stride: (usize, usize),
        /// Padding.
        padding: (usize, usize),
    },
}

impl Workload {
    /// Converts a conv workload into the kernel library's problem type.
    pub fn to_conv_problem(&self) -> Option<Conv2dProblem> {
        match *self {
            Workload::Conv2d {
                n,
                h,
                w,
                c,
                k,
                kernel,
                stride,
                padding,
            } => Some(Conv2dProblem {
                n,
                h,
                w,
                c,
                k,
                r: kernel.0,
                s: kernel.1,
                stride,
                padding,
                dilation: (1, 1),
            }),
            _ => None,
        }
    }

    /// Total multiply-accumulates of the workload.
    pub fn macs(&self) -> u64 {
        match *self {
            Workload::Gemm { m, n, k } => (m * n * k) as u64,
            Workload::BatchedGemm { batch, m, n, k } => (batch * m * n * k) as u64,
            Workload::Conv2d { .. } => self.to_conv_problem().expect("conv").macs(),
        }
    }
}

/// Extracts the workload of a single node, if it is an anchor op.
pub fn node_workload(graph: &Graph, id: NodeId) -> Option<Workload> {
    let node = graph.node(id);
    match &node.kind {
        OpKind::Dense => {
            let x = &graph.node(node.inputs[0]).shape;
            let w = &graph.node(node.inputs[1]).shape;
            Some(Workload::Gemm {
                m: x.dim(0),
                n: w.dim(0),
                k: w.dim(1),
            })
        }
        OpKind::Conv2d {
            stride, padding, ..
        } => {
            let x = &graph.node(node.inputs[0]).shape;
            let w = &graph.node(node.inputs[1]).shape;
            Some(Workload::Conv2d {
                n: x.dim(0),
                h: x.dim(2),
                w: x.dim(3),
                c: x.dim(1),
                k: w.dim(0),
                kernel: (w.dim(2), w.dim(3)),
                stride: *stride,
                padding: *padding,
            })
        }
        _ => None,
    }
}

/// Extracts the unique workloads of `graph` with their occurrence counts,
/// in a deterministic order.
pub fn extract_workloads(graph: &Graph) -> Vec<(Workload, usize)> {
    let mut counts: BTreeMap<Workload, usize> = BTreeMap::new();
    for node in graph.nodes() {
        if let Some(w) = node_workload(graph, node.id) {
            *counts.entry(w).or_insert(0) += 1;
        }
    }
    counts.into_iter().collect()
}

/// The element dtype the graph computes in (from its first input).
pub fn graph_dtype(graph: &Graph) -> DType {
    graph
        .nodes()
        .iter()
        .find_map(|n| match n.kind {
            OpKind::Input { dtype, .. } => Some(dtype),
            _ => None,
        })
        .unwrap_or(DType::F16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use bolt_tensor::Activation;

    #[test]
    fn dense_workload_extraction() {
        let mut b = GraphBuilder::new(DType::F16);
        let x = b.input(&[32, 512]);
        let d = b.dense_bias(x, 1000, "fc");
        let g = b.finish(&[d]);
        let ws = extract_workloads(&g);
        assert_eq!(
            ws,
            vec![(
                Workload::Gemm {
                    m: 32,
                    n: 1000,
                    k: 512
                },
                1
            )]
        );
    }

    #[test]
    fn repeated_layers_are_deduplicated() {
        let mut b = GraphBuilder::new(DType::F16);
        let x = b.input(&[1, 16, 8, 8]);
        let mut cur = x;
        for i in 0..4 {
            cur = b.conv2d_bias(cur, 16, 3, (1, 1), (1, 1), &format!("c{i}"));
            cur = b.activation(cur, Activation::ReLU, &format!("r{i}"));
        }
        let g = b.finish(&[cur]);
        let ws = extract_workloads(&g);
        assert_eq!(ws.len(), 1, "{ws:?}");
        assert_eq!(ws[0].1, 4);
    }

    #[test]
    fn conv_workload_roundtrips_to_problem() {
        let w = Workload::Conv2d {
            n: 32,
            h: 56,
            w: 56,
            c: 64,
            k: 64,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
        };
        let p = w.to_conv_problem().unwrap();
        assert_eq!(p.out_h(), 56);
        assert_eq!(w.macs(), p.macs());
        assert_eq!(Workload::Gemm { m: 2, n: 3, k: 4 }.to_conv_problem(), None);
    }

    #[test]
    fn graph_dtype_from_input() {
        let mut b = GraphBuilder::new(DType::F16);
        let x = b.input(&[1, 4]);
        let g = b.finish(&[x]);
        assert_eq!(graph_dtype(&g), DType::F16);
    }
}
