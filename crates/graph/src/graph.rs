//! The computational graph: nodes, edges, shape inference, rewriting.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

use bolt_tensor::{DType, Shape, Tensor};

use crate::error::GraphError;
use crate::op::OpKind;
use crate::Result;

/// Identifier of a node within its graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The raw index (stable within one graph instance).
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// One operator instance in the graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// This node's id.
    pub id: NodeId,
    /// The operator.
    pub kind: OpKind,
    /// Data inputs, in operator-defined order.
    pub inputs: Vec<NodeId>,
    /// Human-readable name (unique not required).
    pub name: String,
    /// Inferred output shape.
    pub shape: Shape,
    /// Inferred output dtype.
    pub dtype: DType,
}

/// A directed acyclic computational graph. Nodes are stored in
/// topological (insertion) order: an edge always points from a lower to a
/// higher id.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    nodes: Vec<Node>,
    outputs: Vec<NodeId>,
    /// Parameter data for `Constant` nodes (may be absent; the runtime
    /// materializes deterministic random data for timing-only runs).
    params: HashMap<NodeId, Tensor>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Adds a node, inferring its output shape and dtype.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] for dangling inputs and
    /// [`GraphError::Infer`] when shapes are inconsistent.
    pub fn add(
        &mut self,
        kind: OpKind,
        inputs: &[NodeId],
        name: impl Into<String>,
    ) -> Result<NodeId> {
        for &input in inputs {
            if input.0 >= self.nodes.len() {
                return Err(GraphError::UnknownNode { id: input.0 });
            }
        }
        let name = name.into();
        let (shape, dtype) = self.infer(&kind, inputs, &name)?;
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            id,
            kind,
            inputs: inputs.to_vec(),
            name,
            shape,
            dtype,
        });
        Ok(id)
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Looks up a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different graph.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// The declared graph outputs.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Declares the graph outputs.
    pub fn set_outputs(&mut self, outputs: &[NodeId]) {
        self.outputs = outputs.to_vec();
    }

    /// The graph inputs (all `Input` nodes, in order).
    pub fn input_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, OpKind::Input { .. }))
            .map(|n| n.id)
            .collect()
    }

    /// Attaches parameter data to a `Constant` node.
    ///
    /// # Errors
    ///
    /// Returns an error if the node is not a constant or shapes mismatch.
    pub fn set_param(&mut self, id: NodeId, tensor: Tensor) -> Result<()> {
        let node = &self.nodes[id.0];
        match &node.kind {
            OpKind::Constant { shape, .. } => {
                if tensor.shape().numel() != shape.numel() {
                    return Err(GraphError::Infer {
                        node: node.name.clone(),
                        reason: format!(
                            "param numel {} != declared {}",
                            tensor.shape().numel(),
                            shape.numel()
                        ),
                    });
                }
                self.params.insert(id, tensor);
                Ok(())
            }
            other => Err(GraphError::Pass {
                pass: "set_param".into(),
                reason: format!("node {id} is {}, not a constant", other.name()),
            }),
        }
    }

    /// Parameter data for a constant node, if attached.
    pub fn param(&self, id: NodeId) -> Option<&Tensor> {
        self.params.get(&id)
    }

    /// The ids of all nodes that consume `id`.
    pub fn consumers(&self, id: NodeId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.inputs.contains(&id))
            .map(|n| n.id)
            .collect()
    }

    /// The single consumer of `id`, if it has exactly one (and it is not a
    /// graph output consumed elsewhere).
    pub fn single_consumer(&self, id: NodeId) -> Option<NodeId> {
        let consumers = self.consumers(id);
        if consumers.len() == 1 && !self.outputs.contains(&id) {
            Some(consumers[0])
        } else {
            None
        }
    }

    /// Redirects every use of `old` (including outputs) to `new`. Used by
    /// rewriting passes; the dead producer is removed later by DCE.
    pub fn replace_uses(&mut self, old: NodeId, new: NodeId) {
        for node in &mut self.nodes {
            for input in &mut node.inputs {
                if *input == old {
                    *input = new;
                }
            }
        }
        for out in &mut self.outputs {
            if *out == old {
                *out = new;
            }
        }
    }

    /// Rebuilds the graph keeping only nodes reachable from the outputs,
    /// returning the new graph and the old→new id mapping.
    pub fn eliminate_dead_nodes(&self) -> (Graph, HashMap<NodeId, NodeId>) {
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = self.outputs.clone();
        while let Some(id) = stack.pop() {
            if live[id.0] {
                continue;
            }
            live[id.0] = true;
            stack.extend(self.nodes[id.0].inputs.iter().copied());
        }
        // Keep inputs alive even if unused, so signatures don't change.
        for n in &self.nodes {
            if matches!(n.kind, OpKind::Input { .. }) {
                live[n.id.0] = true;
            }
        }

        let mut mapping = HashMap::new();
        let mut out = Graph::new();
        for node in &self.nodes {
            if !live[node.id.0] {
                continue;
            }
            let new_inputs: Vec<NodeId> = node.inputs.iter().map(|i| mapping[i]).collect();
            let new_id = out
                .add(node.kind.clone(), &new_inputs, node.name.clone())
                .expect("rebuilding a valid graph cannot fail");
            mapping.insert(node.id, new_id);
            if let Some(p) = self.params.get(&node.id) {
                out.params.insert(new_id, p.clone());
            }
        }
        out.outputs = self.outputs.iter().map(|o| mapping[o]).collect();
        (out, mapping)
    }

    fn infer(&self, kind: &OpKind, inputs: &[NodeId], name: &str) -> Result<(Shape, DType)> {
        let err = |reason: String| GraphError::Infer {
            node: name.to_string(),
            reason,
        };
        let shape_of = |id: NodeId| self.nodes[id.0].shape.clone();
        let dtype_of = |id: NodeId| self.nodes[id.0].dtype;
        let need = |n: usize| -> Result<()> {
            if inputs.len() != n {
                Err(err(format!("expected {n} inputs, got {}", inputs.len())))
            } else {
                Ok(())
            }
        };

        match kind {
            OpKind::Input { shape, dtype } | OpKind::Constant { shape, dtype } => {
                need(0)?;
                Ok((shape.clone(), *dtype))
            }
            OpKind::Dense => {
                need(2)?;
                let x = shape_of(inputs[0]);
                let w = shape_of(inputs[1]);
                if x.rank() != 2 || w.rank() != 2 || x.dim(1) != w.dim(1) {
                    return Err(err(format!("dense shapes {x} @ {w}^T")));
                }
                Ok((Shape::new(&[x.dim(0), w.dim(0)]), dtype_of(inputs[0])))
            }
            OpKind::Conv2d {
                stride,
                padding,
                dilation,
            } => {
                need(2)?;
                let x = shape_of(inputs[0]);
                let w = shape_of(inputs[1]);
                if x.rank() != 4 || w.rank() != 4 {
                    return Err(err("conv2d needs rank-4 input and filter".into()));
                }
                if x.dim(1) != w.dim(1) {
                    return Err(err(format!(
                        "conv2d channels: input C={} filter C={}",
                        x.dim(1),
                        w.dim(1)
                    )));
                }
                let (h, w_in) = (x.dim(2), x.dim(3));
                let (r, s) = (w.dim(2), w.dim(3));
                let p = (h + 2 * padding.0)
                    .checked_sub(dilation.0 * (r - 1) + 1)
                    .ok_or_else(|| err("filter larger than padded input".into()))?
                    / stride.0
                    + 1;
                let q = (w_in + 2 * padding.1)
                    .checked_sub(dilation.1 * (s - 1) + 1)
                    .ok_or_else(|| err("filter larger than padded input".into()))?
                    / stride.1
                    + 1;
                Ok((Shape::new(&[x.dim(0), w.dim(0), p, q]), dtype_of(inputs[0])))
            }
            OpKind::BiasAdd => {
                need(2)?;
                let x = shape_of(inputs[0]);
                let b = shape_of(inputs[1]);
                let channels = if x.rank() == 4 {
                    x.dim(1)
                } else {
                    x.dim(x.rank() - 1)
                };
                if b.rank() != 1 || b.dim(0) != channels {
                    return Err(err(format!("bias {b} vs channels {channels}")));
                }
                Ok((x, dtype_of(inputs[0])))
            }
            OpKind::Activation(_) | OpKind::Softmax => {
                need(1)?;
                Ok((shape_of(inputs[0]), dtype_of(inputs[0])))
            }
            OpKind::Add => {
                need(2)?;
                let a = shape_of(inputs[0]);
                let b = shape_of(inputs[1]);
                if a != b {
                    return Err(err(format!("add shapes {a} vs {b}")));
                }
                Ok((a, dtype_of(inputs[0])))
            }
            OpKind::BatchNorm { .. } => {
                need(5)?;
                let x = shape_of(inputs[0]);
                if x.rank() != 4 {
                    return Err(err("batch_norm needs rank-4 input".into()));
                }
                let c = x.dim(1);
                for &p in &inputs[1..] {
                    let s = shape_of(p);
                    if s.rank() != 1 || s.dim(0) != c {
                        return Err(err(format!("bn param {s} vs channels {c}")));
                    }
                }
                Ok((x, dtype_of(inputs[0])))
            }
            OpKind::Pool {
                window,
                stride,
                padding,
                ..
            } => {
                need(1)?;
                let x = shape_of(inputs[0]);
                if x.rank() != 4 {
                    return Err(err("pool needs rank-4 input".into()));
                }
                let p = (x.dim(2) + 2 * padding - window) / stride + 1;
                let q = (x.dim(3) + 2 * padding - window) / stride + 1;
                Ok((Shape::new(&[x.dim(0), x.dim(1), p, q]), dtype_of(inputs[0])))
            }
            OpKind::GlobalAvgPool => {
                need(1)?;
                let x = shape_of(inputs[0]);
                if x.rank() != 4 {
                    return Err(err("global_avg_pool needs rank-4 input".into()));
                }
                Ok((Shape::new(&[x.dim(0), x.dim(1)]), dtype_of(inputs[0])))
            }
            OpKind::Concat => {
                if inputs.is_empty() {
                    return Err(err("concat needs at least one input".into()));
                }
                let first = shape_of(inputs[0]);
                let mut channels = 0usize;
                for &i in inputs {
                    let s = shape_of(i);
                    if s.rank() != first.rank() || s.rank() < 2 {
                        return Err(err(format!("concat rank mismatch: {first} vs {s}")));
                    }
                    for d in 0..s.rank() {
                        if d != 1 && s.dim(d) != first.dim(d) {
                            return Err(err(format!("concat dim {d}: {first} vs {s}")));
                        }
                    }
                    channels += s.dim(1);
                }
                let mut dims = first.dims().to_vec();
                dims[1] = channels;
                Ok((Shape::new(&dims), dtype_of(inputs[0])))
            }
            OpKind::Flatten => {
                need(1)?;
                let x = shape_of(inputs[0]);
                if x.rank() < 2 {
                    return Err(err("flatten needs rank >= 2".into()));
                }
                let rest: usize = x.dims()[1..].iter().product();
                Ok((Shape::new(&[x.dim(0), rest]), dtype_of(inputs[0])))
            }
        }
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "graph ({} nodes):", self.nodes.len())?;
        for n in &self.nodes {
            let inputs: Vec<String> = n.inputs.iter().map(|i| i.to_string()).collect();
            writeln!(
                f,
                "  {} = {}({})  # {} {} \"{}\"",
                n.id,
                n.kind.name(),
                inputs.join(", "),
                n.shape,
                n.dtype,
                n.name
            )?;
        }
        writeln!(
            f,
            "  outputs: {:?}",
            self.outputs.iter().map(|o| o.0).collect::<Vec<_>>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_tensor::Activation;

    fn input4(g: &mut Graph, dims: &[usize]) -> NodeId {
        g.add(
            OpKind::Input {
                shape: Shape::new(dims),
                dtype: DType::F16,
            },
            &[],
            "x",
        )
        .unwrap()
    }

    fn constant(g: &mut Graph, dims: &[usize]) -> NodeId {
        g.add(
            OpKind::Constant {
                shape: Shape::new(dims),
                dtype: DType::F16,
            },
            &[],
            "w",
        )
        .unwrap()
    }

    #[test]
    fn conv_shape_inference() {
        let mut g = Graph::new();
        let x = input4(&mut g, &[32, 3, 224, 224]);
        let w = constant(&mut g, &[64, 3, 7, 7]);
        let c = g
            .add(
                OpKind::Conv2d {
                    stride: (2, 2),
                    padding: (3, 3),
                    dilation: (1, 1),
                },
                &[x, w],
                "conv1",
            )
            .unwrap();
        assert_eq!(g.node(c).shape.dims(), &[32, 64, 112, 112]);
    }

    #[test]
    fn dense_shape_inference() {
        let mut g = Graph::new();
        let x = g
            .add(
                OpKind::Input {
                    shape: Shape::new(&[32, 512]),
                    dtype: DType::F16,
                },
                &[],
                "x",
            )
            .unwrap();
        let w = constant(&mut g, &[1000, 512]);
        let d = g.add(OpKind::Dense, &[x, w], "fc").unwrap();
        assert_eq!(g.node(d).shape.dims(), &[32, 1000]);
    }

    #[test]
    fn channel_mismatch_rejected() {
        let mut g = Graph::new();
        let x = input4(&mut g, &[1, 3, 8, 8]);
        let w = constant(&mut g, &[8, 4, 3, 3]);
        let r = g.add(
            OpKind::Conv2d {
                stride: (1, 1),
                padding: (1, 1),
                dilation: (1, 1),
            },
            &[x, w],
            "bad",
        );
        assert!(r.is_err());
    }

    #[test]
    fn pool_flatten_pipeline() {
        let mut g = Graph::new();
        let x = input4(&mut g, &[2, 8, 8, 8]);
        let p = g
            .add(
                OpKind::Pool {
                    kind: crate::op::PoolKind::Max,
                    window: 2,
                    stride: 2,
                    padding: 0,
                },
                &[x],
                "pool",
            )
            .unwrap();
        assert_eq!(g.node(p).shape.dims(), &[2, 8, 4, 4]);
        let f = g.add(OpKind::Flatten, &[p], "flat").unwrap();
        assert_eq!(g.node(f).shape.dims(), &[2, 128]);
        let gap = g.add(OpKind::GlobalAvgPool, &[p], "gap").unwrap();
        assert_eq!(g.node(gap).shape.dims(), &[2, 8]);
    }

    #[test]
    fn consumers_and_single_consumer() {
        let mut g = Graph::new();
        let x = input4(&mut g, &[1, 2, 4, 4]);
        let a = g
            .add(OpKind::Activation(Activation::ReLU), &[x], "r1")
            .unwrap();
        let b = g
            .add(OpKind::Activation(Activation::Gelu), &[x], "r2")
            .unwrap();
        g.set_outputs(&[a, b]);
        assert_eq!(g.consumers(x).len(), 2);
        assert_eq!(g.single_consumer(x), None);
        assert_eq!(g.single_consumer(a), None); // graph output
    }

    #[test]
    fn replace_uses_and_dce() {
        let mut g = Graph::new();
        let x = input4(&mut g, &[1, 2, 4, 4]);
        let dead = g
            .add(OpKind::Activation(Activation::Gelu), &[x], "dead")
            .unwrap();
        let live = g
            .add(OpKind::Activation(Activation::ReLU), &[dead], "live")
            .unwrap();
        g.set_outputs(&[live]);
        // Bypass `dead`.
        g.replace_uses(dead, x);
        let (clean, mapping) = g.eliminate_dead_nodes();
        assert_eq!(clean.len(), 2); // input + live
        assert!(mapping.contains_key(&live));
        assert!(!mapping.contains_key(&dead));
        assert_eq!(clean.outputs().len(), 1);
    }

    #[test]
    fn params_round_trip() {
        let mut g = Graph::new();
        let w = constant(&mut g, &[4, 4]);
        assert!(g.param(w).is_none());
        g.set_param(w, Tensor::ones(&[4, 4], DType::F16)).unwrap();
        assert!(g.param(w).is_some());
        let bad = Tensor::ones(&[3, 3], DType::F16);
        assert!(g.set_param(w, bad).is_err());
        let x = input4(&mut g, &[1, 1, 2, 2]);
        assert!(g
            .set_param(x, Tensor::ones(&[1, 1, 2, 2], DType::F16))
            .is_err());
    }

    #[test]
    fn dangling_input_rejected() {
        let mut g = Graph::new();
        let r = g.add(OpKind::Flatten, &[NodeId(99)], "bad");
        assert!(matches!(r, Err(GraphError::UnknownNode { id: 99 })));
    }

    #[test]
    fn display_renders() {
        let mut g = Graph::new();
        let x = input4(&mut g, &[1, 2, 4, 4]);
        g.set_outputs(&[x]);
        let s = g.to_string();
        assert!(s.contains("input"));
        assert!(s.contains("%0"));
    }
}
