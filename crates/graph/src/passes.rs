//! Graph-rewriting passes.
//!
//! Passes are graph→graph transformations built on a rebuild-walk (the
//! Relay mutator pattern): nodes are visited in topological order and
//! mapped into a fresh graph, with pattern-matched subgraphs replaced.
//! Includes:
//!
//! * [`BatchNormFold`] — folds inference-mode BatchNorm into the preceding
//!   convolution's weights and bias (standard deployment canonicalization;
//!   required before Bolt sees the graph, since CUTLASS has no BN);
//! * [`RepVggReparam`] — RepVGG's structural re-parameterization (Ding et
//!   al., 2021): merges parallel 3×3 / 1×1 / identity branches into a
//!   single 3×3 convolution for inference, exactly the model family of the
//!   paper's Section 4.3 case study;
//! * [`DeadCodeElimination`] — drops unreachable nodes after rewrites.

use std::collections::HashMap;

use bolt_tensor::{DType, Shape, Tensor};

use crate::error::GraphError;
use crate::graph::{Graph, Node, NodeId};
use crate::op::OpKind;
use crate::Result;

/// A graph transformation.
pub trait Pass {
    /// Pass name for logs and errors.
    fn name(&self) -> &'static str;
    /// Runs the pass, producing a rewritten graph.
    ///
    /// # Errors
    ///
    /// Pass-specific; see each pass.
    fn run(&self, graph: &Graph) -> Result<Graph>;
}

/// Runs a sequence of passes in order.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl std::fmt::Debug for PassManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.passes.iter().map(|p| p.name()).collect();
        f.debug_struct("PassManager")
            .field("passes", &names)
            .finish()
    }
}

impl PassManager {
    /// An empty pipeline.
    pub fn new() -> Self {
        PassManager::default()
    }

    /// The standard deployment pipeline: BN folding, re-parameterization,
    /// then DCE.
    pub fn deployment() -> Self {
        let mut pm = PassManager::new();
        pm.add(BatchNormFold);
        pm.add(RepVggReparam);
        pm.add(DeadCodeElimination);
        pm
    }

    /// Appends a pass.
    pub fn add<P: Pass + 'static>(&mut self, pass: P) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Runs all passes in order.
    ///
    /// # Errors
    ///
    /// Propagates the first pass failure.
    pub fn run(&self, graph: &Graph) -> Result<Graph> {
        let mut g = graph.clone();
        for pass in &self.passes {
            g = pass.run(&g)?;
        }
        Ok(g)
    }
}

/// Rebuild-walk helper: copies nodes into a new graph with id mapping.
struct Rebuilder {
    new: Graph,
    map: HashMap<NodeId, NodeId>,
}

impl Rebuilder {
    fn new() -> Self {
        Rebuilder {
            new: Graph::new(),
            map: HashMap::new(),
        }
    }

    /// Copies `node` verbatim (with mapped inputs and params).
    fn emit_copy(&mut self, node: &Node, old: &Graph) -> Result<NodeId> {
        let inputs: Vec<NodeId> = node.inputs.iter().map(|i| self.map[i]).collect();
        let id = self
            .new
            .add(node.kind.clone(), &inputs, node.name.clone())?;
        if let Some(p) = old.param(node.id) {
            self.new.set_param(id, p.clone())?;
        }
        self.map.insert(node.id, id);
        Ok(id)
    }

    /// Adds a fresh constant with optional data.
    fn emit_constant(
        &mut self,
        dims: &[usize],
        dtype: DType,
        data: Option<Tensor>,
        name: String,
    ) -> Result<NodeId> {
        let id = self.new.add(
            OpKind::Constant {
                shape: Shape::new(dims),
                dtype,
            },
            &[],
            name,
        )?;
        if let Some(t) = data {
            self.new.set_param(id, t)?;
        }
        Ok(id)
    }

    fn finish(mut self, old: &Graph) -> Graph {
        let outputs: Vec<NodeId> = old.outputs().iter().map(|o| self.map[o]).collect();
        self.new.set_outputs(&outputs);
        self.new
    }
}

/// Removes nodes unreachable from the outputs.
#[derive(Debug, Clone, Copy)]
pub struct DeadCodeElimination;

impl Pass for DeadCodeElimination {
    fn name(&self) -> &'static str {
        "dead_code_elimination"
    }

    fn run(&self, graph: &Graph) -> Result<Graph> {
        Ok(graph.eliminate_dead_nodes().0)
    }
}

/// Folds `BatchNorm(Conv2d(x, W))` into `BiasAdd(Conv2d(x, W'), b')` with
/// `W' = W * gamma / sqrt(var + eps)` (per output channel) and
/// `b' = beta - mean * gamma / sqrt(var + eps)`.
#[derive(Debug, Clone, Copy)]
pub struct BatchNormFold;

impl Pass for BatchNormFold {
    fn name(&self) -> &'static str {
        "batch_norm_fold"
    }

    fn run(&self, graph: &Graph) -> Result<Graph> {
        let mut rb = Rebuilder::new();
        for node in graph.nodes() {
            if let OpKind::BatchNorm { eps } = node.kind {
                if let Some(folded) = try_fold_bn(graph, node, eps, &mut rb)? {
                    rb.map.insert(node.id, folded);
                    continue;
                }
            }
            rb.emit_copy(node, graph)?;
        }
        Ok(rb.finish(graph).eliminate_dead_nodes().0)
    }
}

fn bn_scale_shift(graph: &Graph, bn_inputs: &[NodeId], eps: f32) -> Option<(Vec<f32>, Vec<f32>)> {
    let gamma = graph.param(bn_inputs[1])?;
    let beta = graph.param(bn_inputs[2])?;
    let mean = graph.param(bn_inputs[3])?;
    let var = graph.param(bn_inputs[4])?;
    let scale: Vec<f32> = gamma
        .data()
        .iter()
        .zip(var.data())
        .map(|(g, v)| g / (v + eps).sqrt())
        .collect();
    let shift: Vec<f32> = beta
        .data()
        .iter()
        .zip(mean.data())
        .zip(&scale)
        .map(|((b, m), s)| b - m * s)
        .collect();
    Some((scale, shift))
}

fn try_fold_bn(graph: &Graph, bn: &Node, eps: f32, rb: &mut Rebuilder) -> Result<Option<NodeId>> {
    let conv_id = bn.inputs[0];
    let conv = graph.node(conv_id);
    let OpKind::Conv2d {
        stride,
        padding,
        dilation,
    } = conv.kind
    else {
        return Ok(None);
    };
    // The conv must feed only this BN, or the rewrite would change other
    // consumers.
    if graph.consumers(conv_id).len() != 1 || graph.outputs().contains(&conv_id) {
        return Ok(None);
    }
    let w_id = conv.inputs[1];
    let w_node = graph.node(w_id);
    let (k, dims) = match &w_node.kind {
        OpKind::Constant { shape, .. } => (shape.dim(0), shape.dims().to_vec()),
        _ => return Ok(None),
    };

    let Some((scale, shift)) = bn_scale_shift(graph, &bn.inputs, eps) else {
        return Ok(None); // parameters not materialized: leave BN in place
    };

    // Scaled weights.
    let new_w = if let Some(w) = graph.param(w_id) {
        let per_filter: usize = dims[1..].iter().product();
        let mut data = w.data().to_vec();
        for ki in 0..k {
            for e in 0..per_filter {
                data[ki * per_filter + e] *= scale[ki];
            }
        }
        Some(Tensor::from_vec(&dims, w.dtype(), data).map_err(GraphError::from)?)
    } else {
        None
    };
    let bias = Tensor::from_vec(&[k], bn.dtype, shift).map_err(GraphError::from)?;

    let x_new = rb.map[&conv.inputs[0]];
    let w_new = rb.emit_constant(
        &dims,
        w_node.dtype,
        new_w,
        format!("{}.folded_weight", conv.name),
    )?;
    let conv_new = rb.new.add(
        OpKind::Conv2d {
            stride,
            padding,
            dilation,
        },
        &[x_new, w_new],
        format!("{}.folded", conv.name),
    )?;
    let b_new = rb.emit_constant(
        &[k],
        bn.dtype,
        Some(bias),
        format!("{}.folded_bias", conv.name),
    )?;
    let out = rb.new.add(
        OpKind::BiasAdd,
        &[conv_new, b_new],
        format!("{}.bn_bias", conv.name),
    )?;
    Ok(Some(out))
}

/// RepVGG structural re-parameterization: collapses
/// `Add(conv3x3-branch, conv1x1-branch [, identity-branch])` (each branch
/// optionally `BiasAdd`-terminated, identity optionally a `BatchNorm`)
/// into a single 3×3 convolution plus bias. Run after [`BatchNormFold`].
#[derive(Debug, Clone, Copy)]
pub struct RepVggReparam;

#[derive(Debug)]
enum Branch {
    /// `BiasAdd(Conv2d(x, W), b)` or bare `Conv2d(x, W)`, kernel 1 or 3.
    Conv {
        weight: NodeId,
        bias: Option<NodeId>,
        kernel: usize,
    },
    /// The source tensor itself (pure identity).
    Identity,
    /// `BatchNorm(x)` identity branch (unfolded BN directly on x).
    IdentityBn { bn: NodeId, eps: f32 },
}

impl Pass for RepVggReparam {
    fn name(&self) -> &'static str {
        "repvgg_reparam"
    }

    fn run(&self, graph: &Graph) -> Result<Graph> {
        let mut rb = Rebuilder::new();
        for node in graph.nodes() {
            if node.kind == OpKind::Add {
                if let Some(mapped) = try_reparam(graph, node, &mut rb)? {
                    rb.map.insert(node.id, mapped);
                    continue;
                }
            }
            rb.emit_copy(node, graph)?;
        }
        Ok(rb.finish(graph).eliminate_dead_nodes().0)
    }
}

fn flatten_add(graph: &Graph, id: NodeId, out: &mut Vec<NodeId>) {
    let node = graph.node(id);
    if node.kind == OpKind::Add && graph.consumers(id).len() <= 1 {
        flatten_add(graph, node.inputs[0], out);
        flatten_add(graph, node.inputs[1], out);
    } else {
        out.push(id);
    }
}

fn classify_branch(graph: &Graph, id: NodeId, source: NodeId) -> Option<Branch> {
    if id == source {
        return Some(Branch::Identity);
    }
    let node = graph.node(id);
    match &node.kind {
        OpKind::BatchNorm { eps } if node.inputs[0] == source => {
            Some(Branch::IdentityBn { bn: id, eps: *eps })
        }
        OpKind::BiasAdd => {
            let conv = graph.node(node.inputs[0]);
            if let OpKind::Conv2d {
                stride,
                padding,
                dilation,
            } = conv.kind
            {
                if conv.inputs[0] != source || stride != (1, 1) || dilation != (1, 1) {
                    return None;
                }
                let w = graph.node(conv.inputs[1]);
                let kernel = w.shape.dim(2);
                let pad_ok =
                    (kernel == 3 && padding == (1, 1)) || (kernel == 1 && padding == (0, 0));
                if !pad_ok || w.shape.dim(2) != w.shape.dim(3) {
                    return None;
                }
                Some(Branch::Conv {
                    weight: conv.inputs[1],
                    bias: Some(node.inputs[1]),
                    kernel,
                })
            } else {
                None
            }
        }
        OpKind::Conv2d {
            stride,
            padding,
            dilation,
        } => {
            if node.inputs[0] != source || *stride != (1, 1) || *dilation != (1, 1) {
                return None;
            }
            let w = graph.node(node.inputs[1]);
            let kernel = w.shape.dim(2);
            let pad_ok = (kernel == 3 && *padding == (1, 1)) || (kernel == 1 && *padding == (0, 0));
            if !pad_ok {
                return None;
            }
            Some(Branch::Conv {
                weight: node.inputs[1],
                bias: None,
                kernel,
            })
        }
        _ => None,
    }
}

/// Finds the common source feeding every branch of the Add tree.
fn common_source(graph: &Graph, branches: &[NodeId]) -> Option<NodeId> {
    let mut candidates: Vec<NodeId> = Vec::new();
    for &b in branches {
        let node = graph.node(b);
        let src = match &node.kind {
            OpKind::BiasAdd => graph.node(node.inputs[0]).inputs.first().copied()?,
            OpKind::Conv2d { .. } | OpKind::BatchNorm { .. } => node.inputs[0],
            _ => b, // identity candidate: the branch is the source itself
        };
        candidates.push(src);
    }
    // The source is the candidate every branch agrees on (identity branches
    // vote for themselves).
    candidates
        .iter()
        .find(|&&c| {
            candidates.iter().all(|&x| x == c)
                || branches
                    .iter()
                    .zip(&candidates)
                    .all(|(&b, &s)| s == c || b == c)
        })
        .copied()
}

fn try_reparam(graph: &Graph, add: &Node, rb: &mut Rebuilder) -> Result<Option<NodeId>> {
    // Only the top Add of a branch tree is rewritten.
    if graph
        .consumers(add.id)
        .iter()
        .any(|&c| graph.node(c).kind == OpKind::Add && graph.consumers(add.id).len() == 1)
    {
        return Ok(None);
    }
    let mut branch_ids = Vec::new();
    flatten_add(graph, add.id, &mut branch_ids);
    if branch_ids.len() < 2 || branch_ids.len() > 3 {
        return Ok(None);
    }
    let Some(source) = common_source(graph, &branch_ids) else {
        return Ok(None);
    };
    let branches: Option<Vec<Branch>> = branch_ids
        .iter()
        .map(|&b| classify_branch(graph, b, source))
        .collect();
    let Some(branches) = branches else {
        return Ok(None);
    };
    // Exactly one 3x3 conv branch anchors the merge.
    let k3 = branches
        .iter()
        .filter(|b| matches!(b, Branch::Conv { kernel: 3, .. }))
        .count();
    if k3 != 1 {
        return Ok(None);
    }
    let src_shape = &graph.node(source).shape;
    let (c_in, k_out) = (src_shape.dim(1), add.shape.dim(1));
    let identity_present = branches
        .iter()
        .any(|b| matches!(b, Branch::Identity | Branch::IdentityBn { .. }));
    if identity_present && c_in != k_out {
        return Ok(None); // identity branch requires matching channels
    }

    // Merge parameters when all branch params are materialized.
    let dtype = add.dtype;
    let merged = merge_branch_params(graph, &branches, c_in, k_out);
    let (w_data, b_data) = match merged {
        Some((w, b)) => (
            Some(Tensor::from_vec(&[k_out, c_in, 3, 3], dtype, w).map_err(GraphError::from)?),
            Some(Tensor::from_vec(&[k_out], dtype, b).map_err(GraphError::from)?),
        ),
        None => (None, None),
    };

    let x_new = rb.map[&source];
    let w_new = rb.emit_constant(
        &[k_out, c_in, 3, 3],
        dtype,
        w_data,
        format!("{}.reparam_weight", add.name),
    )?;
    let conv = rb.new.add(
        OpKind::Conv2d {
            stride: (1, 1),
            padding: (1, 1),
            dilation: (1, 1),
        },
        &[x_new, w_new],
        format!("{}.reparam", add.name),
    )?;
    let b_new = rb.emit_constant(
        &[k_out],
        dtype,
        b_data,
        format!("{}.reparam_bias", add.name),
    )?;
    let out = rb.new.add(
        OpKind::BiasAdd,
        &[conv, b_new],
        format!("{}.reparam_bias_add", add.name),
    )?;
    Ok(Some(out))
}

fn merge_branch_params(
    graph: &Graph,
    branches: &[Branch],
    c_in: usize,
    k_out: usize,
) -> Option<(Vec<f32>, Vec<f32>)> {
    let mut w = vec![0.0f32; k_out * c_in * 9];
    let mut b = vec![0.0f32; k_out];
    let center = |k: usize, c: usize| (k * c_in + c) * 9 + 4; // (1,1) of 3x3

    for branch in branches {
        match branch {
            Branch::Conv {
                weight,
                bias,
                kernel,
            } => {
                let wt = graph.param(*weight)?;
                match kernel {
                    3 => {
                        for (dst, src) in w.iter_mut().zip(wt.data()) {
                            *dst += src;
                        }
                    }
                    1 => {
                        for k in 0..k_out {
                            for c in 0..c_in {
                                w[center(k, c)] += wt.data()[k * c_in + c];
                            }
                        }
                    }
                    _ => return None,
                }
                if let Some(bias) = bias {
                    let bt = graph.param(*bias)?;
                    for (dst, src) in b.iter_mut().zip(bt.data()) {
                        *dst += src;
                    }
                }
            }
            Branch::Identity => {
                for k in 0..k_out {
                    w[center(k, k)] += 1.0;
                }
            }
            Branch::IdentityBn { bn, eps } => {
                let bn_node = graph.node(*bn);
                let (scale, shift) = bn_scale_shift(graph, &bn_node.inputs, *eps)?;
                for k in 0..k_out {
                    w[center(k, k)] += scale[k];
                    b[k] += shift[k];
                }
            }
        }
    }
    Some((w, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use bolt_tensor::Activation;

    #[test]
    fn bn_fold_removes_batch_norms() {
        let mut b = GraphBuilder::new(DType::F32);
        let x = b.input(&[1, 4, 8, 8]);
        let c = b.conv2d(x, 8, 3, (1, 1), (1, 1), "conv");
        let bn = b.batch_norm(c, "bn");
        let r = b.activation(bn, Activation::ReLU, "relu");
        let g = b.finish(&[r]);
        let folded = BatchNormFold.run(&g).unwrap();
        assert!(
            !folded
                .nodes()
                .iter()
                .any(|n| matches!(n.kind, OpKind::BatchNorm { .. })),
            "BN must be folded away:\n{folded}"
        );
        // The folded graph has a BiasAdd instead.
        assert!(folded.nodes().iter().any(|n| n.kind == OpKind::BiasAdd));
        // Output shape preserved.
        let out = folded.outputs()[0];
        assert_eq!(folded.node(out).shape.dims(), &[1, 8, 8, 8]);
    }

    #[test]
    fn bn_fold_skips_shared_convs() {
        // A conv consumed by BN *and* another op must not be folded.
        let mut b = GraphBuilder::new(DType::F32);
        let x = b.input(&[1, 4, 8, 8]);
        let c = b.conv2d(x, 4, 3, (1, 1), (1, 1), "conv");
        let bn = b.batch_norm(c, "bn");
        let extra = b.activation(c, Activation::ReLU, "extra");
        let sum = b.add(bn, extra, "sum");
        let g = b.finish(&[sum]);
        let folded = BatchNormFold.run(&g).unwrap();
        assert!(folded
            .nodes()
            .iter()
            .any(|n| matches!(n.kind, OpKind::BatchNorm { .. })));
    }

    #[test]
    fn repvgg_block_reparams_to_single_conv() {
        // conv3x3+BN, conv1x1+BN, identity BN — the full RepVGG block.
        let mut b = GraphBuilder::new(DType::F32);
        let x = b.input(&[1, 8, 8, 8]);
        let c3 = b.conv2d(x, 8, 3, (1, 1), (1, 1), "b3.conv");
        let bn3 = b.batch_norm(c3, "b3.bn");
        let c1 = b.conv2d(x, 8, 1, (1, 1), (0, 0), "b1.conv");
        let bn1 = b.batch_norm(c1, "b1.bn");
        let bnid = b.batch_norm(x, "bid.bn");
        let s1 = b.add(bn3, bn1, "add1");
        let s2 = b.add(s1, bnid, "add2");
        let out = b.activation(s2, Activation::ReLU, "relu");
        let g = b.finish(&[out]);

        let deployed = PassManager::deployment().run(&g).unwrap();
        let convs = deployed
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, OpKind::Conv2d { .. }))
            .count();
        assert_eq!(
            convs, 1,
            "three branches must merge into one conv:\n{deployed}"
        );
        assert!(!deployed.nodes().iter().any(|n| n.kind == OpKind::Add));
        let out = deployed.outputs()[0];
        assert_eq!(deployed.node(out).shape.dims(), &[1, 8, 8, 8]);
    }

    #[test]
    fn reparam_preserves_merged_weights_center() {
        // Identity branch adds 1.0 to the center tap of filter k, channel k.
        let mut b = GraphBuilder::new(DType::F32);
        let x = b.input(&[1, 4, 6, 6]);
        let c3 = b.conv2d_bias(x, 4, 3, (1, 1), (1, 1), "c3");
        let sum = b.add(c3, x, "add");
        let g = b.finish(&[sum]);
        let orig_w = {
            let w = g.nodes().iter().find(|n| n.name == "c3.weight").unwrap();
            g.param(w.id).unwrap().clone()
        };
        let rewritten = RepVggReparam.run(&g).unwrap();
        let merged = rewritten
            .nodes()
            .iter()
            .find(|n| n.name.contains("reparam_weight"))
            .expect("merged weight");
        let mw = rewritten.param(merged.id).unwrap();
        // Center tap of (k=1, c=1) got +1.
        let (k, c) = (1, 1);
        let idx = (k * 4 + c) * 9 + 4;
        let expect = orig_w.data()[idx] + 1.0;
        assert!((mw.data()[idx] - expect).abs() < 1e-4);
        // Off-center (k=1,c=0) unchanged.
        let idx2 = (k * 4) * 9 + 4;
        assert!((mw.data()[idx2] - orig_w.data()[idx2]).abs() < 1e-6);
    }

    #[test]
    fn reparam_skips_mismatched_channels() {
        // Identity requires C == K; 4 -> 8 conv must not merge with x.
        let mut b = GraphBuilder::new(DType::F32);
        let x = b.input(&[1, 4, 6, 6]);
        let c3 = b.conv2d_bias(x, 4, 3, (1, 1), (1, 1), "c3");
        let c1 = b.conv2d_bias(x, 4, 1, (1, 1), (0, 0), "c1");
        let sum = b.add(c3, c1, "add");
        let g = b.finish(&[sum]);
        let rewritten = RepVggReparam.run(&g).unwrap();
        // Two-conv (no identity) merge is fine: one conv remains.
        let convs = rewritten
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, OpKind::Conv2d { .. }))
            .count();
        assert_eq!(convs, 1);
    }

    #[test]
    fn dce_is_idempotent() {
        let mut b = GraphBuilder::new(DType::F16);
        let x = b.input(&[1, 2, 4, 4]);
        let live = b.activation(x, Activation::ReLU, "live");
        let _dead = b.activation(x, Activation::Gelu, "dead");
        let g = b.finish(&[live]);
        let once = DeadCodeElimination.run(&g).unwrap();
        let twice = DeadCodeElimination.run(&once).unwrap();
        assert_eq!(once.len(), twice.len());
        assert!(once.len() < g.len());
    }
}
