//! BYOC graph partitioning (paper Section 3.2.1).
//!
//! Bolt follows TVM's Bring-Your-Own-Codegen flow: a predicate marks the
//! operators the external codegen supports, and the partitioner groups
//! maximal connected runs of supported nodes into regions that are
//! offloaded as units; everything else falls back to the host compiler
//! (TVM proper). Regions are kept convex (no path from a region node out
//! to a fallback node and back in), which the greedy construction below
//! guarantees by only growing a region along direct producer→consumer
//! edges in topological order.

use std::collections::HashMap;

use crate::graph::{Graph, NodeId};

/// A maximal offloadable subgraph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Region index.
    pub id: usize,
    /// Member nodes in topological order.
    pub nodes: Vec<NodeId>,
}

impl Region {
    /// True if the region contains an anchor (compute) operator — regions
    /// without one are not worth offloading and are returned to the host.
    pub fn has_anchor(&self, graph: &Graph) -> bool {
        self.nodes.iter().any(|&n| graph.node(n).kind.is_anchor())
    }
}

/// The result of partitioning: offload regions plus fallback nodes.
#[derive(Debug, Clone)]
pub struct PartitionedGraph {
    /// Offloaded regions, each a topologically-ordered node list.
    pub regions: Vec<Region>,
    /// Nodes executed by the host compiler (non-data ops only).
    pub fallback: Vec<NodeId>,
    /// For each node, the region that owns it (if any).
    pub region_of: HashMap<NodeId, usize>,
}

impl PartitionedGraph {
    /// Fraction of anchor operators that were offloaded.
    pub fn anchor_coverage(&self, graph: &Graph) -> f64 {
        let total = graph.nodes().iter().filter(|n| n.kind.is_anchor()).count();
        if total == 0 {
            return 1.0;
        }
        let offloaded = self
            .regions
            .iter()
            .flat_map(|r| &r.nodes)
            .filter(|&&n| graph.node(n).kind.is_anchor())
            .count();
        offloaded as f64 / total as f64
    }
}

/// Partitions `graph` into regions supported by `supported` and fallback
/// nodes. Data nodes (inputs/constants) belong to no region.
pub fn partition(graph: &Graph, supported: impl Fn(&Graph, NodeId) -> bool) -> PartitionedGraph {
    let mut region_of: HashMap<NodeId, usize> = HashMap::new();
    let mut regions: Vec<Region> = Vec::new();
    let mut fallback = Vec::new();

    for node in graph.nodes() {
        if node.kind.is_data() {
            continue;
        }
        if !supported(graph, node.id) {
            fallback.push(node.id);
            continue;
        }
        // Join the region of a supported direct producer if exactly one
        // region feeds this node (keeps regions convex); otherwise start a
        // fresh region.
        let mut producer_regions: Vec<usize> = node
            .inputs
            .iter()
            .filter_map(|i| region_of.get(i).copied())
            .collect();
        producer_regions.sort_unstable();
        producer_regions.dedup();
        let rid = match producer_regions.as_slice() {
            [one] => *one,
            _ => {
                regions.push(Region {
                    id: regions.len(),
                    nodes: Vec::new(),
                });
                regions.len() - 1
            }
        };
        regions[rid].nodes.push(node.id);
        region_of.insert(node.id, rid);
    }

    // Regions without an anchor go back to the host.
    let mut kept = Vec::new();
    for mut region in regions {
        if region.has_anchor(graph) {
            region.id = kept.len();
            for &n in &region.nodes {
                region_of.insert(n, region.id);
            }
            kept.push(region);
        } else {
            for n in &region.nodes {
                region_of.remove(n);
                fallback.push(*n);
            }
        }
    }
    fallback.sort_unstable();

    PartitionedGraph {
        regions: kept,
        fallback,
        region_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::op::OpKind;
    use bolt_tensor::{Activation, DType};

    /// Bolt-style predicate: anchors + their epilogue ops.
    fn bolt_supported(graph: &Graph, id: NodeId) -> bool {
        matches!(
            graph.node(id).kind,
            OpKind::Dense
                | OpKind::Conv2d { .. }
                | OpKind::BiasAdd
                | OpKind::Activation(_)
                | OpKind::Add
        )
    }

    #[test]
    fn simple_cnn_partitions_into_regions_around_pooling() {
        let mut b = GraphBuilder::new(DType::F16);
        let x = b.input(&[1, 3, 16, 16]);
        let c1 = b.conv2d_bias(x, 8, 3, (1, 1), (1, 1), "c1");
        let r1 = b.activation(c1, Activation::ReLU, "r1");
        let p1 = b.max_pool(r1, 2, 2, "pool"); // unsupported -> fallback
        let c2 = b.conv2d_bias(p1, 8, 3, (1, 1), (1, 1), "c2");
        let r2 = b.activation(c2, Activation::ReLU, "r2");
        let g = b.finish(&[r2]);

        let part = partition(&g, bolt_supported);
        assert_eq!(part.regions.len(), 2, "pool splits the graph: {part:?}");
        assert_eq!(part.fallback.len(), 1);
        assert_eq!(part.anchor_coverage(&g), 1.0);
    }

    #[test]
    fn all_supported_is_one_region() {
        let mut b = GraphBuilder::new(DType::F16);
        let x = b.input(&[8, 16]);
        let d1 = b.dense_bias(x, 32, "fc1");
        let r = b.activation(d1, Activation::ReLU, "r");
        let d2 = b.dense_bias(r, 8, "fc2");
        let g = b.finish(&[d2]);
        let part = partition(&g, bolt_supported);
        assert_eq!(part.regions.len(), 1);
        assert!(part.fallback.is_empty());
        // All non-data nodes belong to the region.
        let non_data = g.nodes().iter().filter(|n| !n.kind.is_data()).count();
        assert_eq!(part.regions[0].nodes.len(), non_data);
    }

    #[test]
    fn epilogue_only_regions_fall_back() {
        let mut b = GraphBuilder::new(DType::F16);
        let x = b.input(&[1, 4, 8, 8]);
        let p = b.max_pool(x, 2, 2, "pool");
        let r = b.activation(p, Activation::ReLU, "lonely_relu");
        let g = b.finish(&[r]);
        let part = partition(&g, bolt_supported);
        assert!(part.regions.is_empty());
        assert_eq!(part.fallback.len(), 2);
    }

    #[test]
    fn region_of_indexes_match() {
        let mut b = GraphBuilder::new(DType::F16);
        let x = b.input(&[8, 16]);
        let d = b.dense_bias(x, 8, "fc");
        let g = b.finish(&[d]);
        let part = partition(&g, bolt_supported);
        for region in &part.regions {
            for n in &region.nodes {
                assert_eq!(part.region_of[n], region.id);
            }
        }
    }
}
