#![warn(missing_docs)]
//! # bolt-graph
//!
//! A Relay-like computational graph IR for the Bolt (MLSys 2022)
//! reproduction.
//!
//! Bolt follows TVM's BYOC (Bring Your Own Codegen) flow: the model is
//! parsed into a relay graph, graph-level optimizations run, a partitioner
//! carves out the subgraph Bolt can serve, and the rest falls back to the
//! host compiler. This crate provides that substrate:
//!
//! * [`op`] / [`graph`] — the operator set and the DAG with shape/dtype
//!   inference;
//! * [`builder`] — an ergonomic way to assemble models (used by
//!   `bolt-models` for VGG/ResNet/RepVGG/BERT);
//! * [`passes`] — a pass manager with dead-code elimination, BatchNorm
//!   folding, and RepVGG-style re-parameterization (branch fusion);
//! * [`partition()`] — BYOC graph partitioning into supported regions and
//!   fallback nodes;
//! * [`workload`] — task extraction: the GEMM/Conv2D workloads an
//!   auto-tuner or profiler must tune for a given graph.

pub mod builder;
pub mod error;
pub mod graph;
pub mod op;
pub mod partition;
pub mod passes;
pub mod workload;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{Graph, Node, NodeId};
pub use op::{OpKind, PoolKind};
pub use partition::{partition, PartitionedGraph, Region};
pub use workload::{extract_workloads, Workload};

/// Result alias for graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;
