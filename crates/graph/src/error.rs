//! Error type for graph construction and passes.

use std::fmt;

use bolt_tensor::TensorError;

/// Errors produced by graph construction, inference, and passes.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node referenced an id that does not exist in the graph.
    UnknownNode {
        /// The missing id (raw index).
        id: usize,
    },
    /// Shape inference failed for a node.
    Infer {
        /// Node name.
        node: String,
        /// What went wrong.
        reason: String,
    },
    /// A pass was asked to run on a graph missing something it needs.
    Pass {
        /// Pass name.
        pass: String,
        /// What went wrong.
        reason: String,
    },
    /// An underlying tensor operation failed.
    Tensor(TensorError),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode { id } => write!(f, "unknown node id {id}"),
            GraphError::Infer { node, reason } => {
                write!(f, "shape inference failed at {node}: {reason}")
            }
            GraphError::Pass { pass, reason } => write!(f, "pass {pass} failed: {reason}"),
            GraphError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for GraphError {
    fn from(e: TensorError) -> Self {
        GraphError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = GraphError::Infer {
            node: "conv1".into(),
            reason: "rank".into(),
        };
        assert!(e.to_string().contains("conv1"));
    }
}
