//! The operator set of the graph IR.
//!
//! Shapes are logical NCHW at the graph level (the Relay convention);
//! physical layout (NHWC for the templated conv kernels) is decided by the
//! compiler's layout-transformation pass, not by the IR.

use serde::{Deserialize, Serialize};
use std::fmt;

use bolt_tensor::{Activation, DType, Shape};

/// Pooling flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// A graph operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    /// A graph input (activation fed at runtime).
    Input {
        /// Logical shape (NCHW for images).
        shape: Shape,
        /// Element type.
        dtype: DType,
    },
    /// A learned parameter or constant tensor.
    Constant {
        /// Logical shape: `(out, in)` for dense weights, `(K, C, R, S)` for
        /// conv filters (logical; stored KRSC physically).
        shape: Shape,
        /// Element type.
        dtype: DType,
    },
    /// Fully connected layer: `y = x @ W^T` where the second input is the
    /// `(units, in_features)` weight.
    Dense,
    /// 2-D convolution. Second input is the `(K, C, R, S)` filter.
    Conv2d {
        /// Stride (vertical, horizontal).
        stride: (usize, usize),
        /// Zero padding (vertical, horizontal).
        padding: (usize, usize),
        /// Dilation (vertical, horizontal).
        dilation: (usize, usize),
    },
    /// Adds a per-channel bias vector (second input).
    BiasAdd,
    /// Elementwise activation.
    Activation(Activation),
    /// Elementwise addition of two tensors (residual connections).
    Add,
    /// Batch normalization (inference form). Inputs: x, gamma, beta,
    /// moving mean, moving variance.
    BatchNorm {
        /// Numerical-stability epsilon.
        eps: f32,
    },
    /// Spatial pooling.
    Pool {
        /// Max or average.
        kind: PoolKind,
        /// Square window size.
        window: usize,
        /// Stride.
        stride: usize,
        /// Symmetric padding.
        padding: usize,
    },
    /// Global average pooling over H and W, producing `(N, C)`.
    GlobalAvgPool,
    /// Flattens all dims after the batch dim.
    Flatten,
    /// Softmax over the last dimension.
    Softmax,
    /// Concatenation of tensors along the channel axis (dim 1).
    Concat,
}

impl OpKind {
    /// Short operator name for debugging and kernel labels.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Input { .. } => "input",
            OpKind::Constant { .. } => "constant",
            OpKind::Dense => "dense",
            OpKind::Conv2d { .. } => "conv2d",
            OpKind::BiasAdd => "bias_add",
            OpKind::Activation(_) => "activation",
            OpKind::Add => "add",
            OpKind::BatchNorm { .. } => "batch_norm",
            OpKind::Pool { .. } => "pool",
            OpKind::GlobalAvgPool => "global_avg_pool",
            OpKind::Flatten => "flatten",
            OpKind::Softmax => "softmax",
            OpKind::Concat => "concat",
        }
    }

    /// True for the anchor operators Bolt offloads (compute-intensive ops
    /// served by templated kernels).
    pub fn is_anchor(&self) -> bool {
        matches!(self, OpKind::Dense | OpKind::Conv2d { .. })
    }

    /// True for operators that never execute (pure data).
    pub fn is_data(&self) -> bool {
        matches!(self, OpKind::Input { .. } | OpKind::Constant { .. })
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Activation(a) => write!(f, "activation({a})"),
            OpKind::Conv2d {
                stride, padding, ..
            } => {
                write!(f, "conv2d(stride={stride:?}, pad={padding:?})")
            }
            other => f.write_str(other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors() {
        assert!(OpKind::Dense.is_anchor());
        assert!(OpKind::Conv2d {
            stride: (1, 1),
            padding: (0, 0),
            dilation: (1, 1)
        }
        .is_anchor());
        assert!(!OpKind::BiasAdd.is_anchor());
        assert!(!OpKind::Softmax.is_anchor());
    }

    #[test]
    fn data_ops() {
        let input = OpKind::Input {
            shape: Shape::new(&[1, 3, 4, 4]),
            dtype: DType::F16,
        };
        assert!(input.is_data());
        assert!(!OpKind::Add.is_data());
    }

    #[test]
    fn display() {
        assert_eq!(
            OpKind::Activation(Activation::ReLU).to_string(),
            "activation(relu)"
        );
        assert_eq!(OpKind::Dense.to_string(), "dense");
    }
}
