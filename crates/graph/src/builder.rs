//! Ergonomic graph construction, used by the model zoo.

use bolt_tensor::{Activation, DType, Shape, Tensor};

use crate::graph::{Graph, NodeId};
use crate::op::{OpKind, PoolKind};
use crate::Result;

/// A builder wrapping a [`Graph`] with layer-style helpers. Parameters are
/// declared as constants and (optionally) materialized with deterministic
/// random data so functional execution works out of the box.
///
/// ```
/// use bolt_graph::GraphBuilder;
/// use bolt_tensor::{Activation, DType};
///
/// let mut b = GraphBuilder::new(DType::F16);
/// let x = b.input(&[32, 3, 32, 32]);
/// let c = b.conv2d(x, 16, 3, (1, 1), (1, 1), "conv1");
/// let r = b.activation(c, Activation::ReLU, "relu1");
/// let g = b.finish(&[r]);
/// assert_eq!(g.node(r).shape.dims(), &[32, 16, 32, 32]);
/// ```
#[derive(Debug)]
pub struct GraphBuilder {
    graph: Graph,
    dtype: DType,
    seed: u64,
    /// If true (default), parameter tensors are materialized.
    pub materialize_params: bool,
}

impl GraphBuilder {
    /// Creates a builder producing tensors of `dtype`.
    pub fn new(dtype: DType) -> Self {
        GraphBuilder {
            graph: Graph::new(),
            dtype,
            seed: 0x0b017,
            materialize_params: true,
        }
    }

    /// Creates a builder that only declares parameter shapes (faster for
    /// timing-only compilation of big models).
    pub fn shapes_only(dtype: DType) -> Self {
        GraphBuilder {
            materialize_params: false,
            ..Self::new(dtype)
        }
    }

    /// Access to the graph under construction.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Mutable access to the graph under construction, for ops without a
    /// dedicated helper.
    pub fn graph_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }

    /// `Conv2d` with a possibly non-square `(kh, kw)` filter and
    /// asymmetric padding (Inception-style factorized convolutions),
    /// followed by `BiasAdd`.
    pub fn conv2d_rect_bias(
        &mut self,
        x: NodeId,
        out_ch: usize,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
        name: &str,
    ) -> NodeId {
        let in_ch = self.graph.node(x).shape.dim(1);
        let w = self.constant(
            &[out_ch, in_ch, kernel.0, kernel.1],
            &format!("{name}.weight"),
        );
        let c = self
            .graph
            .add(
                OpKind::Conv2d {
                    stride,
                    padding,
                    dilation: (1, 1),
                },
                &[x, w],
                name,
            )
            .expect("validated conv");
        let b = self.constant(&[out_ch], &format!("{name}.bias"));
        self.graph
            .add(OpKind::BiasAdd, &[c, b], format!("{name}.bias_add"))
            .expect("bias")
    }

    /// Adds a graph input of the given logical shape.
    pub fn input(&mut self, dims: &[usize]) -> NodeId {
        self.graph
            .add(
                OpKind::Input {
                    shape: Shape::new(dims),
                    dtype: self.dtype,
                },
                &[],
                "input",
            )
            .expect("input nodes cannot fail")
    }

    /// Declares a constant of the given shape, materializing data when
    /// enabled.
    pub fn constant(&mut self, dims: &[usize], name: &str) -> NodeId {
        let id = self
            .graph
            .add(
                OpKind::Constant {
                    shape: Shape::new(dims),
                    dtype: self.dtype,
                },
                &[],
                name,
            )
            .expect("constant nodes cannot fail");
        if self.materialize_params {
            self.seed = self.seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let scale = 1.0 / (dims.iter().skip(1).product::<usize>().max(1) as f32).sqrt();
            let t = Tensor::randn(dims, self.dtype, self.seed);
            let data = t.data().iter().map(|v| v * scale).collect();
            let t = Tensor::from_vec(dims, self.dtype, data).expect("same length");
            self.graph
                .set_param(id, t)
                .expect("constant accepts params");
        }
        id
    }

    /// Attaches explicit parameter data to a constant created by
    /// [`GraphBuilder::constant`].
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches.
    pub fn set_param(&mut self, id: NodeId, tensor: Tensor) -> Result<()> {
        self.graph.set_param(id, tensor)
    }

    /// `Conv2d` with a fresh `(out_ch, in_ch, k, k)` filter.
    pub fn conv2d(
        &mut self,
        x: NodeId,
        out_ch: usize,
        kernel: usize,
        stride: (usize, usize),
        padding: (usize, usize),
        name: &str,
    ) -> NodeId {
        let in_ch = self.graph.node(x).shape.dim(1);
        let w = self.constant(&[out_ch, in_ch, kernel, kernel], &format!("{name}.weight"));
        self.graph
            .add(
                OpKind::Conv2d {
                    stride,
                    padding,
                    dilation: (1, 1),
                },
                &[x, w],
                name,
            )
            .expect("validated conv")
    }

    /// `Conv2d` followed by `BiasAdd`.
    pub fn conv2d_bias(
        &mut self,
        x: NodeId,
        out_ch: usize,
        kernel: usize,
        stride: (usize, usize),
        padding: (usize, usize),
        name: &str,
    ) -> NodeId {
        let c = self.conv2d(x, out_ch, kernel, stride, padding, name);
        let b = self.constant(&[out_ch], &format!("{name}.bias"));
        self.graph
            .add(OpKind::BiasAdd, &[c, b], format!("{name}.bias_add"))
            .expect("bias")
    }

    /// Inference-form batch normalization with fresh parameters.
    pub fn batch_norm(&mut self, x: NodeId, name: &str) -> NodeId {
        let c = self.graph.node(x).shape.dim(1);
        let gamma = self.constant(&[c], &format!("{name}.gamma"));
        let beta = self.constant(&[c], &format!("{name}.beta"));
        let mean = self.constant(&[c], &format!("{name}.mean"));
        let var = self.constant(&[c], &format!("{name}.var"));
        // Variance must be positive: rewrite the materialized data.
        if self.materialize_params {
            let t = self.graph.param(var).expect("materialized").clone();
            let data = t.data().iter().map(|v| 0.5 + v.abs()).collect();
            let t = Tensor::from_vec(&[c], self.dtype, data).expect("same length");
            self.graph.set_param(var, t).expect("constant");
        }
        self.graph
            .add(
                OpKind::BatchNorm { eps: 1e-5 },
                &[x, gamma, beta, mean, var],
                name,
            )
            .expect("bn")
    }

    /// Elementwise activation.
    pub fn activation(&mut self, x: NodeId, act: Activation, name: &str) -> NodeId {
        self.graph
            .add(OpKind::Activation(act), &[x], name)
            .expect("activation")
    }

    /// Elementwise addition.
    pub fn add(&mut self, a: NodeId, b: NodeId, name: &str) -> NodeId {
        self.graph
            .add(OpKind::Add, &[a, b], name)
            .expect("add shapes match")
    }

    /// Max pooling.
    pub fn max_pool(&mut self, x: NodeId, window: usize, stride: usize, name: &str) -> NodeId {
        self.graph
            .add(
                OpKind::Pool {
                    kind: PoolKind::Max,
                    window,
                    stride,
                    padding: 0,
                },
                &[x],
                name,
            )
            .expect("pool")
    }

    /// Global average pooling.
    pub fn global_avg_pool(&mut self, x: NodeId, name: &str) -> NodeId {
        self.graph
            .add(OpKind::GlobalAvgPool, &[x], name)
            .expect("gap")
    }

    /// Flatten to `(N, features)`.
    pub fn flatten(&mut self, x: NodeId, name: &str) -> NodeId {
        self.graph
            .add(OpKind::Flatten, &[x], name)
            .expect("flatten")
    }

    /// Dense layer with a fresh `(units, in)` weight and bias.
    pub fn dense_bias(&mut self, x: NodeId, units: usize, name: &str) -> NodeId {
        let in_f = self.graph.node(x).shape.dim(1);
        let w = self.constant(&[units, in_f], &format!("{name}.weight"));
        let d = self.graph.add(OpKind::Dense, &[x, w], name).expect("dense");
        let b = self.constant(&[units], &format!("{name}.bias"));
        self.graph
            .add(OpKind::BiasAdd, &[d, b], format!("{name}.bias_add"))
            .expect("bias")
    }

    /// Dense layer without bias.
    pub fn dense(&mut self, x: NodeId, units: usize, name: &str) -> NodeId {
        let in_f = self.graph.node(x).shape.dim(1);
        let w = self.constant(&[units, in_f], &format!("{name}.weight"));
        self.graph.add(OpKind::Dense, &[x, w], name).expect("dense")
    }

    /// Channel-axis concatenation.
    pub fn concat(&mut self, inputs: &[NodeId], name: &str) -> NodeId {
        self.graph
            .add(OpKind::Concat, inputs, name)
            .expect("concat shapes agree")
    }

    /// Average pooling with padding.
    pub fn avg_pool(
        &mut self,
        x: NodeId,
        window: usize,
        stride: usize,
        padding: usize,
        name: &str,
    ) -> NodeId {
        self.graph
            .add(
                OpKind::Pool {
                    kind: PoolKind::Avg,
                    window,
                    stride,
                    padding,
                },
                &[x],
                name,
            )
            .expect("pool")
    }

    /// Softmax over the last dimension.
    pub fn softmax(&mut self, x: NodeId, name: &str) -> NodeId {
        self.graph
            .add(OpKind::Softmax, &[x], name)
            .expect("softmax")
    }

    /// Finalizes the graph with the given outputs.
    pub fn finish(mut self, outputs: &[NodeId]) -> Graph {
        self.graph.set_outputs(outputs);
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_builds() {
        let mut b = GraphBuilder::new(DType::F16);
        let x = b.input(&[8, 16]);
        let h = b.dense_bias(x, 32, "fc1");
        let r = b.activation(h, Activation::ReLU, "relu");
        let o = b.dense_bias(r, 4, "fc2");
        let g = b.finish(&[o]);
        assert_eq!(g.node(o).shape.dims(), &[8, 4]);
        assert_eq!(g.outputs(), &[o]);
        // Dense weights and biases materialized.
        let weights = g
            .nodes()
            .iter()
            .filter(|n| n.name.ends_with(".weight"))
            .count();
        assert_eq!(weights, 2);
    }

    #[test]
    fn shapes_only_skips_params() {
        let mut b = GraphBuilder::shapes_only(DType::F16);
        let x = b.input(&[8, 16]);
        let h = b.dense_bias(x, 32, "fc1");
        let g = b.finish(&[h]);
        let w = g.nodes().iter().find(|n| n.name == "fc1.weight").unwrap();
        assert!(g.param(w.id).is_none());
    }

    #[test]
    fn bn_variance_is_positive() {
        let mut b = GraphBuilder::new(DType::F16);
        let x = b.input(&[1, 4, 8, 8]);
        let bn = b.batch_norm(x, "bn1");
        let g = b.finish(&[bn]);
        let var = g.nodes().iter().find(|n| n.name == "bn1.var").unwrap();
        let t = g.param(var.id).unwrap();
        assert!(t.data().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn residual_block_builds() {
        let mut b = GraphBuilder::new(DType::F16);
        let x = b.input(&[2, 8, 16, 16]);
        let c1 = b.conv2d_bias(x, 8, 3, (1, 1), (1, 1), "c1");
        let r1 = b.activation(c1, Activation::ReLU, "r1");
        let c2 = b.conv2d_bias(r1, 8, 3, (1, 1), (1, 1), "c2");
        let sum = b.add(c2, x, "residual");
        let out = b.activation(sum, Activation::ReLU, "r2");
        let g = b.finish(&[out]);
        assert_eq!(g.node(out).shape.dims(), &[2, 8, 16, 16]);
    }
}
