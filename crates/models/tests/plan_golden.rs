//! Golden-plan snapshots over the zoo: the compiled step sequence,
//! prepacked-constant layouts, and buffer-slot plan for `mlp-small` and
//! `cnn-small` under the fused (default) and unfused (`epilogue_only`)
//! configurations, plus executor-equivalence checks — `run` vs.
//! `run_batched(1)` and `run` vs. the retained reference interpreter.
//!
//! The snapshots are intentionally literal: a lowering change that alters
//! fusion decisions, packed layouts, or slot counts must show up here as
//! a reviewed diff, not as a silent behavioural drift.

use bolt::{BoltCompiler, BoltConfig, CompiledModel, StepKind};
use bolt_gpu_sim::GpuArch;
use bolt_models::{try_model_by_name, SERVING_MODELS};
use bolt_tensor::{DType, Tensor};

fn compile(model: &str, batch: usize, config: BoltConfig) -> CompiledModel {
    let graph = try_model_by_name(model, batch).expect(model).graph;
    BoltCompiler::new(GpuArch::tesla_t4(), config)
        .compile(&graph)
        .expect(model)
}

fn kind_name(kind: &StepKind) -> &'static str {
    match kind {
        StepKind::Gemm { .. } => "Gemm",
        StepKind::Conv2d { .. } => "Conv2d",
        StepKind::B2bGemm { .. } => "B2bGemm",
        StepKind::GemmChain { .. } => "GemmChain",
        StepKind::B2bConv { .. } => "B2bConv",
        StepKind::LayoutTransform { .. } => "LayoutTransform",
        StepKind::PadChannels { .. } => "PadChannels",
        StepKind::Host => "Host",
    }
}

fn step_kinds(model: &CompiledModel) -> Vec<&'static str> {
    model
        .plan()
        .steps()
        .iter()
        .map(|s| kind_name(&s.kind))
        .collect()
}

/// Prepacked weight shapes per step, in step order.
fn packed_weight_shapes(model: &CompiledModel) -> Vec<Vec<Vec<usize>>> {
    let plan = model.plan();
    (0..plan.steps().len())
        .map(|i| {
            plan.packed_consts(i)
                .weights
                .iter()
                .map(|w| w.shape().dims().to_vec())
                .collect()
        })
        .collect()
}

/// Prepacked implicit-GEMM filter-matrix shapes per step, in step order.
fn packed_filter_mat_shapes(model: &CompiledModel) -> Vec<Vec<Vec<usize>>> {
    let plan = model.plan();
    (0..plan.steps().len())
        .map(|i| {
            plan.packed_consts(i)
                .filter_mats
                .iter()
                .map(|w| w.shape().dims().to_vec())
                .collect()
        })
        .collect()
}

fn sample_inputs(model: &str, seed: u64) -> Vec<Tensor> {
    let dims: Vec<usize> = match model {
        "mlp-small" => vec![1, 128],
        "mlp-large" => vec![1, 256],
        "cnn-small" => vec![1, 3, 8, 8],
        other => panic!("unexpected serving model {other}"),
    };
    vec![Tensor::randn(&dims, DType::F16, seed)]
}

/// Fused mlp-small: the persistent-kernel pass folds the last two dense
/// layers into one B2B GEMM; liveness folds every intermediate into one
/// reusable slot.
#[test]
fn golden_plan_mlp_small_fused() {
    let model = compile("mlp-small", 1, BoltConfig::default());
    assert_eq!(step_kinds(&model), vec!["Gemm", "B2bGemm"]);
    assert_eq!(
        packed_weight_shapes(&model),
        vec![
            // Dense weights are prepacked (units, in) → (in, units).
            vec![vec![128, 256]],
            vec![vec![256, 64], vec![64, 10]],
        ]
    );
    let plan = model.plan();
    assert_eq!(plan.buffer_slots(), 1, "linear chain reuses one slot");
    assert_eq!(plan.workspace_bytes(), 512, "widest intermediate: 256×f16");
    // 128×256 + 256 + 256×64 + 64 + 64×10 + 10 halfs.
    assert_eq!(plan.packed_const_bytes(), 100_244);
    assert!(plan.workspace_bytes() < plan.total_value_bytes());
}

/// Unfused mlp-small: epilogue-only keeps one GEMM per dense layer, but
/// prepacking and the slot plan are unchanged in spirit — still one slot.
#[test]
fn golden_plan_mlp_small_unfused() {
    let model = compile("mlp-small", 1, BoltConfig::epilogue_only());
    assert_eq!(step_kinds(&model), vec!["Gemm", "Gemm", "Gemm"]);
    assert_eq!(
        packed_weight_shapes(&model),
        vec![
            vec![vec![128, 256]],
            vec![vec![256, 64]],
            vec![vec![64, 10]]
        ]
    );
    let plan = model.plan();
    assert_eq!(plan.buffer_slots(), 1);
    assert_eq!(plan.workspace_bytes(), 512);
    assert_eq!(plan.packed_const_bytes(), 100_244);
}

/// Fused cnn-small: the 6→8 interior channel pad is folded into the
/// consuming conv's implicit-GEMM main loop (which reads missing
/// channels as zero), so the standalone `PadChannels` launch disappears
/// from the plan entirely — one fewer kernel than the unfused plan.
#[test]
fn golden_plan_cnn_small_fused() {
    let model = compile("cnn-small", 1, BoltConfig::default());
    assert_eq!(
        step_kinds(&model),
        vec!["LayoutTransform", "Conv2d", "Conv2d", "Host", "Gemm"]
    );
    // Filters are prepacked KCRS → KRSC with the channel pad folded
    // in: conv1 is (6,3,3,3) padded to C=8, conv2 (8,6,3,3) likewise.
    assert_eq!(
        packed_weight_shapes(&model),
        vec![
            vec![],
            vec![vec![6, 3, 3, 8]],
            vec![vec![8, 3, 3, 8]],
            vec![],
            vec![vec![8, 10]],
        ]
    );
    // Conv filters are additionally prepacked as implicit-GEMM B
    // operands (R*S*C, K) so runs skip the per-call matrix repack.
    assert_eq!(
        packed_filter_mat_shapes(&model),
        vec![vec![], vec![vec![72, 6]], vec![vec![72, 8]], vec![], vec![],]
    );
    let plan = model.plan();
    assert_eq!(plan.kernel_count(), 3, "two convs + classifier GEMM");
    assert_eq!(plan.buffer_slots(), 1, "layout step is in-place");
    assert_eq!(plan.workspace_bytes(), 1024, "padded 8×8×8 NHWC × f16");
    assert!(plan.workspace_bytes() < plan.total_value_bytes());
}

/// Unfused cnn-small keeps the standalone pad kernel: an NCHW→NHWC
/// boundary transform, a conv whose 3→8 channel pad is folded into that
/// boundary, a `PadChannels` kernel for the 6→8 interior boundary, a
/// host global-average-pool fallback, and the classifier GEMM.
#[test]
fn golden_plan_cnn_small_unfused() {
    let model = compile("cnn-small", 1, BoltConfig::epilogue_only());
    assert_eq!(
        step_kinds(&model),
        vec![
            "LayoutTransform",
            "Conv2d",
            "PadChannels",
            "Conv2d",
            "Host",
            "Gemm",
        ]
    );
    assert_eq!(
        packed_weight_shapes(&model),
        vec![
            vec![],
            vec![vec![6, 3, 3, 8]],
            vec![],
            vec![vec![8, 3, 3, 8]],
            vec![],
            vec![vec![8, 10]],
        ]
    );
    let plan = model.plan();
    assert_eq!(plan.kernel_count(), 4, "the pad launch survives unfused");
    assert_eq!(plan.buffer_slots(), 1, "pad/layout steps are in-place");
    assert_eq!(plan.workspace_bytes(), 1024, "padded 8×8×8 NHWC × f16");
    assert!(plan.workspace_bytes() < plan.total_value_bytes());
}

/// Fused mlp-large: the persistent-kernel pass declines to fuse — the
/// 512-wide hidden layer fails the threadblock-residence/profitability
/// check — so the fused plan is identical to the unfused one. This
/// snapshot pins that decision; `mlp-small` (below) is where the
/// `kernel_count` drop shows up (3 launches → 2).
#[test]
fn golden_plan_mlp_large_fused() {
    let model = compile("mlp-large", 1, BoltConfig::default());
    assert_eq!(step_kinds(&model), vec!["Gemm", "Gemm", "Gemm", "Gemm"]);
    assert_eq!(
        packed_weight_shapes(&model),
        vec![
            vec![vec![256, 512]],
            vec![vec![512, 512]],
            vec![vec![512, 128]],
            vec![vec![128, 10]],
        ]
    );
    let plan = model.plan();
    assert_eq!(plan.kernel_count(), 4, "residence check rejects the chain");
    assert_eq!(plan.buffer_slots(), 1, "linear chain reuses one slot");
    let small_fused = compile("mlp-small", 1, BoltConfig::default());
    let small_unfused = compile("mlp-small", 1, BoltConfig::epilogue_only());
    assert_eq!(small_fused.plan().kernel_count(), 2, "B2B pair fused");
    assert_eq!(small_unfused.plan().kernel_count(), 3, "one per layer");
}

/// The ISSUE's memory-planner acceptance criterion on a deep model: the
/// planned workspace is strictly smaller than the sum of all
/// intermediates the old interpreter kept alive simultaneously.
#[test]
fn deep_model_workspace_beats_sum_of_intermediates() {
    let model = compile("mlp-large", 1, BoltConfig::epilogue_only());
    let plan = model.plan();
    assert_eq!(plan.steps().len(), 4, "one GEMM per dense layer");
    assert!(
        plan.workspace_bytes() < plan.total_value_bytes(),
        "workspace {} must beat sum-of-intermediates {}",
        plan.workspace_bytes(),
        plan.total_value_bytes()
    );
    // Five values (input + four activations) share one slot.
    assert_eq!(plan.buffer_slots(), 1);
}

/// Functional equivalence across every executor the plan exposes: the
/// slot-based `run`, the batched path at batch 1, and the retained
/// pre-refactor reference interpreter must agree bit for bit.
#[test]
fn run_paths_agree_bit_for_bit() {
    for name in SERVING_MODELS {
        for config in [BoltConfig::default(), BoltConfig::epilogue_only()] {
            let model = compile(name, 1, config);
            let inputs = sample_inputs(name, 7);
            let slots = model.run(&inputs).expect(name);
            let reference = model.plan().run_reference(&inputs).expect(name);
            assert_eq!(slots, reference, "{name}: run vs run_reference");
            let batched = model
                .run_batched(std::slice::from_ref(&inputs))
                .expect(name);
            assert_eq!(batched.len(), 1);
            assert_eq!(slots, batched[0], "{name}: run vs run_batched(1)");
            let batched_ref = model
                .plan()
                .run_batched_reference(std::slice::from_ref(&inputs))
                .expect(name);
            assert_eq!(
                batched, batched_ref,
                "{name}: run_batched vs run_batched_reference"
            );
        }
    }
}

mod fused_vs_unfused {
    use super::*;
    use proptest::prelude::*;

    /// Runs `model` on `values` under `config` and returns the outputs.
    fn run_with(model: &str, dims: &[usize], values: &[f32], config: BoltConfig) -> Vec<Tensor> {
        let numel: usize = dims.iter().product();
        let input = Tensor::from_vec(dims, DType::F16, values[..numel].to_vec()).expect("input");
        compile(model, 1, config).run(&[input]).expect(model)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Persistent-kernel fusion (B2B GEMMs, GEMM chains, folded pad
        /// launches) must be a pure scheduling decision: the fused plan
        /// and the unfused plan agree bit-exactly on arbitrary inputs.
        #[test]
        fn fused_plan_matches_unfused_bit_exactly(
            values in proptest::collection::vec(-4.0f32..4.0, 256..257),
            (model, dims) in prop_oneof![
                Just(("mlp-small", vec![1usize, 128])),
                Just(("mlp-large", vec![1usize, 256])),
                Just(("cnn-small", vec![1usize, 3, 8, 8])),
            ],
        ) {
            let fused = run_with(model, &dims, &values, BoltConfig::default());
            let unfused = run_with(model, &dims, &values, BoltConfig::epilogue_only());
            prop_assert_eq!(fused, unfused);
        }
    }
}

/// Prepacking means the packed bytes exist before the first request:
/// every constant-bearing step of a materialized zoo model reports its
/// packed constants without lazy work at run time.
#[test]
fn serving_models_prepack_all_constants() {
    for name in SERVING_MODELS {
        let model = compile(name, 1, BoltConfig::default());
        let plan = model.plan();
        assert!(plan.packed_const_bytes() > 0, "{name}");
        for (i, step) in plan.steps().iter().enumerate() {
            let packed = plan.packed_consts(i);
            let expects_weights = !matches!(
                step.kind,
                StepKind::LayoutTransform { .. } | StepKind::PadChannels { .. } | StepKind::Host
            );
            assert!(packed.materialized, "{name} step {i} ({})", step.name);
            assert_eq!(!packed.weights.is_empty(), expects_weights);
        }
    }
}
