//! The pooled-workspace guarantee (ISSUE 6 tentpole): after warmup, the
//! slot executor's hot path performs **zero** tensor-backing allocations
//! and zero clones per run — every intermediate lives in a buffer leased
//! from the plan's workspace pool and recycled when its value dies.
//!
//! The global [`bolt_tensor::alloc_count`] counter observes every fresh
//! backing-buffer creation (`zeros`/`full`/`randn`/layout conversion/
//! padding/`Clone`); [`bolt_tensor::clone_count`] observes clones.
//! Buffers the pool hands back are invisible to both — which is exactly
//! the claim: steady-state runs reuse memory instead of creating it.
//!
//! This file deliberately holds a single `#[test]`: the counters are
//! process-global, and a sibling test allocating tensors concurrently
//! would pollute the deltas.

use bolt::{BoltCompiler, BoltConfig, CompiledModel};
use bolt_gpu_sim::GpuArch;
use bolt_models::mlp::serving_mlp;
use bolt_tensor::{alloc_count, clone_count, DType, Tensor};

fn compile(widths: &[usize]) -> CompiledModel {
    // Epilogue-only lowering: one GEMM step per dense layer, so the
    // per-step lease/recycle cycle is exercised as many times as the
    // model is deep.
    BoltCompiler::new(GpuArch::tesla_t4(), BoltConfig::epilogue_only())
        .compile(&serving_mlp(1, widths))
        .expect("mlp compiles")
}

fn deltas_during(f: impl FnOnce()) -> (u64, u64) {
    let (allocs, clones) = (alloc_count(), clone_count());
    f();
    (alloc_count() - allocs, clone_count() - clones)
}

#[test]
fn steady_state_runs_allocate_nothing() {
    let shallow = compile(&[128, 64, 64, 10]);
    let deep = compile(&[128, 64, 64, 64, 64, 64, 64, 10]);
    assert_eq!(shallow.steps().len(), 3);
    assert_eq!(deep.steps().len(), 7);

    let input = vec![Tensor::randn(&[1, 128], DType::F16, 11)];

    // Two warmup runs fill each plan's workspace pool: the first run
    // allocates the lease buffers, the second settles the LIFO spare
    // stack into its steady-state order.
    for _ in 0..2 {
        shallow.run(&input).expect("warm");
        deep.run(&input).expect("warm");
    }
    shallow.plan().run_reference(&input).expect("warm");
    deep.plan().run_reference(&input).expect("warm");

    let (alloc_shallow, clone_shallow) = deltas_during(|| {
        shallow.run(&input).expect("shallow run");
    });
    let (alloc_deep, clone_deep) = deltas_during(|| {
        deep.run(&input).expect("deep run");
    });
    let (alloc_ref, _) = deltas_during(|| {
        deep.plan().run_reference(&input).expect("deep ref");
    });

    // The tentpole claim: a warmed-up run creates no tensor backing
    // buffers and clones nothing, at any depth. Inputs are borrowed in
    // place, intermediates lease pooled buffers, and dying values are
    // recycled rather than dropped.
    assert_eq!(
        (alloc_shallow, clone_shallow),
        (0, 0),
        "warmed-up shallow run must not allocate or clone"
    );
    assert_eq!(
        (alloc_deep, clone_deep),
        (0, 0),
        "warmed-up deep run must not allocate or clone"
    );

    // The reference interpreter allocates per step (repack + fetch
    // clones + fresh outputs) on every run, warm or not.
    assert!(
        alloc_ref as usize > deep.steps().len(),
        "reference interpreter allocates per step ({alloc_ref} allocations \
         for {} steps)",
        deep.steps().len()
    );

    // The batched path shares the same pool: after a warmup call, a
    // same-shape batch run also settles to zero allocations and clones.
    let samples: Vec<Vec<Tensor>> = (0..2)
        .map(|s| vec![Tensor::randn(&[1, 128], DType::F16, 20 + s)])
        .collect();
    let batched = BoltCompiler::new(GpuArch::tesla_t4(), BoltConfig::epilogue_only())
        .compile(&serving_mlp(4, &[128, 64, 64, 10]))
        .expect("batched mlp compiles");
    for _ in 0..2 {
        batched.run_batched(&samples).expect("warm batch");
    }
    let (alloc_batch, clone_batch) = deltas_during(|| {
        batched.run_batched(&samples).expect("steady batch");
    });
    // Per-sample output slices are fresh tensors handed to the caller
    // (one `slice_batch` copy per sample per output); everything else —
    // batch packing, every step, padding rows — is pooled.
    assert_eq!(clone_batch, 0, "batched path must not clone");
    assert!(
        alloc_batch <= (samples.len() * batched.plan().graph().outputs().len()) as u64,
        "batched path may only allocate escaping per-sample outputs, \
         got {alloc_batch}"
    );
}
