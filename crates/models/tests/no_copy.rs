//! The hot-path no-copy guarantee (ISSUE 3, satellite a): the slot-based
//! executor must not clone intermediate tensors per step. The global
//! [`bolt_tensor::clone_count`] allocation counter makes this observable:
//! `run`'s clone cost must be **depth-independent** (input ingestion
//! only), while the retained reference interpreter's per-step fetch
//! clones grow with depth.
//!
//! This file deliberately holds a single `#[test]`: the counter is
//! process-global, and a sibling test cloning tensors concurrently would
//! pollute the deltas.

use bolt::{BoltCompiler, BoltConfig, CompiledModel};
use bolt_gpu_sim::GpuArch;
use bolt_models::mlp::serving_mlp;
use bolt_tensor::{clone_count, DType, Tensor};

fn compile(widths: &[usize]) -> CompiledModel {
    // Epilogue-only lowering: one GEMM step per dense layer, no
    // persistent chains (whose kernels legitimately stage one internal
    // copy), so every step exercises the plain slot-borrow path.
    BoltCompiler::new(GpuArch::tesla_t4(), BoltConfig::epilogue_only())
        .compile(&serving_mlp(1, widths))
        .expect("mlp compiles")
}

fn clones_during(f: impl FnOnce()) -> u64 {
    let before = clone_count();
    f();
    clone_count() - before
}

#[test]
fn slot_executor_clone_cost_is_depth_independent() {
    let shallow = compile(&[128, 64, 64, 10]);
    let deep = compile(&[128, 64, 64, 64, 64, 64, 64, 10]);
    assert_eq!(shallow.steps().len(), 3);
    assert_eq!(deep.steps().len(), 7);

    let input = vec![Tensor::randn(&[1, 128], DType::F16, 11)];

    // Warm both paths once so lazy one-time work cannot skew the deltas.
    shallow.run(&input).expect("warm");
    deep.run(&input).expect("warm");
    shallow.plan().run_reference(&input).expect("warm");
    deep.plan().run_reference(&input).expect("warm");

    let slot_shallow = clones_during(|| {
        shallow.run(&input).expect("shallow run");
    });
    let slot_deep = clones_during(|| {
        deep.run(&input).expect("deep run");
    });
    let ref_shallow = clones_during(|| {
        shallow.plan().run_reference(&input).expect("shallow ref");
    });
    let ref_deep = clones_during(|| {
        deep.plan().run_reference(&input).expect("deep ref");
    });

    // Slot executor: clones only at input ingestion, so more than
    // doubling the step count must not change the count at all.
    assert_eq!(
        slot_shallow, slot_deep,
        "slot executor must not clone per step (shallow {slot_shallow}, deep {slot_deep})"
    );
    assert!(
        slot_shallow <= input.len() as u64,
        "at most one ingestion clone per input, got {slot_shallow}"
    );

    // Reference interpreter: per-step fetch clones scale with depth.
    assert!(
        ref_deep > ref_shallow,
        "reference fetch clones grow with depth ({ref_shallow} -> {ref_deep})"
    );
    assert!(
        slot_deep < ref_deep,
        "slot executor ({slot_deep}) must clone strictly less than the reference ({ref_deep})"
    );
}
