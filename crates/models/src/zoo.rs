//! The Figure 10 model registry.

use bolt_graph::Graph;
use bolt_tensor::Activation;

use crate::cnn::serving_cnn;
use crate::inception::inception_v3;
use crate::mlp::serving_mlp;
use crate::repvgg::{RepVggSpec, RepVggVariant};
use crate::resnet::resnet;
use crate::vgg::vgg;

/// The six widely-used CNNs of the end-to-end evaluation (Figure 10).
pub const FIGURE10_MODELS: [&str; 6] = [
    "vgg-16",
    "vgg-19",
    "resnet-18",
    "resnet-50",
    "repvgg-a0",
    "repvgg-b0",
];

/// Zoo entries with **materialized** parameters — the models the serving
/// layer executes functionally, not just prices.
pub const SERVING_MODELS: [&str; 3] = ["mlp-small", "mlp-large", "cnn-small"];

/// Metadata for a zoo model.
#[derive(Debug, Clone)]
pub struct ModelInfo {
    /// Registry name.
    pub name: String,
    /// The inference graph.
    pub graph: Graph,
    /// Batch size the graph was built for.
    pub batch: usize,
    /// Parameter count of the built graph, in millions.
    pub params_m: f64,
}

/// Builds a zoo model by name (`vgg-16`, `resnet-50`, `repvgg-a0`, ...).
///
/// # Panics
///
/// Panics on an unknown name; see [`FIGURE10_MODELS`] for the supported
/// set (plus `vgg-11`, `vgg-13`, `resnet-34`, `repvgg-a1`, the
/// `repvggaug-*` variants, and the [`SERVING_MODELS`]). Registries and
/// other callers that must not panic should use [`try_model_by_name`].
pub fn model_by_name(name: &str, batch: usize) -> ModelInfo {
    try_model_by_name(name, batch).unwrap_or_else(|| panic!("unknown model {name}"))
}

/// Non-panicking zoo lookup: returns `None` for an unknown name. This is
/// the entry point the serving-layer engine registry uses, where an
/// unknown model is a client error, not a crash.
pub fn try_model_by_name(name: &str, batch: usize) -> Option<ModelInfo> {
    let graph = match name {
        "vgg-11" => vgg(11, batch),
        "vgg-13" => vgg(13, batch),
        "vgg-16" => vgg(16, batch),
        "vgg-19" => vgg(19, batch),
        "inception-v3" => inception_v3(batch),
        "resnet-18" => resnet(18, batch),
        "resnet-34" => resnet(34, batch),
        "resnet-50" => resnet(50, batch),
        "resnet-101" => resnet(101, batch),
        "resnet-152" => resnet(152, batch),
        "repvgg-a0" => RepVggSpec::original(RepVggVariant::A0).deploy_graph(batch),
        "repvgg-a1" => RepVggSpec::original(RepVggVariant::A1).deploy_graph(batch),
        "repvgg-b0" => RepVggSpec::original(RepVggVariant::B0).deploy_graph(batch),
        "repvggaug-a0" => {
            RepVggSpec::augmented(RepVggVariant::A0, Activation::ReLU).deploy_graph(batch)
        }
        "repvggaug-a1" => {
            RepVggSpec::augmented(RepVggVariant::A1, Activation::ReLU).deploy_graph(batch)
        }
        "repvggaug-b0" => {
            RepVggSpec::augmented(RepVggVariant::B0, Activation::ReLU).deploy_graph(batch)
        }
        "mlp-small" => serving_mlp(batch, &[128, 256, 64, 10]),
        "mlp-large" => serving_mlp(batch, &[256, 512, 512, 128, 10]),
        "cnn-small" => serving_cnn(batch),
        _ => return None,
    };
    let params: usize = graph
        .nodes()
        .iter()
        .filter_map(|n| match &n.kind {
            bolt_graph::OpKind::Constant { shape, .. } => Some(shape.numel()),
            _ => None,
        })
        .sum();
    Some(ModelInfo {
        name: name.to_string(),
        graph,
        batch,
        params_m: params as f64 / 1e6,
    })
}

/// A deterministic single-sample input batch for a zoo model: one F16
/// tensor per graph input, batch dimension 1, seeded by `seed`. `None`
/// for unknown names. The serving layer's tests, benches, and examples
/// use this instead of hard-coding each model's input dimensions.
pub fn sample_inputs(name: &str, seed: u64) -> Option<Vec<bolt_tensor::Tensor>> {
    let info = try_model_by_name(name, 1)?;
    Some(
        info.graph
            .input_ids()
            .iter()
            .map(|&id| {
                bolt_tensor::Tensor::randn(
                    info.graph.node(id).shape.dims(),
                    bolt_tensor::DType::F16,
                    seed,
                )
            })
            .collect(),
    )
}

/// Autoregressive zoo entries served through the continuous batcher
/// (ragged token prompts, per-step decode) rather than the fixed-shape
/// tensor path above.
pub const LLM_MODELS: [&str; 1] = ["tiny-lm"];

/// Looks up an autoregressive zoo model's architecture. `None` for
/// names that are not LLM entries (including the fixed-shape
/// [`SERVING_MODELS`], which keep using [`sample_inputs`]).
pub fn llm_by_name(name: &str) -> Option<crate::llm::DecoderSpec> {
    match name {
        "tiny-lm" => Some(crate::llm::DecoderSpec::tiny()),
        _ => None,
    }
}

/// Prompt-length distribution for [`sample_prompts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromptLengths {
    /// Shortest prompt, in tokens (≥ 1).
    pub min: usize,
    /// Longest prompt, inclusive.
    pub max: usize,
}

impl PromptLengths {
    /// Uniform lengths over `min..=max`.
    pub fn uniform(min: usize, max: usize) -> Self {
        assert!(min >= 1 && max >= min, "degenerate range {min}..={max}");
        PromptLengths { min, max }
    }

    /// Every prompt exactly `n` tokens.
    pub fn fixed(n: usize) -> Self {
        Self::uniform(n, n)
    }
}

/// Seeded variable-length prompt generator for an LLM zoo model — the
/// ragged-input companion to [`sample_inputs`], shared by the serving
/// tests, `benches/llm_serving.rs`, and `examples/llm_demo.rs` so they
/// all exercise one distribution. Lengths are drawn from `lengths`
/// (clamped to the model's `max_seq`), token ids uniformly from the
/// model's vocabulary; the same `(name, count, lengths, seed)` always
/// yields the same prompts. `None` for names without an LLM zoo entry.
pub fn sample_prompts(
    name: &str,
    count: usize,
    lengths: PromptLengths,
    seed: u64,
) -> Option<Vec<Vec<u32>>> {
    let spec = llm_by_name(name)?;
    // Splitmix64 stream, one chain per call.
    let mut state = seed ^ 0x9e3779b97f4a7c15;
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut x = state;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    };
    let hi = lengths.max.min(spec.max_seq.saturating_sub(1)).max(1);
    let lo = lengths.min.min(hi);
    Some(
        (0..count)
            .map(|_| {
                let len = lo + (next() as usize) % (hi - lo + 1);
                (0..len)
                    .map(|_| (next() % spec.vocab as u64) as u32)
                    .collect()
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figure10_models_build() {
        for name in FIGURE10_MODELS {
            let info = model_by_name(name, 32);
            assert!(!info.graph.is_empty(), "{name}");
            assert!(info.params_m > 1.0, "{name}: {} M params", info.params_m);
        }
    }

    #[test]
    fn param_counts_are_plausible() {
        // VGG-16: ~138 M params; ResNet-50: ~25.6 M; RepVGG-A0 deploy: ~8.3 M.
        let vgg16 = model_by_name("vgg-16", 1);
        assert!((vgg16.params_m - 138.0).abs() < 5.0, "{}", vgg16.params_m);
        let r50 = model_by_name("resnet-50", 1);
        assert!((r50.params_m - 25.6).abs() < 2.0, "{}", r50.params_m);
        let a0 = model_by_name("repvgg-a0", 1);
        assert!((a0.params_m - 8.3).abs() < 0.7, "{}", a0.params_m);
    }

    #[test]
    #[should_panic(expected = "unknown model")]
    fn unknown_model_panics() {
        model_by_name("alexnet", 1);
    }

    #[test]
    fn try_lookup_is_total() {
        assert!(try_model_by_name("alexnet", 1).is_none());
        assert!(try_model_by_name("resnet-18", 4).is_some());
    }

    #[test]
    fn sample_inputs_match_each_graph_input() {
        assert!(sample_inputs("alexnet", 0).is_none());
        for name in SERVING_MODELS {
            let inputs = sample_inputs(name, 7).expect(name);
            let info = model_by_name(name, 1);
            assert_eq!(inputs.len(), info.graph.input_ids().len(), "{name}");
            for (tensor, id) in inputs.iter().zip(info.graph.input_ids()) {
                assert_eq!(
                    tensor.shape().dims(),
                    info.graph.node(id).shape.dims(),
                    "{name}"
                );
                assert_eq!(tensor.shape().dims()[0], 1, "{name}: batch-1 sample");
            }
        }
    }

    #[test]
    fn llm_lookup_is_total_and_disjoint_from_tensor_zoo() {
        for name in LLM_MODELS {
            assert!(llm_by_name(name).is_some(), "{name}");
            assert!(
                try_model_by_name(name, 1).is_none(),
                "{name} must not shadow a fixed-shape zoo entry"
            );
        }
        assert!(llm_by_name("mlp-small").is_none());
        assert!(llm_by_name("gpt-oss").is_none());
    }

    #[test]
    fn sample_prompts_are_seeded_bounded_and_variable_length() {
        let lengths = PromptLengths::uniform(3, 24);
        let a = sample_prompts("tiny-lm", 64, lengths, 11).unwrap();
        let b = sample_prompts("tiny-lm", 64, lengths, 11).unwrap();
        assert_eq!(a, b, "same seed, same prompts");
        let c = sample_prompts("tiny-lm", 64, lengths, 12).unwrap();
        assert_ne!(a, c, "different seed, different prompts");

        let spec = llm_by_name("tiny-lm").unwrap();
        assert_eq!(a.len(), 64);
        for prompt in &a {
            assert!((3..=24).contains(&prompt.len()), "{}", prompt.len());
            assert!(prompt.iter().all(|&t| (t as usize) < spec.vocab));
        }
        let distinct: std::collections::HashSet<usize> = a.iter().map(|p| p.len()).collect();
        assert!(distinct.len() > 4, "lengths actually vary: {distinct:?}");
    }

    #[test]
    fn fixed_prompt_lengths_and_max_seq_clamp() {
        let fixed = sample_prompts("tiny-lm", 8, PromptLengths::fixed(5), 3).unwrap();
        assert!(fixed.iter().all(|p| p.len() == 5));

        // A distribution wider than the context window leaves decode headroom.
        let spec = llm_by_name("tiny-lm").unwrap();
        let wide = PromptLengths::uniform(1, spec.max_seq * 4);
        let clamped = sample_prompts("tiny-lm", 32, wide, 9).unwrap();
        assert!(clamped.iter().all(|p| p.len() < spec.max_seq));

        assert!(sample_prompts("alexnet", 4, fixed_one(), 0).is_none());
    }

    fn fixed_one() -> PromptLengths {
        PromptLengths::fixed(1)
    }

    #[test]
    fn serving_models_build_with_materialized_params() {
        for name in SERVING_MODELS {
            let info = try_model_by_name(name, 8).expect(name);
            let constants: Vec<_> = info
                .graph
                .nodes()
                .iter()
                .filter(|n| matches!(n.kind, bolt_graph::OpKind::Constant { .. }))
                .collect();
            assert!(!constants.is_empty(), "{name}");
            for c in constants {
                assert!(
                    info.graph.param(c.id).is_some(),
                    "{name}: {} not materialized",
                    c.name
                );
            }
        }
    }
}
