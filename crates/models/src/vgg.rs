//! VGG (Simonyan & Zisserman, 2014) — the compute-bound end of Figure 10,
//! where Bolt's tensor-core kernels win by the largest margin (4.2×).

use bolt_graph::{Graph, GraphBuilder};
use bolt_tensor::{Activation, DType};

/// Per-variant convolution plans: channel counts, `0` marking a 2×2 max
/// pool.
fn plan(depth: usize) -> &'static [usize] {
    match depth {
        11 => &[64, 0, 128, 0, 256, 256, 0, 512, 512, 0, 512, 512, 0],
        13 => &[
            64, 64, 0, 128, 128, 0, 256, 256, 0, 512, 512, 0, 512, 512, 0,
        ],
        16 => &[
            64, 64, 0, 128, 128, 0, 256, 256, 256, 0, 512, 512, 512, 0, 512, 512, 512, 0,
        ],
        19 => &[
            64, 64, 0, 128, 128, 0, 256, 256, 256, 256, 0, 512, 512, 512, 512, 0, 512, 512, 512,
            512, 0,
        ],
        other => panic!("unsupported VGG depth {other} (use 11/13/16/19)"),
    }
}

/// Builds VGG-`depth` for 224×224 inputs at the given batch size.
/// Parameters are shape-only (the Figure 10 models are timed, not
/// functionally executed).
///
/// # Panics
///
/// Panics if `depth` is not one of 11/13/16/19.
pub fn vgg(depth: usize, batch: usize) -> Graph {
    let mut b = GraphBuilder::shapes_only(DType::F16);
    let mut x = b.input(&[batch, 3, 224, 224]);
    for (i, &step) in plan(depth).iter().enumerate() {
        if step == 0 {
            x = b.max_pool(x, 2, 2, &format!("pool{i}"));
        } else {
            x = b.conv2d_bias(x, step, 3, (1, 1), (1, 1), &format!("conv{i}"));
            x = b.activation(x, Activation::ReLU, &format!("relu{i}"));
        }
    }
    x = b.flatten(x, "flatten");
    x = b.dense_bias(x, 4096, "fc6");
    x = b.activation(x, Activation::ReLU, "relu6");
    x = b.dense_bias(x, 4096, "fc7");
    x = b.activation(x, Activation::ReLU, "relu7");
    x = b.dense_bias(x, 1000, "fc8");
    b.finish(&[x])
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_graph::extract_workloads;

    #[test]
    fn vgg16_structure() {
        let g = vgg(16, 32);
        let convs = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, bolt_graph::OpKind::Conv2d { .. }))
            .count();
        assert_eq!(convs, 13);
        let denses = g
            .nodes()
            .iter()
            .filter(|n| n.kind == bolt_graph::OpKind::Dense)
            .count();
        assert_eq!(denses, 3);
        // Final classifier shape.
        let out = g.outputs()[0];
        assert_eq!(g.node(out).shape.dims(), &[32, 1000]);
    }

    #[test]
    fn spatial_dims_shrink_correctly() {
        let g = vgg(11, 1);
        // After 5 pools: 224 / 32 = 7; flatten gives 512*7*7 = 25088.
        let flat = g.nodes().iter().find(|n| n.name == "flatten").unwrap();
        assert_eq!(flat.shape.dims(), &[1, 25088]);
    }

    #[test]
    fn workload_counts_are_modest() {
        // VGG has few unique workloads despite many layers (Figure 10b's
        // task counts).
        let g = vgg(19, 32);
        let tasks = extract_workloads(&g);
        assert!(tasks.len() <= 13, "{} unique tasks", tasks.len());
    }

    #[test]
    #[should_panic(expected = "unsupported VGG depth")]
    fn bad_depth_panics() {
        vgg(15, 1);
    }
}
