//! Autoregressive transformer decoder workload (ISSUE 9): the
//! LLM-serving shape regime Bolt's fixed-shape zoo never exercised.
//!
//! A decoder forward pass is a stack of GEMMs whose M extent is the
//! number of token rows flowing through it: **prefill** pushes a whole
//! prompt at once (wide GEMM, M = prompt length), while each **decode
//! step** pushes one row per live sequence (skinny GEMM whose M shifts
//! every iteration as sequences join and finish). Attention itself is
//! not expressible in the graph IR (there is no activation×activation
//! matmul operator), which mirrors how serving stacks split the model:
//! the GEMM stacks compile through Bolt per M-bucket, and the
//! per-sequence attention runs as host glue against the persistent KV
//! workspace (`bolt::KvWorkspace`).
//!
//! Per decoder layer the graph work is split into two compilable
//! sub-models plus the shared LM head:
//!
//! * **qkv** — `(M, hidden) → dense_bias → (M, 3·hidden)`: the fused
//!   Q/K/V projection.
//! * **post** — attention output + residual in, block output out:
//!   `Wo` projection with fused residual add, then the two-GEMM MLP
//!   (`ffn` up with GELU, `hidden` down with fused residual add).
//! * **lm_head** — `(M, hidden) → (M, vocab)` logits.
//!
//! Every sub-model's parameters are reseeded deterministically from
//! `(model salt, constant name)` after graph construction, so the same
//! layer gets identical weights at every M bucket — the property that
//! makes continuous batching bit-identical to sequential execution
//! (GEMM rows are independent, and f32 accumulation order per output
//! element never depends on M).

use bolt_graph::{Graph, GraphBuilder, OpKind};
use bolt_tensor::{Activation, DType, Tensor};

/// Architecture of a toy autoregressive decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecoderSpec {
    /// Decoder layers.
    pub layers: usize,
    /// Model width (must divide evenly into `heads`).
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// MLP inner width.
    pub ffn: usize,
    /// Vocabulary size (token ids are `0..vocab`).
    pub vocab: usize,
    /// Maximum sequence length (prompt + generated) a KV cache holds.
    pub max_seq: usize,
}

impl DecoderSpec {
    /// The `tiny-lm` zoo preset: small enough that per-step functional
    /// execution is fast, deep enough (2 layers × 3 GEMM stacks + LM
    /// head) that every serving-path mechanism is exercised.
    pub fn tiny() -> Self {
        DecoderSpec {
            layers: 2,
            hidden: 64,
            heads: 4,
            ffn: 128,
            vocab: 128,
            max_seq: 160,
        }
    }

    /// Per-head width.
    pub fn head_dim(&self) -> usize {
        debug_assert_eq!(self.hidden % self.heads, 0, "heads must divide hidden");
        self.hidden / self.heads
    }

    /// KV row width per layer (all heads concatenated).
    pub fn kv_dim(&self) -> usize {
        self.hidden
    }

    /// Approximate parameter count across all sub-models.
    pub fn params(&self) -> u64 {
        let per_layer = 3 * self.hidden * self.hidden   // qkv
            + self.hidden * self.hidden                 // wo
            + 2 * self.hidden * self.ffn; // mlp up + down
        (self.layers * per_layer + self.vocab * self.hidden) as u64
    }
}

/// Splitmix64 — deterministic parameter/prompt seeding.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Deterministic per-name seed: identical for the same `(salt, name)`
/// whatever M the graph was built at.
fn name_seed(salt: u64, name: &str) -> u64 {
    let mut h = salt ^ 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h = mix(h ^ u64::from(*b));
    }
    h | 1
}

/// Overwrites every materialized constant with a tensor seeded from
/// `(salt, node name)` and scaled by `1/sqrt(fan_in)` — the same
/// init scale `GraphBuilder::constant` uses, but keyed by *name*
/// instead of creation order so weights are layer-distinct yet
/// identical across M buckets.
fn reseed_params(graph: &mut Graph, salt: u64) {
    let consts: Vec<_> = graph
        .nodes()
        .iter()
        .filter_map(|n| match &n.kind {
            OpKind::Constant { shape, dtype } => {
                Some((n.id, shape.dims().to_vec(), *dtype, n.name.clone()))
            }
            _ => None,
        })
        .collect();
    for (id, dims, dtype, name) in consts {
        let scale = 1.0 / (dims.iter().skip(1).product::<usize>().max(1) as f32).sqrt();
        let t = Tensor::randn(&dims, dtype, name_seed(salt, &name));
        let data = t.data().iter().map(|v| v * scale).collect();
        let t = Tensor::from_vec(&dims, dtype, data).expect("same length");
        graph.set_param(id, t).expect("constant accepts params");
    }
}

/// The fused Q/K/V projection of `layer`: `(rows, hidden)` activations
/// in, `(rows, 3·hidden)` out (Q then K then V, each `hidden` wide).
pub fn qkv_graph(spec: &DecoderSpec, salt: u64, layer: usize, rows: usize) -> Graph {
    let mut b = GraphBuilder::new(DType::F16);
    let x = b.input(&[rows.max(1), spec.hidden]);
    let qkv = b.dense_bias(x, 3 * spec.hidden, &format!("l{layer}.qkv"));
    let mut g = b.finish(&[qkv]);
    reseed_params(&mut g, salt);
    g
}

/// Everything after attention in `layer`: the `Wo` projection with the
/// block residual fused, then the GELU MLP with its own fused residual.
/// Inputs: `[attention_output, block_residual]`, both `(rows, hidden)`.
pub fn post_graph(spec: &DecoderSpec, salt: u64, layer: usize, rows: usize) -> Graph {
    let mut b = GraphBuilder::new(DType::F16);
    let attn = b.input(&[rows.max(1), spec.hidden]);
    let residual = b.input(&[rows.max(1), spec.hidden]);
    let wo = b.dense_bias(attn, spec.hidden, &format!("l{layer}.wo"));
    let h = b.add(wo, residual, &format!("l{layer}.res0"));
    let up = b.dense_bias(h, spec.ffn, &format!("l{layer}.ffn.up"));
    let act = b.activation(up, Activation::Gelu, &format!("l{layer}.ffn.gelu"));
    let down = b.dense_bias(act, spec.hidden, &format!("l{layer}.ffn.down"));
    let out = b.add(down, h, &format!("l{layer}.res1"));
    let mut g = b.finish(&[out]);
    reseed_params(&mut g, salt);
    g
}

/// The shared LM head: `(rows, hidden)` hidden states to `(rows,
/// vocab)` logits.
pub fn lm_head_graph(spec: &DecoderSpec, salt: u64, rows: usize) -> Graph {
    let mut b = GraphBuilder::new(DType::F16);
    let x = b.input(&[rows.max(1), spec.hidden]);
    let logits = b.dense_bias(x, spec.vocab, "lm_head");
    let mut g = b.finish(&[logits]);
    reseed_params(&mut g, salt);
    g
}

/// Serving registry name of `layer`'s QKV sub-model.
pub fn qkv_name(model: &str, layer: usize) -> String {
    format!("{model}/l{layer}.qkv")
}

/// Serving registry name of `layer`'s post-attention sub-model.
pub fn post_name(model: &str, layer: usize) -> String {
    format!("{model}/l{layer}.post")
}

/// Serving registry name of the LM head sub-model.
pub fn lm_head_name(model: &str) -> String {
    format!("{model}/lm_head")
}

/// Host-side state shared by every execution path: the token embedding
/// table and the spec. The graph sub-models carry the projection
/// weights; this carries what the graph IR cannot express.
#[derive(Debug)]
pub struct DecoderModel {
    spec: DecoderSpec,
    salt: u64,
    /// `(vocab, hidden)` F16 embedding table.
    embed: Tensor,
}

impl DecoderModel {
    /// Builds the host-side model for `spec`, with all randomness
    /// derived from `salt` (the same salt the graph sub-models must be
    /// built with).
    pub fn new(spec: DecoderSpec, salt: u64) -> Self {
        assert_eq!(spec.hidden % spec.heads, 0, "heads must divide hidden");
        let dims = [spec.vocab, spec.hidden];
        let scale = 1.0 / (spec.hidden as f32).sqrt();
        let t = Tensor::randn(&dims, DType::F16, name_seed(salt, "embed"));
        let data = t.data().iter().map(|v| v * scale).collect();
        let embed = Tensor::from_vec(&dims, DType::F16, data).expect("same length");
        DecoderModel { spec, salt, embed }
    }

    /// The architecture.
    pub fn spec(&self) -> &DecoderSpec {
        &self.spec
    }

    /// The parameter salt graph sub-models must share.
    pub fn salt(&self) -> u64 {
        self.salt
    }

    /// The embedding row of `token`.
    pub fn embed_token(&self, token: u32) -> &[f32] {
        let row = (token as usize) % self.spec.vocab;
        let h = self.spec.hidden;
        &self.embed.data()[row * h..(row + 1) * h]
    }

    /// Greedy deterministic sampling: the lowest-index maximal logit.
    pub fn argmax(&self, logits: &[f32]) -> u32 {
        debug_assert_eq!(logits.len(), self.spec.vocab);
        let mut best = 0usize;
        for (i, &v) in logits.iter().enumerate() {
            if v > logits[best] {
                best = i;
            }
        }
        best as u32
    }

    /// Causal multi-head attention for one query row against `n` cached
    /// rows (the current position's K/V already written into the
    /// cache). `keys`/`values` arrive as lists of contiguous whole-row
    /// chunks in position order — the per-block runs a paged KV cache
    /// (`bolt::KvWorkspace::key_chunks`) hands out — concatenating to
    /// at least `n` rows of width `hidden`. Pure, sequential,
    /// per-sequence host math, and positions are visited strictly in
    /// order across chunk boundaries, so the float-op order (and hence
    /// the result, bit for bit) is identical however the rows are
    /// paged: its result depends only on this sequence's history, never
    /// on batch composition or block size, which is half of the
    /// bit-identity argument for continuous batching.
    pub fn attention(&self, q: &[f32], keys: &[&[f32]], values: &[&[f32]], n: usize) -> Vec<f32> {
        let h = self.spec.hidden;
        let heads = self.spec.heads;
        let d = self.spec.head_dim();
        debug_assert_eq!(q.len(), h);
        debug_assert!(keys.iter().map(|c| c.len()).sum::<usize>() >= n * h);
        debug_assert!(values.iter().map(|c| c.len()).sum::<usize>() >= n * h);
        let inv_sqrt_d = 1.0 / (d as f32).sqrt();
        let mut out = vec![0.0f32; h];
        let mut scores = vec![0.0f32; n];
        for head in 0..heads {
            let o = head * d;
            // Scaled dot-product scores over the causal window.
            let mut max = f32::NEG_INFINITY;
            let mut t = 0usize;
            'keys: for chunk in keys {
                for k_row in chunk.chunks_exact(h) {
                    if t >= n {
                        break 'keys;
                    }
                    let mut dot = 0.0f32;
                    for (qe, ke) in q[o..o + d].iter().zip(&k_row[o..o + d]) {
                        dot += qe * ke;
                    }
                    scores[t] = dot * inv_sqrt_d;
                    max = max.max(scores[t]);
                    t += 1;
                }
            }
            // Max-subtracted softmax, then the value mix.
            let mut denom = 0.0f32;
            for s in scores.iter_mut() {
                *s = (*s - max).exp();
                denom += *s;
            }
            let inv = 1.0 / denom;
            let mut t = 0usize;
            'values: for chunk in values {
                for v_row in chunk.chunks_exact(h) {
                    if t >= n {
                        break 'values;
                    }
                    let w = scores[t] * inv;
                    for (oe, ve) in out[o..o + d].iter_mut().zip(&v_row[o..o + d]) {
                        *oe += w * ve;
                    }
                    t += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_graphs_build_and_shapes_check() {
        let spec = DecoderSpec::tiny();
        for rows in [1usize, 7, 32] {
            let q = qkv_graph(&spec, 9, 0, rows);
            let out = q.node(q.outputs()[0]);
            assert_eq!(out.shape.dims(), &[rows, 3 * spec.hidden]);

            let p = post_graph(&spec, 9, 1, rows);
            let out = p.node(p.outputs()[0]);
            assert_eq!(out.shape.dims(), &[rows, spec.hidden]);
            assert_eq!(p.input_ids().len(), 2);

            let l = lm_head_graph(&spec, 9, rows);
            let out = l.node(l.outputs()[0]);
            assert_eq!(out.shape.dims(), &[rows, spec.vocab]);
        }
    }

    #[test]
    fn params_are_identical_across_m_buckets_and_distinct_across_layers() {
        let spec = DecoderSpec::tiny();
        let narrow = qkv_graph(&spec, 9, 0, 1);
        let wide = qkv_graph(&spec, 9, 0, 32);
        let weight = |g: &Graph, name: &str| {
            let n = g
                .nodes()
                .iter()
                .find(|n| n.name == name)
                .unwrap_or_else(|| panic!("{name} missing"));
            g.param(n.id).expect("materialized").data().to_vec()
        };
        assert_eq!(
            weight(&narrow, "l0.qkv.weight"),
            weight(&wide, "l0.qkv.weight"),
            "same layer weights at every M bucket"
        );
        let other_layer = qkv_graph(&spec, 9, 1, 1);
        assert_ne!(
            weight(&narrow, "l0.qkv.weight"),
            weight(&other_layer, "l1.qkv.weight"),
            "layers have distinct weights"
        );
        let other_salt = qkv_graph(&spec, 10, 0, 1);
        assert_ne!(
            weight(&narrow, "l0.qkv.weight"),
            weight(&other_salt, "l0.qkv.weight"),
            "salt changes weights"
        );
    }

    #[test]
    fn attention_is_a_convex_value_mix() {
        let spec = DecoderSpec::tiny();
        let model = DecoderModel::new(spec, 1);
        let h = spec.hidden;
        let n = 5;
        let q = vec![0.1f32; h];
        let keys: Vec<f32> = (0..n * h).map(|i| ((i % 13) as f32 - 6.0) * 0.1).collect();
        // All values equal => any softmax weighting returns that value.
        let values = vec![0.75f32; n * h];
        let out = model.attention(&q, &[&keys], &[&values], n);
        assert_eq!(out.len(), h);
        for v in &out {
            assert!((v - 0.75).abs() < 1e-5, "got {v}");
        }
        // Paging the same rows into uneven chunks is bit-identical:
        // positions are visited in order regardless of chunking.
        let split = 2 * h;
        let chunked_keys: Vec<&[f32]> = vec![&keys[..split], &keys[split..]];
        let chunked_values: Vec<&[f32]> = vec![&values[..split], &values[split..]];
        let paged = model.attention(&q, &chunked_keys, &chunked_values, n);
        assert_eq!(out, paged, "chunking must not change a single bit");
    }

    #[test]
    fn argmax_breaks_ties_toward_lower_index() {
        let spec = DecoderSpec::tiny();
        let model = DecoderModel::new(spec, 1);
        let mut logits = vec![0.0f32; spec.vocab];
        logits[3] = 2.0;
        logits[90] = 2.0;
        assert_eq!(model.argmax(&logits), 3);
    }

    #[test]
    fn embedding_is_deterministic_per_salt() {
        let spec = DecoderSpec::tiny();
        let a = DecoderModel::new(spec, 7);
        let b = DecoderModel::new(spec, 7);
        let c = DecoderModel::new(spec, 8);
        assert_eq!(a.embed_token(42), b.embed_token(42));
        assert_ne!(a.embed_token(42), c.embed_token(42));
        assert_eq!(a.embed_token(5).len(), spec.hidden);
    }
}
