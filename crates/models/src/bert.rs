//! The GEMM workload set of Figures 1 and 8a.
//!
//! The paper benchmarks "two large square GEMMs and three GEMMs in BERT
//! ... when the batch size is 32 and the sequence length is 40" without
//! listing shapes. We use (see DESIGN.md, substitution 6):
//!
//! * squares 4096³ and 2048³ (compute-bound);
//! * the two feed-forward GEMMs of BERT-base at `M = 32 × 40 = 1280`
//!   (compute-bound);
//! * the batched attention-score GEMM `384 × [40, 40, 64]` (memory- and
//!   launch-bound — the workload where Ansor is competitive and the
//!   paper's speedup drops to 1.9×).

use bolt_cutlass::GemmProblem;
use bolt_graph::{Graph, GraphBuilder, Workload};
use bolt_tensor::{Activation, DType};

/// BERT-base hyperparameters behind the workload set.
pub const HIDDEN: usize = 768;
/// Feed-forward inner dimension.
pub const FFN: usize = 3072;
/// Benchmark batch size.
pub const BATCH: usize = 32;
/// Benchmark sequence length.
pub const SEQ: usize = 40;

/// The Figure 1 / 8a workload list: `(label, problem)`.
pub fn gemm_workloads() -> Vec<(&'static str, GemmProblem)> {
    let m = BATCH * SEQ;
    vec![
        ("square-4096", GemmProblem::fp16(4096, 4096, 4096)),
        ("square-2048", GemmProblem::fp16(2048, 2048, 2048)),
        ("bert-ffn1", GemmProblem::fp16(m, FFN, HIDDEN)),
        ("bert-ffn2", GemmProblem::fp16(m, HIDDEN, FFN)),
        (
            "bert-attn-scores",
            GemmProblem::fp16_batched(BATCH * 12, SEQ, SEQ, HIDDEN / 12),
        ),
    ]
}

/// The same workloads as tuner [`Workload`]s. Batched GEMMs map to the
/// tuner's strided-batched workload (per-batch tiles, batch in the grid).
pub fn tuner_workload(problem: &GemmProblem) -> Workload {
    if problem.batch > 1 {
        Workload::BatchedGemm {
            batch: problem.batch,
            m: problem.m,
            n: problem.n,
            k: problem.k,
        }
    } else {
        Workload::Gemm {
            m: problem.m,
            n: problem.n,
            k: problem.k,
        }
    }
}

/// A BERT feed-forward block as a graph (dense → GELU → dense), the
/// pattern Bolt serves with one persistent kernel when profitable.
pub fn bert_ffn_graph(batch_tokens: usize) -> Graph {
    let mut b = GraphBuilder::shapes_only(DType::F16);
    let x = b.input(&[batch_tokens, HIDDEN]);
    let h = b.dense_bias(x, FFN, "ffn.fc1");
    let a = b.activation(h, Activation::Gelu, "ffn.gelu");
    let o = b.dense_bias(a, HIDDEN, "ffn.fc2");
    b.finish(&[o])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_set_matches_paper_structure() {
        let ws = gemm_workloads();
        assert_eq!(ws.len(), 5, "two squares + three BERT GEMMs");
        // Exactly one memory-bound (low arithmetic intensity) workload.
        let low_ai = ws
            .iter()
            .filter(|(_, p)| p.arithmetic_intensity() < 40.0)
            .count();
        assert_eq!(low_ai, 1);
        // The squares are the most compute-intensive.
        let (_, sq) = ws[0];
        assert!(sq.arithmetic_intensity() > 500.0);
    }

    #[test]
    fn ffn_graph_shapes() {
        let g = bert_ffn_graph(BATCH * SEQ);
        let out = g.outputs()[0];
        assert_eq!(g.node(out).shape.dims(), &[1280, HIDDEN]);
    }
}
