//! Inception-V3 (Szegedy et al., 2016) — named in the paper's Section 2.1
//! as a model whose "many different workloads" make auto-tuning take days;
//! its factorized (1×7 / 7×1) convolutions and multi-branch concatenations
//! also stress the graph substrate well beyond plain chains.
//!
//! This is the canonical torchvision topology in inference form (BatchNorm
//! pre-folded into conv biases), shape-only parameters.

use bolt_graph::{Graph, GraphBuilder, NodeId};
use bolt_tensor::{Activation, DType};

/// A conv + bias + ReLU unit ("BasicConv2d"), optionally with a non-square
/// kernel and asymmetric padding.
fn conv(
    b: &mut GraphBuilder,
    x: NodeId,
    out_ch: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
    name: &str,
) -> NodeId {
    let cb = b.conv2d_rect_bias(x, out_ch, kernel, stride, padding, name);
    b.activation(cb, Activation::ReLU, &format!("{name}.relu"))
}

/// Inception-A block: 1×1 / 5×5 / double-3×3 / pool branches.
fn inception_a(b: &mut GraphBuilder, x: NodeId, pool_ch: usize, name: &str) -> NodeId {
    let b1 = conv(b, x, 64, (1, 1), (1, 1), (0, 0), &format!("{name}.b1"));
    let b5 = conv(b, x, 48, (1, 1), (1, 1), (0, 0), &format!("{name}.b5a"));
    let b5 = conv(b, b5, 64, (5, 5), (1, 1), (2, 2), &format!("{name}.b5b"));
    let b3 = conv(b, x, 64, (1, 1), (1, 1), (0, 0), &format!("{name}.b3a"));
    let b3 = conv(b, b3, 96, (3, 3), (1, 1), (1, 1), &format!("{name}.b3b"));
    let b3 = conv(b, b3, 96, (3, 3), (1, 1), (1, 1), &format!("{name}.b3c"));
    let bp = b.avg_pool(x, 3, 1, 1, &format!("{name}.pool"));
    let bp = conv(
        b,
        bp,
        pool_ch,
        (1, 1),
        (1, 1),
        (0, 0),
        &format!("{name}.bp"),
    );
    b.concat(&[b1, b5, b3, bp], &format!("{name}.concat"))
}

/// Inception-B (grid reduction): strided 3×3 / double-3×3 / pool branches.
fn inception_b(b: &mut GraphBuilder, x: NodeId, name: &str) -> NodeId {
    let b3 = conv(b, x, 384, (3, 3), (2, 2), (0, 0), &format!("{name}.b3"));
    let bd = conv(b, x, 64, (1, 1), (1, 1), (0, 0), &format!("{name}.bda"));
    let bd = conv(b, bd, 96, (3, 3), (1, 1), (1, 1), &format!("{name}.bdb"));
    let bd = conv(b, bd, 96, (3, 3), (2, 2), (0, 0), &format!("{name}.bdc"));
    let bp = b.max_pool(x, 3, 2, &format!("{name}.pool"));
    b.concat(&[b3, bd, bp], &format!("{name}.concat"))
}

/// Inception-C block with factorized 1×7 / 7×1 convolutions.
fn inception_c(b: &mut GraphBuilder, x: NodeId, c7: usize, name: &str) -> NodeId {
    let b1 = conv(b, x, 192, (1, 1), (1, 1), (0, 0), &format!("{name}.b1"));
    let b7 = conv(b, x, c7, (1, 1), (1, 1), (0, 0), &format!("{name}.b7a"));
    let b7 = conv(b, b7, c7, (1, 7), (1, 1), (0, 3), &format!("{name}.b7b"));
    let b7 = conv(b, b7, 192, (7, 1), (1, 1), (3, 0), &format!("{name}.b7c"));
    let bd = conv(b, x, c7, (1, 1), (1, 1), (0, 0), &format!("{name}.bda"));
    let bd = conv(b, bd, c7, (7, 1), (1, 1), (3, 0), &format!("{name}.bdb"));
    let bd = conv(b, bd, c7, (1, 7), (1, 1), (0, 3), &format!("{name}.bdc"));
    let bd = conv(b, bd, c7, (7, 1), (1, 1), (3, 0), &format!("{name}.bdd"));
    let bd = conv(b, bd, 192, (1, 7), (1, 1), (0, 3), &format!("{name}.bde"));
    let bp = b.avg_pool(x, 3, 1, 1, &format!("{name}.pool"));
    let bp = conv(b, bp, 192, (1, 1), (1, 1), (0, 0), &format!("{name}.bp"));
    b.concat(&[b1, b7, bd, bp], &format!("{name}.concat"))
}

/// Inception-D (grid reduction with factorized 7×7).
fn inception_d(b: &mut GraphBuilder, x: NodeId, name: &str) -> NodeId {
    let b3 = conv(b, x, 192, (1, 1), (1, 1), (0, 0), &format!("{name}.b3a"));
    let b3 = conv(b, b3, 320, (3, 3), (2, 2), (0, 0), &format!("{name}.b3b"));
    let b7 = conv(b, x, 192, (1, 1), (1, 1), (0, 0), &format!("{name}.b7a"));
    let b7 = conv(b, b7, 192, (1, 7), (1, 1), (0, 3), &format!("{name}.b7b"));
    let b7 = conv(b, b7, 192, (7, 1), (1, 1), (3, 0), &format!("{name}.b7c"));
    let b7 = conv(b, b7, 192, (3, 3), (2, 2), (0, 0), &format!("{name}.b7d"));
    let bp = b.max_pool(x, 3, 2, &format!("{name}.pool"));
    b.concat(&[b3, b7, bp], &format!("{name}.concat"))
}

/// Inception-E block (the widest: split 3×3 branches).
fn inception_e(b: &mut GraphBuilder, x: NodeId, name: &str) -> NodeId {
    let b1 = conv(b, x, 320, (1, 1), (1, 1), (0, 0), &format!("{name}.b1"));
    let b3 = conv(b, x, 384, (1, 1), (1, 1), (0, 0), &format!("{name}.b3a"));
    let b3a = conv(b, b3, 384, (1, 3), (1, 1), (0, 1), &format!("{name}.b3b"));
    let b3b = conv(b, b3, 384, (3, 1), (1, 1), (1, 0), &format!("{name}.b3c"));
    let bd = conv(b, x, 448, (1, 1), (1, 1), (0, 0), &format!("{name}.bda"));
    let bd = conv(b, bd, 384, (3, 3), (1, 1), (1, 1), &format!("{name}.bdb"));
    let bda = conv(b, bd, 384, (1, 3), (1, 1), (0, 1), &format!("{name}.bdc"));
    let bdb = conv(b, bd, 384, (3, 1), (1, 1), (1, 0), &format!("{name}.bdd"));
    let bp = b.avg_pool(x, 3, 1, 1, &format!("{name}.pool"));
    let bp = conv(b, bp, 192, (1, 1), (1, 1), (0, 0), &format!("{name}.bp"));
    b.concat(&[b1, b3a, b3b, bda, bdb, bp], &format!("{name}.concat"))
}

/// Builds Inception-V3 for 299×299 inputs, shape-only parameters.
pub fn inception_v3(batch: usize) -> Graph {
    let mut b = GraphBuilder::shapes_only(DType::F16);
    let mut x = b.input(&[batch, 3, 299, 299]);
    x = conv(&mut b, x, 32, (3, 3), (2, 2), (0, 0), "stem.1");
    x = conv(&mut b, x, 32, (3, 3), (1, 1), (0, 0), "stem.2");
    x = conv(&mut b, x, 64, (3, 3), (1, 1), (1, 1), "stem.3");
    x = b.max_pool(x, 3, 2, "stem.pool1");
    x = conv(&mut b, x, 80, (1, 1), (1, 1), (0, 0), "stem.4");
    x = conv(&mut b, x, 192, (3, 3), (1, 1), (0, 0), "stem.5");
    x = b.max_pool(x, 3, 2, "stem.pool2");

    x = inception_a(&mut b, x, 32, "mixed5b");
    x = inception_a(&mut b, x, 64, "mixed5c");
    x = inception_a(&mut b, x, 64, "mixed5d");
    x = inception_b(&mut b, x, "mixed6a");
    x = inception_c(&mut b, x, 128, "mixed6b");
    x = inception_c(&mut b, x, 160, "mixed6c");
    x = inception_c(&mut b, x, 160, "mixed6d");
    x = inception_c(&mut b, x, 192, "mixed6e");
    x = inception_d(&mut b, x, "mixed7a");
    x = inception_e(&mut b, x, "mixed7b");
    x = inception_e(&mut b, x, "mixed7c");

    x = b.global_avg_pool(x, "gap");
    x = b.dense_bias(x, 1000, "fc");
    b.finish(&[x])
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_graph::extract_workloads;

    #[test]
    fn inception_v3_builds_with_correct_output() {
        let g = inception_v3(8);
        let out = g.outputs()[0];
        assert_eq!(g.node(out).shape.dims(), &[8, 1000]);
    }

    #[test]
    fn inception_has_many_unique_workloads() {
        // The paper's point: Inception-V3 has far more unique tunable
        // workloads than VGG-style models, making auto-tuning slow.
        let inception = extract_workloads(&inception_v3(32)).len();
        let vgg = extract_workloads(&crate::vgg::vgg(16, 32)).len();
        assert!(inception > 2 * vgg, "inception {inception} vs vgg {vgg}");
        assert!(inception >= 40, "{inception}");
    }

    #[test]
    fn mixed_blocks_concatenate_channels() {
        let g = inception_v3(1);
        // mixed5b output: 64 + 64 + 96 + 32 = 256 channels at 35x35.
        let mixed5b = g
            .nodes()
            .iter()
            .find(|n| n.name == "mixed5b.concat")
            .unwrap();
        assert_eq!(mixed5b.shape.dims(), &[1, 256, 35, 35]);
        // mixed7c output: 320+384+384+384+384+192 = 2048 channels at 8x8.
        let mixed7c = g
            .nodes()
            .iter()
            .find(|n| n.name == "mixed7c.concat")
            .unwrap();
        assert_eq!(mixed7c.shape.dims(), &[1, 2048, 8, 8]);
    }

    #[test]
    fn factorized_convs_are_nonsquare() {
        let g = inception_v3(1);
        let b7b = g.nodes().iter().find(|n| n.name == "mixed6b.b7b").unwrap();
        let w = g.node(b7b.inputs[1]);
        assert_eq!(&w.shape.dims()[2..], &[1, 7]);
    }
}
