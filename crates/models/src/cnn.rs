//! A small end-to-end CNN with **materialized** parameters.
//!
//! The Figure 10 CNNs (`vgg`, `resnet`, `repvgg`) are shapes-only: big
//! enough that materializing ImageNet-scale weights in tests would be
//! wasteful, and the paper's experiments only price them. That leaves
//! `Conv2d`, `PadChannels`, and `LayoutTransform` steps exercised by the
//! timing path alone. [`serving_cnn`] closes the gap: a CIFAR-sized
//! convolutional classifier small enough to execute functionally in
//! serving tests, yet shaped to hit every CNN-specific lowering feature —
//! sub-alignment input channels (3 → padded to 8, folded into the entry
//! layout transform), a sub-alignment interior layer (6 → a standalone
//! pad kernel, Table 3's overhead), NCHW↔NHWC boundary transforms, and a
//! host GlobalAvgPool feeding a GEMM head.

use bolt_graph::{Graph, GraphBuilder};
use bolt_tensor::{Activation, DType};

/// A small serving CNN over `batch`×3×8×8 inputs:
/// conv3→6 (3×3, pad 1) + bias + ReLU, conv6→8 (3×3, pad 1) + bias +
/// ReLU, global average pool, dense head to 10 classes.
///
/// Both convolutions have unaligned input channels (3 and 6), so the
/// lowered plan carries channel padding in both its forms: folded into
/// the entry layout transform for the first layer, a standalone
/// `PadChannels` kernel mid-graph for the second.
pub fn serving_cnn(batch: usize) -> Graph {
    let mut b = GraphBuilder::new(DType::F16);
    let x = b.input(&[batch, 3, 8, 8]);
    let c1 = b.conv2d_bias(x, 6, 3, (1, 1), (1, 1), "cnn.conv1");
    let r1 = b.activation(c1, Activation::ReLU, "cnn.relu1");
    let c2 = b.conv2d_bias(r1, 8, 3, (1, 1), (1, 1), "cnn.conv2");
    let r2 = b.activation(c2, Activation::ReLU, "cnn.relu2");
    let g = b.global_avg_pool(r2, "cnn.gap");
    let y = b.dense_bias(g, 10, "cnn.head");
    b.finish(&[y])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_cnn_materializes_params() {
        let g = serving_cnn(4);
        let constants: Vec<_> = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, bolt_graph::OpKind::Constant { .. }))
            .collect();
        assert!(!constants.is_empty());
        for c in &constants {
            assert!(g.param(c.id).is_some(), "{} has no data", c.name);
        }
        assert_eq!(g.node(g.outputs()[0]).shape.dims(), &[4, 10]);
    }

    #[test]
    fn serving_cnn_channels_are_unaligned() {
        // The point of this zoo entry: both convs need channel padding.
        let g = serving_cnn(1);
        let conv_in_channels: Vec<usize> = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, bolt_graph::OpKind::Conv2d { .. }))
            .map(|n| g.node(n.inputs[0]).shape.dim(1))
            .collect();
        assert_eq!(conv_in_channels, vec![3, 6]);
    }
}
