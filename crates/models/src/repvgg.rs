//! RepVGG (Ding et al., 2021) and the paper's system-friendly
//! augmentations (Section 4.3).
//!
//! RepVGG trains a multi-branch model (3×3 conv + 1×1 conv + identity,
//! each BatchNorm-ed) and deploys a plain stack of 3×3 convolutions via
//! structural re-parameterization. Bolt's case study augments it three
//! ways: swapping the activation function (Table 4), deepening with 1×1
//! convolutions that persistent kernels fuse almost for free (Table 5),
//! and both combined (Table 6).

use bolt_graph::{Graph, GraphBuilder};
use bolt_tensor::{Activation, DType};

/// The RepVGG variants used in the paper's case study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RepVggVariant {
    /// Width multiplier a=0.75, b=2.5, stages [1, 2, 4, 14, 1].
    A0,
    /// Width multiplier a=1.0, b=2.5, stages [1, 2, 4, 14, 1].
    A1,
    /// Width multiplier a=1.0, b=2.5, stages [1, 4, 6, 16, 1].
    B0,
}

impl RepVggVariant {
    /// Blocks per stage.
    pub fn stage_blocks(self) -> [usize; 5] {
        match self {
            RepVggVariant::A0 | RepVggVariant::A1 => [1, 2, 4, 14, 1],
            RepVggVariant::B0 => [1, 4, 6, 16, 1],
        }
    }

    /// Channel width per stage.
    pub fn stage_widths(self) -> [usize; 5] {
        let (a, b) = match self {
            RepVggVariant::A0 => (0.75, 2.5),
            RepVggVariant::A1 | RepVggVariant::B0 => (1.0, 2.5),
        };
        let w = |base: f64, mult: f64| (base * mult) as usize;
        [
            (64.0f64.min(64.0 * a)) as usize,
            w(64.0, a),
            w(128.0, a),
            w(256.0, a),
            w(512.0, b),
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            RepVggVariant::A0 => "RepVGG-A0",
            RepVggVariant::A1 => "RepVGG-A1",
            RepVggVariant::B0 => "RepVGG-B0",
        }
    }

    /// Deploy-form parameter count reported by the papers (millions).
    /// Used by the accuracy proxy (see DESIGN.md substitution 5).
    pub fn paper_params_m(self, augmented: bool) -> f64 {
        match (self, augmented) {
            (RepVggVariant::A0, false) => 8.31,
            (RepVggVariant::A1, false) => 12.79,
            (RepVggVariant::B0, false) => 14.34,
            (RepVggVariant::A0, true) => 13.35,
            (RepVggVariant::A1, true) => 21.7,
            (RepVggVariant::B0, true) => 24.85,
        }
    }
}

/// A concrete model of the case study: variant + activation + optional
/// 1×1 deepening.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepVggSpec {
    /// Base architecture.
    pub variant: RepVggVariant,
    /// Activation after every convolution (the original uses ReLU).
    pub activation: Activation,
    /// Add a same-channel 1×1 conv after each 3×3 (except the wide final
    /// stage), the paper's 2nd codesign principle.
    pub augment_1x1: bool,
}

impl RepVggSpec {
    /// The original RepVGG model.
    pub fn original(variant: RepVggVariant) -> Self {
        RepVggSpec {
            variant,
            activation: Activation::ReLU,
            augment_1x1: false,
        }
    }

    /// The augmented ("RepVGGAug") model with extra 1×1 convs.
    pub fn augmented(variant: RepVggVariant, activation: Activation) -> Self {
        RepVggSpec {
            variant,
            activation,
            augment_1x1: true,
        }
    }

    /// Display name (`RepVGG-A0`, `RepVGGAug-A0`, ...).
    pub fn name(&self) -> String {
        if self.augment_1x1 {
            self.variant.name().replace("RepVGG-", "RepVGGAug-")
        } else {
            self.variant.name().to_string()
        }
    }

    /// Paper-reported parameter count in millions.
    pub fn paper_params_m(&self) -> f64 {
        self.variant.paper_params_m(self.augment_1x1)
    }

    /// Builds the deploy-form (inference) graph: re-parameterized 3×3
    /// convolutions, shape-only parameters, ready for Bolt.
    pub fn deploy_graph(&self, batch: usize) -> Graph {
        let mut b = GraphBuilder::shapes_only(DType::F16);
        let mut x = b.input(&[batch, 3, 224, 224]);
        let blocks = self.variant.stage_blocks();
        let widths = self.variant.stage_widths();
        let last_stage = blocks.len() - 1;
        for (stage, (&count, &width)) in blocks.iter().zip(widths.iter()).enumerate() {
            for block in 0..count {
                let stride = if block == 0 { 2 } else { 1 };
                let name = format!("s{stage}b{block}");
                x = b.conv2d_bias(
                    x,
                    width,
                    3,
                    (stride, stride),
                    (1, 1),
                    &format!("{name}.conv3"),
                );
                x = b.activation(x, self.activation, &format!("{name}.act"));
                // The paper adds 1x1 convs after each 3x3 "except for the
                // last one which has too many output channels".
                if self.augment_1x1 && stage != last_stage {
                    x = b.conv2d_bias(x, width, 1, (1, 1), (0, 0), &format!("{name}.conv1"));
                    x = b.activation(x, self.activation, &format!("{name}.act1"));
                }
            }
        }
        x = b.global_avg_pool(x, "gap");
        x = b.dense_bias(x, 1000, "fc");
        b.finish(&[x])
    }
}

/// Builds a *train-form* RepVGG block stack (multi-branch with BatchNorm,
/// materialized parameters) on a small input — used to exercise the
/// re-parameterization pass end to end. `channels` blocks of the given
/// widths, stride 1 throughout so identity branches are present.
pub fn train_form_blocks(batch: usize, hw: usize, widths: &[usize]) -> Graph {
    let mut b = GraphBuilder::new(DType::F32);
    let mut x = b.input(&[batch, widths[0], hw, hw]);
    for (i, &w) in widths.iter().enumerate() {
        let name = format!("block{i}");
        let c3 = b.conv2d(x, w, 3, (1, 1), (1, 1), &format!("{name}.dense"));
        let bn3 = b.batch_norm(c3, &format!("{name}.dense_bn"));
        let c1 = b.conv2d(x, w, 1, (1, 1), (0, 0), &format!("{name}.1x1"));
        let bn1 = b.batch_norm(c1, &format!("{name}.1x1_bn"));
        let mut sum = b.add(bn3, bn1, &format!("{name}.add1"));
        if b.graph().node(x).shape.dim(1) == w {
            let bnid = b.batch_norm(x, &format!("{name}.id_bn"));
            sum = b.add(sum, bnid, &format!("{name}.add2"));
        }
        x = b.activation(sum, Activation::ReLU, &format!("{name}.relu"));
    }
    b.finish(&[x])
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_graph::passes::PassManager;
    use bolt_graph::OpKind;

    #[test]
    fn variant_shapes() {
        assert_eq!(RepVggVariant::A0.stage_widths(), [48, 48, 96, 192, 1280]);
        assert_eq!(RepVggVariant::A1.stage_widths(), [64, 64, 128, 256, 1280]);
        assert_eq!(RepVggVariant::B0.stage_blocks(), [1, 4, 6, 16, 1]);
    }

    #[test]
    fn deploy_graph_conv_counts() {
        let a0 = RepVggSpec::original(RepVggVariant::A0).deploy_graph(32);
        let convs = a0
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, OpKind::Conv2d { .. }))
            .count();
        assert_eq!(convs, 22); // 1+2+4+14+1

        let aug = RepVggSpec::augmented(RepVggVariant::A0, Activation::Hardswish).deploy_graph(32);
        let convs_aug = aug
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, OpKind::Conv2d { .. }))
            .count();
        assert_eq!(convs_aug, 22 + 21); // +1x1 after all but the last stage
    }

    #[test]
    fn names_and_params() {
        let spec = RepVggSpec::augmented(RepVggVariant::A1, Activation::Hardswish);
        assert_eq!(spec.name(), "RepVGGAug-A1");
        assert_eq!(spec.paper_params_m(), 21.7);
        assert_eq!(RepVggSpec::original(RepVggVariant::B0).name(), "RepVGG-B0");
    }

    #[test]
    fn train_form_reparameterizes_to_single_convs() {
        let g = train_form_blocks(1, 8, &[8, 8]);
        let deployed = PassManager::deployment().run(&g).unwrap();
        let convs = deployed
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, OpKind::Conv2d { .. }))
            .count();
        assert_eq!(
            convs, 2,
            "each block must collapse to one conv:\n{deployed}"
        );
        assert!(!deployed
            .nodes()
            .iter()
            .any(|n| matches!(n.kind, OpKind::BatchNorm { .. })));
    }

    #[test]
    fn output_is_imagenet_classifier() {
        let g = RepVggSpec::original(RepVggVariant::B0).deploy_graph(16);
        let out = g.outputs()[0];
        assert_eq!(g.node(out).shape.dims(), &[16, 1000]);
    }
}
