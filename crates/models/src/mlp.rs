//! Recommendation-model MLP chains (DLRM, DCN-v2) — the source of the
//! paper's Table 1 back-to-back GEMM workloads.

use bolt_cutlass::GemmProblem;
use bolt_graph::{Graph, GraphBuilder};
use bolt_tensor::{Activation, DType};

/// The exact back-to-back GEMM pairs of Table 1 ("extracted from real
/// recommendation models, e.g., DCNv2, DLRM"): `(gemm0, gemm1)`, each
/// followed by a ReLU epilogue, fused into one persistent kernel.
pub fn table1_gemm_pairs() -> Vec<(GemmProblem, GemmProblem)> {
    vec![
        (GemmProblem::fp16(2464, 1, 4), GemmProblem::fp16(2464, 4, 1)),
        (
            GemmProblem::fp16(16384, 64, 256),
            GemmProblem::fp16(16384, 16, 64),
        ),
        (
            GemmProblem::fp16(32768, 128, 576),
            GemmProblem::fp16(32768, 64, 128),
        ),
        (
            GemmProblem::fp16(128320, 32, 96),
            GemmProblem::fp16(128320, 96, 32),
        ),
    ]
}

/// A DLRM-style bottom MLP: a chain of dense+ReLU layers over a large
/// batch of interaction rows — tall-skinny GEMMs that persistent kernels
/// love.
pub fn dlrm_bottom_mlp(batch: usize, features: &[usize]) -> Graph {
    let mut b = GraphBuilder::shapes_only(DType::F16);
    let mut x = b.input(&[batch, features[0]]);
    for (i, &units) in features[1..].iter().enumerate() {
        x = b.dense_bias(x, units, &format!("mlp.fc{i}"));
        x = b.activation(x, Activation::ReLU, &format!("mlp.relu{i}"));
    }
    b.finish(&[x])
}

/// A DCN-v2 style cross+deep tower over `batch` rows with `dim` features:
/// two dense layers forming the "deep" part (the fusible chain) plus a
/// final scoring head.
pub fn dcnv2_deep_tower(batch: usize, dim: usize) -> Graph {
    let mut b = GraphBuilder::shapes_only(DType::F16);
    let x = b.input(&[batch, dim]);
    let h1 = b.dense_bias(x, dim / 2, "deep.fc1");
    let r1 = b.activation(h1, Activation::ReLU, "deep.relu1");
    let h2 = b.dense_bias(r1, dim / 4, "deep.fc2");
    let r2 = b.activation(h2, Activation::ReLU, "deep.relu2");
    let score = b.dense_bias(r2, 1, "head");
    let out = b.activation(score, Activation::Sigmoid, "sigmoid");
    b.finish(&[out])
}

/// A DLRM-style scoring MLP with **materialized** parameters, sized for
/// the serving layer: unlike the shapes-only graphs above it can execute
/// functionally (`CompiledModel::run`), so `bolt-serve` workers really
/// compute request batches instead of only pricing them.
///
/// `features` lists layer widths input-first (e.g. `[128, 256, 64, 10]`);
/// every hidden layer is dense+bias+ReLU, the head is dense+bias.
pub fn serving_mlp(batch: usize, features: &[usize]) -> Graph {
    assert!(
        features.len() >= 2,
        "serving_mlp needs input and output widths"
    );
    let mut b = GraphBuilder::new(DType::F16);
    let mut x = b.input(&[batch, features[0]]);
    let last = features.len() - 2;
    for (i, &units) in features[1..].iter().enumerate() {
        x = b.dense_bias(x, units, &format!("serve.fc{i}"));
        if i < last {
            x = b.activation(x, Activation::ReLU, &format!("serve.relu{i}"));
        }
    }
    b.finish(&[x])
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_graph::extract_workloads;

    #[test]
    fn table1_pairs_chain_correctly() {
        for (g0, g1) in table1_gemm_pairs() {
            assert_eq!(g0.m, g1.m, "persistent fusion requires equal M");
            assert_eq!(g0.n, g1.k, "GEMM1 K must equal GEMM0 N");
        }
    }

    #[test]
    fn table1_pairs_are_memory_bound() {
        // The paper designs persistent kernels "specifically for
        // memory-bound operators ... small N and K but large M".
        for (g0, _) in table1_gemm_pairs() {
            assert!(g0.arithmetic_intensity() < 120.0, "{g0} too compute-bound");
        }
    }

    #[test]
    fn dlrm_builds() {
        let g = dlrm_bottom_mlp(16384, &[256, 64, 16]);
        let tasks = extract_workloads(&g);
        assert_eq!(tasks.len(), 2);
        let out = g.outputs()[0];
        assert_eq!(g.node(out).shape.dims(), &[16384, 16]);
    }

    #[test]
    fn serving_mlp_materializes_params() {
        let g = serving_mlp(8, &[128, 256, 64, 10]);
        let constants: Vec<_> = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, bolt_graph::OpKind::Constant { .. }))
            .collect();
        assert!(!constants.is_empty());
        for c in &constants {
            assert!(g.param(c.id).is_some(), "{} has no data", c.name);
        }
        assert_eq!(g.node(g.outputs()[0]).shape.dims(), &[8, 10]);
    }

    #[test]
    fn dcnv2_builds() {
        let g = dcnv2_deep_tower(32768, 512);
        let out = g.outputs()[0];
        assert_eq!(g.node(out).shape.dims(), &[32768, 1]);
    }
}
