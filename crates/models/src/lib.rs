#![warn(missing_docs)]
//! # bolt-models
//!
//! The model zoo of the Bolt (MLSys 2022) evaluation:
//!
//! * [`vgg`] — VGG-11/13/16/19 (Figure 10's compute-bound extreme);
//! * [`resnet`] — ResNet-18/34/50 in inference form (Figure 8b / 10);
//! * [`repvgg`] — RepVGG-A0/A1/B0 in train (multi-branch) and deploy
//!   (re-parameterized) forms, plus the paper's system-friendly
//!   "RepVGGAug" variants with extra 1×1 convolutions and alternative
//!   activations (Section 4.3);
//! * [`bert`] — the GEMM workloads of Figures 1 and 8a;
//! * [`llm`] — an autoregressive transformer decoder (prefill = wide
//!   GEMM, decode step = skinny GEMM) split into per-layer compilable
//!   sub-models plus host-side attention, for the LLM-serving path;
//! * [`mlp`] — DLRM/DCNv2-style MLP chains and the exact back-to-back
//!   GEMM pairs of Table 1;
//! * [`cnn`] — a small materialized CNN the serving layer can execute
//!   functionally (the big CNNs above are shapes-only);
//! * [`accuracy`] — the calibrated top-1 accuracy proxy substituting for
//!   ImageNet training (see DESIGN.md, substitution 5);
//! * [`zoo`] — a name-indexed registry of the Figure 10 model set.

pub mod accuracy;
pub mod bert;
pub mod cnn;
pub mod inception;
pub mod llm;
pub mod mlp;
pub mod repvgg;
pub mod resnet;
pub mod vgg;
pub mod zoo;

pub use accuracy::{AccuracyModel, TrainRecipe};
pub use llm::{DecoderModel, DecoderSpec};
pub use repvgg::{RepVggSpec, RepVggVariant};
pub use zoo::{
    llm_by_name, model_by_name, sample_prompts, try_model_by_name, ModelInfo, PromptLengths,
    FIGURE10_MODELS, LLM_MODELS, SERVING_MODELS,
};
