//! ResNet (He et al., 2016) in inference form — BatchNorms pre-folded
//! into convolution biases, the canonical deployment graph. ResNet's mix
//! of 1×1/3×3 convolutions and residual adds makes it the least
//! Bolt-favourable model in Figure 10 (1.5×).

use bolt_graph::{Graph, GraphBuilder, NodeId};
use bolt_tensor::{Activation, DType};

fn basic_block(
    b: &mut GraphBuilder,
    x: NodeId,
    channels: usize,
    stride: usize,
    name: &str,
) -> NodeId {
    let c1 = b.conv2d_bias(
        x,
        channels,
        3,
        (stride, stride),
        (1, 1),
        &format!("{name}.conv1"),
    );
    let r1 = b.activation(c1, Activation::ReLU, &format!("{name}.relu1"));
    let c2 = b.conv2d_bias(r1, channels, 3, (1, 1), (1, 1), &format!("{name}.conv2"));
    let shortcut = if stride != 1 || channels != channel_count(b, x) {
        b.conv2d_bias(
            x,
            channels,
            1,
            (stride, stride),
            (0, 0),
            &format!("{name}.downsample"),
        )
    } else {
        x
    };
    let sum = b.add(c2, shortcut, &format!("{name}.add"));
    b.activation(sum, Activation::ReLU, &format!("{name}.relu2"))
}

fn bottleneck(b: &mut GraphBuilder, x: NodeId, width: usize, stride: usize, name: &str) -> NodeId {
    let out_ch = width * 4;
    let c1 = b.conv2d_bias(x, width, 1, (1, 1), (0, 0), &format!("{name}.conv1"));
    let r1 = b.activation(c1, Activation::ReLU, &format!("{name}.relu1"));
    let c2 = b.conv2d_bias(
        r1,
        width,
        3,
        (stride, stride),
        (1, 1),
        &format!("{name}.conv2"),
    );
    let r2 = b.activation(c2, Activation::ReLU, &format!("{name}.relu2"));
    let c3 = b.conv2d_bias(r2, out_ch, 1, (1, 1), (0, 0), &format!("{name}.conv3"));
    let shortcut = if stride != 1 || out_ch != channel_count(b, x) {
        b.conv2d_bias(
            x,
            out_ch,
            1,
            (stride, stride),
            (0, 0),
            &format!("{name}.downsample"),
        )
    } else {
        x
    };
    let sum = b.add(c3, shortcut, &format!("{name}.add"));
    b.activation(sum, Activation::ReLU, &format!("{name}.relu3"))
}

fn channel_count(b: &GraphBuilder, x: NodeId) -> usize {
    b.graph().node(x).shape.dim(1)
}

/// Builds ResNet-`depth` (18/34/50/101/152) for 224×224 inputs, shape-only
/// parameters.
///
/// # Panics
///
/// Panics if `depth` is not one of 18/34/50/101/152.
pub fn resnet(depth: usize, batch: usize) -> Graph {
    let (blocks, use_bottleneck): (&[usize], bool) = match depth {
        18 => (&[2, 2, 2, 2], false),
        34 => (&[3, 4, 6, 3], false),
        50 => (&[3, 4, 6, 3], true),
        101 => (&[3, 4, 23, 3], true),
        152 => (&[3, 8, 36, 3], true),
        other => panic!("unsupported ResNet depth {other} (use 18/34/50/101/152)"),
    };

    let mut b = GraphBuilder::shapes_only(DType::F16);
    let mut x = b.input(&[batch, 3, 224, 224]);
    x = b.conv2d_bias(x, 64, 7, (2, 2), (3, 3), "stem.conv");
    x = b.activation(x, Activation::ReLU, "stem.relu");
    x = b.max_pool(x, 3, 2, "stem.pool");
    // NOTE: torchvision pads the stem pool; our Pool has symmetric padding
    // support only through the op attrs — use padding via window math: the
    // 3x3/2 pool on 112 gives 55 without padding; torchvision gives 56.
    // The 1-pixel difference is irrelevant to the performance shapes.

    let widths = [64usize, 128, 256, 512];
    for (stage, (&count, &width)) in blocks.iter().zip(widths.iter()).enumerate() {
        for block in 0..count {
            let stride = if block == 0 && stage > 0 { 2 } else { 1 };
            let name = format!("layer{}.{}", stage + 1, block);
            x = if use_bottleneck {
                bottleneck(&mut b, x, width, stride, &name)
            } else {
                basic_block(&mut b, x, width, stride, &name)
            };
        }
    }
    x = b.global_avg_pool(x, "gap");
    x = b.dense_bias(x, 1000, "fc");
    b.finish(&[x])
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_graph::{extract_workloads, OpKind};

    #[test]
    fn resnet50_has_53_convs() {
        let g = resnet(50, 32);
        let convs = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, OpKind::Conv2d { .. }))
            .count();
        // 1 stem + 16 blocks * 3 + 4 downsamples = 53.
        assert_eq!(convs, 53);
    }

    #[test]
    fn resnet18_output_shape() {
        let g = resnet(18, 8);
        let out = g.outputs()[0];
        assert_eq!(g.node(out).shape.dims(), &[8, 1000]);
    }

    #[test]
    fn residual_adds_exist() {
        let g = resnet(18, 1);
        let adds = g.nodes().iter().filter(|n| n.kind == OpKind::Add).count();
        assert_eq!(adds, 8);
    }

    #[test]
    fn unique_workloads_are_few() {
        let g = resnet(50, 32);
        let tasks = extract_workloads(&g);
        // Dozens of convs share ~2 dozen unique shapes.
        assert!(tasks.len() >= 15 && tasks.len() <= 30, "{}", tasks.len());
    }
}
