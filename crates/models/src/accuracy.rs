//! Calibrated top-1 accuracy proxy for the RepVGG case study.
//!
//! **This is a documented substitution** (DESIGN.md #5): the paper trains
//! each variant on ImageNet (120-300 epochs on the Swin codebase); this
//! environment cannot. The proxy is a deterministic analytic model
//!
//! ```text
//! top1 = BASE
//!      + CAPACITY * ln(effective_params)
//!      + activation_bonus(activation)
//!      + recipe_bonus(epochs, augmentation, effective_params)
//! ```
//!
//! with `effective_params = params + 0.35 * extra_1x1_params` (added 1×1
//! convolutions "do not increase accuracy to the same extent as larger
//! kernels", Section 3.3). The five constants were calibrated once
//! against the paper's Tables 4-6; every reproduced cell lands within
//! ±0.3% of the published value and all *trends* (Hardswish > ReLU, +1×1
//! ⇒ +0.7-0.9%, combined ⇒ largest gains on larger models) hold by
//! construction. Speed columns come from the real compiler + simulator —
//! only accuracy is proxied.

use bolt_tensor::Activation;

use crate::repvgg::RepVggSpec;

/// Training recipe of a case-study row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainRecipe {
    /// Training epochs (120 / 200 / 300 in the paper).
    pub epochs: usize,
    /// Advanced augmentation + label smoothing + mixup (Table 6).
    pub advanced_augmentation: bool,
}

impl TrainRecipe {
    /// Table 4's recipe: 120 epochs, simple augmentation.
    pub const TABLE4: TrainRecipe = TrainRecipe {
        epochs: 120,
        advanced_augmentation: false,
    };
    /// Table 5's recipe: 200 epochs, simple augmentation.
    pub const TABLE5: TrainRecipe = TrainRecipe {
        epochs: 200,
        advanced_augmentation: false,
    };
    /// Table 6's recipe: 300 epochs, advanced augmentation.
    pub const TABLE6: TrainRecipe = TrainRecipe {
        epochs: 300,
        advanced_augmentation: true,
    };
}

/// The calibrated accuracy model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyModel {
    base: f64,
    capacity: f64,
    one_by_one_effectiveness: f64,
    adv_aug_scale: f64,
}

impl Default for AccuracyModel {
    fn default() -> Self {
        AccuracyModel {
            base: 63.42,
            capacity: 4.2,
            one_by_one_effectiveness: 0.35,
            adv_aug_scale: 0.9,
        }
    }
}

impl AccuracyModel {
    /// Activation-function bonus (calibrated on Table 4).
    pub fn activation_bonus(activation: Activation) -> f64 {
        match activation {
            Activation::ReLU => 0.0,
            Activation::Gelu => 0.07,
            Activation::Hardswish => 0.67,
            Activation::Softplus => 0.26,
            Activation::Silu => 0.45,
            Activation::Sigmoid => -1.5,
            Activation::Identity => -6.0,
        }
    }

    /// Effective parameter count in millions for a spec.
    pub fn effective_params_m(&self, spec: &RepVggSpec) -> f64 {
        let base = spec.variant.paper_params_m(false);
        if spec.augment_1x1 {
            let extra = spec.paper_params_m() - base;
            base + self.one_by_one_effectiveness * extra
        } else {
            base
        }
    }

    fn recipe_bonus(&self, recipe: TrainRecipe, eff_params_m: f64) -> f64 {
        let epochs = match recipe.epochs {
            e if e <= 120 => 0.0,
            e if e <= 200 => 0.74,
            _ => {
                if recipe.advanced_augmentation {
                    0.80
                } else {
                    1.10
                }
            }
        };
        let adv = if recipe.advanced_augmentation {
            self.adv_aug_scale * (eff_params_m / 11.0).ln().max(0.0)
        } else {
            0.0
        };
        epochs + adv
    }

    /// Estimated ImageNet top-1 accuracy (percent) for a spec + recipe.
    pub fn top1(&self, spec: &RepVggSpec, recipe: TrainRecipe) -> f64 {
        let eff = self.effective_params_m(spec);
        self.base
            + self.capacity * eff.ln()
            + Self::activation_bonus(spec.activation)
            + self.recipe_bonus(recipe, eff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repvgg::RepVggVariant;

    fn model() -> AccuracyModel {
        AccuracyModel::default()
    }

    fn spec(v: RepVggVariant) -> RepVggSpec {
        RepVggSpec::original(v)
    }

    #[test]
    fn table4_activation_sweep_within_tolerance() {
        // Paper: ReLU 72.31, GELU 72.38, Hardswish 72.98, Softplus 72.57.
        let paper = [
            (Activation::ReLU, 72.31),
            (Activation::Gelu, 72.38),
            (Activation::Hardswish, 72.98),
            (Activation::Softplus, 72.57),
        ];
        for (act, expect) in paper {
            let s = RepVggSpec {
                activation: act,
                ..spec(RepVggVariant::A0)
            };
            let got = model().top1(&s, TrainRecipe::TABLE4);
            assert!(
                (got - expect).abs() < 0.3,
                "{act}: {got:.2} vs paper {expect}"
            );
        }
    }

    #[test]
    fn table5_deepening_within_tolerance() {
        // Paper: A0 73.05, A1 74.75, B0 75.28; Aug 73.87 / 75.52 / 76.02.
        let rows = [
            (spec(RepVggVariant::A0), 73.05),
            (spec(RepVggVariant::A1), 74.75),
            (spec(RepVggVariant::B0), 75.28),
            (
                RepVggSpec::augmented(RepVggVariant::A0, Activation::ReLU),
                73.87,
            ),
            (
                RepVggSpec::augmented(RepVggVariant::A1, Activation::ReLU),
                75.52,
            ),
            (
                RepVggSpec::augmented(RepVggVariant::B0, Activation::ReLU),
                76.02,
            ),
        ];
        for (s, expect) in rows {
            let got = model().top1(&s, TrainRecipe::TABLE5);
            assert!(
                (got - expect).abs() < 0.35,
                "{}: {got:.2} vs paper {expect}",
                s.name()
            );
        }
    }

    #[test]
    fn table6_combined_within_tolerance() {
        // Paper: Aug-A0 74.54, Aug-A1 76.72, Aug-B0 77.22 (Hardswish).
        let rows = [
            (
                RepVggSpec::augmented(RepVggVariant::A0, Activation::Hardswish),
                74.54,
            ),
            (
                RepVggSpec::augmented(RepVggVariant::A1, Activation::Hardswish),
                76.72,
            ),
            (
                RepVggSpec::augmented(RepVggVariant::B0, Activation::Hardswish),
                77.22,
            ),
        ];
        for (s, expect) in rows {
            let got = model().top1(&s, TrainRecipe::TABLE6);
            assert!(
                (got - expect).abs() < 0.35,
                "{}: {got:.2} vs paper {expect}",
                s.name()
            );
        }
        // A0 in Table 6 was trained with the simple recipe for 300 epochs.
        let a0 = model().top1(
            &spec(RepVggVariant::A0),
            TrainRecipe {
                epochs: 300,
                advanced_augmentation: false,
            },
        );
        assert!((a0 - 73.41).abs() < 0.2, "{a0:.2} vs 73.41");
    }

    #[test]
    fn trends_hold_by_construction() {
        let m = model();
        // Hardswish is the best Table 4 activation.
        for act in Activation::REPVGG_SWEEP {
            assert!(
                AccuracyModel::activation_bonus(Activation::Hardswish)
                    >= AccuracyModel::activation_bonus(act)
            );
        }
        // Deepening with 1x1 always gains, but less than raw capacity.
        for v in [RepVggVariant::A0, RepVggVariant::A1, RepVggVariant::B0] {
            let orig = m.top1(&spec(v), TrainRecipe::TABLE5);
            let aug = m.top1(
                &RepVggSpec::augmented(v, Activation::ReLU),
                TrainRecipe::TABLE5,
            );
            let gain = aug - orig;
            assert!(gain > 0.4 && gain < 1.2, "{v:?} gain {gain:.2}");
        }
        // More epochs never hurt.
        let e120 = m.top1(&spec(RepVggVariant::A0), TrainRecipe::TABLE4);
        let e200 = m.top1(&spec(RepVggVariant::A0), TrainRecipe::TABLE5);
        assert!(e200 > e120);
    }

    #[test]
    fn determinism() {
        let s = RepVggSpec::augmented(RepVggVariant::A1, Activation::Hardswish);
        assert_eq!(
            model().top1(&s, TrainRecipe::TABLE6),
            model().top1(&s, TrainRecipe::TABLE6)
        );
    }
}
